"""Ablation (future work, §6.1): hybrid CPU/GPU dynamic decomposition.

Quantifies the paper's suggestion that 'large empty regions could be
quickly computed on the slowest hardware ... while the available GPU
workhorses rapidly compute the complex, activity-filled regions': the
hybrid scheme is compared against pure SIMCoV-GPU across sparse and
saturated workloads.
"""

import pytest

from repro.core.params import SimCovParams
from repro.perf.activity import DiskActivityModel
from repro.perf.hybrid import project_hybrid_runtime
from repro.perf.machine import PAPER_SCALE_GROWTH_SPEED, PERLMUTTER
from repro.perf.projector import project_gpu_runtime


def models(foi):
    p = SimCovParams.default_covid(dim=(20_000, 20_000), num_infections=foi)
    return DiskActivityModel(
        p, seed=1, speed=PAPER_SCALE_GROWTH_SPEED, supergrid=64, samples=24
    )


def test_hybrid_bench(benchmark):
    model = models(64)
    out = benchmark(
        lambda: project_hybrid_runtime(PERLMUTTER, model, 16)
    )
    assert out.total_seconds > 0


def test_hybrid_wins_on_sparse_workloads():
    """Low activity: the GPU's full-sweep reduction is the bottleneck the
    hybrid removes (hosts cover the quiescent bulk)."""
    rows = []
    for foi in (64, 1024):
        model = models(foi)
        pure = project_gpu_runtime(PERLMUTTER, model, 16).total_seconds
        hyb = project_hybrid_runtime(PERLMUTTER, model, 16).total_seconds
        rows.append((foi, pure, hyb, pure / hyb))
    print("\nHybrid CPU/GPU ablation (20,000^2, 16 GPUs):")
    print(f"{'FOI':>6}{'pure GPU s':>12}{'hybrid s':>12}{'gain':>8}")
    for foi, pure, hyb, gain in rows:
        print(f"{foi:>6}{pure:>12.0f}{hyb:>12.0f}{gain:>8.2f}")
    sparse_gain = rows[0][3]
    dense_gain = rows[1][3]
    assert sparse_gain > 1.0          # hybrid pays off when sparse
    assert sparse_gain > dense_gain   # and pays off *more* when sparser


def test_hybrid_breakdown_consistent():
    model = models(128)
    r = project_hybrid_runtime(PERLMUTTER, model, 16)
    assert r.host_seconds >= 0
    assert r.handoff_seconds >= 0
    assert r.total_seconds >= r.compute_seconds


def test_hybrid_host_work_shrinks_with_activity():
    sparse = project_hybrid_runtime(PERLMUTTER, models(64), 16)
    dense = project_hybrid_runtime(PERLMUTTER, models(1024), 16)
    assert dense.host_seconds < sparse.host_seconds
