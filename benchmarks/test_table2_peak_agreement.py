"""Table 2: percent agreement of peak statistics (§4.1).

Regenerates the peak-agreement table (peak virus, peak tissue T cells,
peak apoptotic count: % agreement between implementations plus per-
implementation standard deviations over trials).

The paper reports >99% agreement at 10^8 voxels; at this benchmark's
reduced scale trial-to-trial variance is relatively larger, so the
asserted floor is 80% (the bitwise-equality integration tests subsume the
strong form of this claim).
"""

import pytest

from repro.core.params import SimCovParams
from repro.experiments.correctness import (
    PAPER_TABLE2,
    format_table2,
    run_correctness,
)


@pytest.fixture(scope="module")
def result():
    params = SimCovParams.fast_test(dim=(32, 32), num_infections=2,
                                    num_steps=200)
    return run_correctness(params, trials=4, nranks=2, num_devices=2)


def test_table2_generation(benchmark):
    params = SimCovParams.fast_test(dim=(24, 24), num_infections=2,
                                    num_steps=80)
    out = benchmark.pedantic(
        lambda: run_correctness(params, trials=2, nranks=2, num_devices=2),
        rounds=1, iterations=1,
    )
    assert set(out.table2) == set(PAPER_TABLE2)


def test_table2_agreement(result):
    print("\n" + format_table2(result))
    for name, row in result.table2.items():
        assert row["agree_pct"] > 80.0, f"{name}: {row['agree_pct']:.1f}%"


def test_table2_stds_are_comparable_between_impls(result):
    """Neither implementation is systematically noisier (paper's STDs are
    the same order for CPU and GPU)."""
    for row in result.table2.values():
        if row["cpu_std"] > 0 and row["gpu_std"] > 0:
            ratio = row["cpu_std"] / row["gpu_std"]
            assert 0.1 < ratio < 10.0


def test_table2_no_stat_varies_more_than_model_precision(result):
    """'No statistic was observed to vary more than one percent between the
    two simulations' — at our scale, peaks stay within 20%."""
    for row in result.table2.values():
        denom = max(abs(row["cpu_peak"]), 1e-9)
        assert abs(row["cpu_peak"] - row["gpu_peak"]) / denom < 0.2
