"""Microbenchmarks of the hot kernels (host-side throughput).

These time the actual numpy kernels this reproduction executes — useful
for tracking regressions in the reproduction itself (the modeled GPU
times come from the ledger, not from these wall-clocks).
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.diffusion.stencil import diffuse_global
from repro.grid.spec import GridSpec
from repro.rng.streams import Stream, VoxelRNG


@pytest.fixture(scope="module")
def world():
    p = SimCovParams.fast_test(dim=(128, 128), num_infections=8)
    spec = GridSpec(p.dim)
    block = VoxelBlock(spec, spec.domain)
    rng = np.random.default_rng(0)
    # A busy mid-infection state.
    states = rng.choice(
        [EpiState.HEALTHY, EpiState.INCUBATING, EpiState.EXPRESSING,
         EpiState.DEAD],
        p=[0.5, 0.2, 0.2, 0.1],
        size=block.owned.shape,
    )
    block.epi_state[block.interior] = states
    block.epi_timer[block.interior] = rng.integers(
        1, 50, size=block.owned.shape
    ) * (states != EpiState.HEALTHY)
    block.virions[block.interior] = rng.random(block.owned.shape) * 0.5
    block.chemokine[block.interior] = rng.random(block.owned.shape) * 0.5
    tcells = rng.random(block.owned.shape) < 0.05
    block.tcell[block.interior] = tcells
    block.tcell_tissue_time[block.interior] = tcells * 100
    return p, block, VoxelRNG(1)


def test_bench_rng_words(benchmark):
    rng = VoxelRNG(0)
    keys = np.arange(128 * 128)
    out = benchmark(lambda: rng.words(Stream.TCELL_BID, 5, keys))
    assert out.shape == keys.shape


def test_bench_diffusion(benchmark):
    rng = np.random.default_rng(0)
    field = rng.random((256, 256))
    out = benchmark(lambda: diffuse_global(field, 0.5))
    assert out.shape == field.shape


def test_bench_epithelial_update(benchmark, world):
    p, block, rng = world

    def run():
        kernels.epithelial_update(p, rng, 5, block, block.interior)

    benchmark(run)


def test_bench_tcell_intents(benchmark, world):
    p, block, rng = world
    intents = kernels.IntentArrays(block.shape)

    def run():
        intents.clear()
        kernels.tcell_intents(p, rng, 5, block, intents, block.interior)

    benchmark(run)


def test_bench_resolve_moves(benchmark, world):
    p, block, rng = world
    intents = kernels.IntentArrays(block.shape)
    kernels.tcell_intents(p, rng, 5, block, intents, block.interior)

    def run():
        return kernels.compute_moves(block, intents, block.interior)

    moves = benchmark(run)
    assert moves.arriving.shape == block.owned.shape


def test_bench_stats_vector(benchmark, world):
    from repro.core.stats import stats_vector

    _, block, _ = world
    vec = benchmark(lambda: stats_vector(block))
    assert vec.shape == (8,)


def test_bench_full_sequential_step(benchmark):
    p = SimCovParams.fast_test(dim=(96, 96), num_infections=8, num_steps=10)
    from repro.core.model import SequentialSimCov

    sim = SequentialSimCov(p, seed=2)
    benchmark.pedantic(sim.step, rounds=5, iterations=1)
    assert sim.step_num >= 5
