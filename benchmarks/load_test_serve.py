#!/usr/bin/env python
"""Load test for the serving layer (:mod:`repro.serve`).

Simulates a large fleet of concurrent clients hammering one server with
a repeated-request workload — many clients asking for the same small set
of distinct runs, which is the serving layer's design case (parameter
sweeps and dashboards re-requesting canonical configurations).  Each
client POSTs a job and then opens the job's SSE stream, timing
**submit-to-first-event** end to end over real sockets.

Three gates (process exits nonzero if any fails):

1. cache hit rate >= 90% on the repeated-request workload (hits + joins
   over all submissions);
2. p99 submit-to-first-event latency < 1 s;
3. a preemption scenario — a high-priority job lands mid-run of a
   low-priority one on a single-worker server — where both jobs complete
   and the preempted job's final stats are **bitwise identical** to an
   in-process run that was never preempted.

Results are merged into ``BENCH_step_engine.json`` at the repo root as
the ``serving`` section (read-modify-write; the step-engine sections are
left untouched).

Usage (from the repo root, no install needed)::

    python benchmarks/load_test_serve.py                   # full: 1000 clients
    python benchmarks/load_test_serve.py --clients 200 --steps 30   # CI smoke
"""

import argparse
import asyncio
import json
import logging
import pathlib
import sys
import time

# Clients drop their SSE sockets after the first event on purpose; the
# loop's "socket.send() raised exception" lines are that, not a failure.
logging.getLogger("asyncio").setLevel(logging.CRITICAL)

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.core.model import SequentialSimCov  # noqa: E402
from repro.obs.runmeta import run_metadata  # noqa: E402
from repro.serve.jobs import JobSpec, stats_rows  # noqa: E402
from repro.serve.server import ServeApp  # noqa: E402

CONFIG = "small_2d"


# -- minimal async HTTP (raw sockets: thousands of concurrent clients) --------

async def http_json(port, method, path, body=None, retries=3):
    for attempt in range(retries + 1):
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            break
        except OSError:
            if attempt == retries:
                raise
            await asyncio.sleep(0.05 * (attempt + 1))
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
                f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
            ).encode()
            + payload
        )
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        data = await reader.readexactly(length)
        return status, json.loads(data or b"{}")
    finally:
        writer.close()


async def submit_and_first_event(port, spec):
    """One simulated client: POST the job, subscribe to its SSE stream,
    return (submit-to-first-event seconds, cache disposition)."""
    t0 = time.perf_counter()
    status, resp = await http_json(port, "POST", "/jobs", body=spec)
    assert status in (200, 201), resp
    job_id = resp["job"]["id"]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(
            f"GET /jobs/{job_id}/events HTTP/1.1\r\nHost: localhost\r\n"
            f"Connection: close\r\n\r\n".encode()
        )
        await writer.drain()
        while (await reader.readline()) not in (b"\r\n", b""):
            pass  # response headers
        while True:
            line = await reader.readline()
            if not line:
                raise RuntimeError(f"stream for {job_id} ended eventless")
            if line.startswith(b"event:"):
                return time.perf_counter() - t0, resp["cache"]
    finally:
        writer.close()


async def wait_done(port, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while True:
        _, summary = await http_json(port, "GET", f"/jobs/{job_id}")
        if summary["state"] in ("done", "failed", "cancelled"):
            return summary
        if time.monotonic() > deadline:
            raise TimeoutError(f"job {job_id} stuck in {summary['state']}")
        await asyncio.sleep(0.05)


def pct(sorted_vals, p):
    if not sorted_vals:
        return 0.0
    return sorted_vals[min(len(sorted_vals) - 1, int(p * len(sorted_vals)))]


# -- phases -------------------------------------------------------------------

async def run_load_phase(app, args):
    """args.clients concurrent clients over args.distinct distinct specs."""
    specs = [
        {
            "config": CONFIG,
            "steps": args.steps,
            "seed": i,
            "backend": "sequential",
            "client": f"tenant{i % 4}",
        }
        for i in range(args.distinct)
    ]
    # Warm the cache: one cold run per distinct spec.
    warm_t0 = time.perf_counter()
    warm = await asyncio.gather(
        *(submit_and_first_event(app.port, s) for s in specs)
    )
    _, jobs = await http_json(app.port, "GET", "/jobs")
    await asyncio.gather(
        *(wait_done(app.port, j["id"]) for j in jobs["jobs"])
    )
    warm_seconds = time.perf_counter() - warm_t0

    # The measured wave: every client submits concurrently.
    wave_t0 = time.perf_counter()
    results = await asyncio.gather(
        *(
            submit_and_first_event(app.port, specs[i % len(specs)])
            for i in range(args.clients)
        )
    )
    wave_seconds = time.perf_counter() - wave_t0
    latencies = sorted(
        [lat for lat, _ in warm] + [lat for lat, _ in results]
    )
    dispositions = [how for _, how in results]
    free = dispositions.count("hit") + dispositions.count("join")
    _, metrics = await http_json(app.port, "GET", "/metrics.json")
    return {
        "clients": args.clients,
        "distinct_specs": args.distinct,
        "steps_per_job": args.steps,
        "warmup_seconds": round(warm_seconds, 3),
        "wave_seconds": round(wave_seconds, 3),
        "submits_per_sec": round(args.clients / wave_seconds, 1),
        "wave_hits": dispositions.count("hit"),
        "wave_joins": dispositions.count("join"),
        "wave_misses": dispositions.count("miss"),
        #: Gate metric: the repeated-request wave (the warmup's cold
        #: misses are the cache being filled, not the workload).
        "cache_hit_rate": free / len(dispositions),
        "session_hit_rate": metrics["cache_hit_rate"],
        "latency_p50_seconds": round(pct(latencies, 0.50), 4),
        "latency_p99_seconds": round(pct(latencies, 0.99), 4),
        "latency_max_seconds": round(latencies[-1], 4),
        "server_metrics": {
            k: metrics[k]
            for k in (
                "submitted", "completed", "cache_hits", "coalesced",
                "wait_p50_seconds", "wait_p99_seconds",
            )
        },
    }


async def run_preemption_phase(port, steps):
    """Low-priority long job preempted by a high-priority one; the
    resumed result must be bitwise identical to an unpreempted run."""
    low_spec = {
        "config": CONFIG, "steps": steps, "seed": 9091,
        "backend": "sequential", "priority": 0, "client": "batch",
    }
    _, low = await http_json(port, "POST", "/jobs", body=low_spec)
    low_id = low["job"]["id"]
    deadline = time.monotonic() + 30
    while True:
        _, summary = await http_json(port, "GET", f"/jobs/{low_id}")
        if summary["state"] == "running":
            break
        if time.monotonic() > deadline:
            raise TimeoutError("low-priority job never started")
        await asyncio.sleep(0.005)
    _, high = await http_json(
        port, "POST", "/jobs",
        body={
            "config": CONFIG, "steps": 10, "seed": 1,
            "backend": "sequential", "priority": 5, "client": "urgent",
        },
    )
    high_final = await wait_done(port, high["job"]["id"])
    low_final = await wait_done(port, low_id)
    _, low_result = await http_json(port, "GET", f"/jobs/{low_id}/result")

    spec = JobSpec.from_json(
        {k: v for k, v in low_spec.items()
         if k in ("config", "steps", "seed")}
    )
    params, nsteps = spec.resolve_params()
    control = SequentialSimCov(params, seed=spec.seed)
    control.run(nsteps)
    identical = json.dumps(
        low_result["result"]["rows"], sort_keys=True
    ) == json.dumps(stats_rows(control.series), sort_keys=True)
    return {
        "low_job_steps": steps,
        "preemptions": low_final["preemptions"],
        "both_completed": (
            high_final["state"] == "done" and low_final["state"] == "done"
        ),
        "bitwise_identical_to_unpreempted": identical,
    }


async def main_async(args):
    app = ServeApp(port=0, max_workers=args.workers)
    await app.start()
    serve_task = asyncio.ensure_future(app.serve_forever())
    try:
        print(
            f"load phase: {args.clients} clients, {args.distinct} distinct "
            f"specs, {args.steps} steps each, {args.workers} workers"
        )
        load = await run_load_phase(app, args)
        print(
            f"  hit rate {load['cache_hit_rate']:.1%}, "
            f"p50/p99/max first-event latency "
            f"{load['latency_p50_seconds'] * 1e3:.1f}/"
            f"{load['latency_p99_seconds'] * 1e3:.1f}/"
            f"{load['latency_max_seconds'] * 1e3:.1f} ms, "
            f"{load['submits_per_sec']:.0f} submits/s"
        )
    finally:
        app.stop()
        await serve_task

    # Fresh single-worker server: preemption needs a full slot table.
    app2 = ServeApp(port=0, max_workers=1)
    await app2.start()
    serve_task2 = asyncio.ensure_future(app2.serve_forever())
    try:
        preemption = await run_preemption_phase(
            app2.port, max(120, 4 * args.steps)
        )
        print(
            f"preemption phase: {preemption['preemptions']} preemption(s), "
            f"bitwise identical: "
            f"{preemption['bitwise_identical_to_unpreempted']}"
        )
    finally:
        app2.stop()
        await serve_task2
    return load, preemption


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--clients", type=int, default=1000,
        help="concurrent clients in the measured wave (default 1000)",
    )
    parser.add_argument(
        "--distinct", type=int, default=25,
        help="distinct job specs the clients cycle through",
    )
    parser.add_argument(
        "--steps", type=int, default=50,
        help="steps per job (small_2d config)",
    )
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parents[1]
            / "BENCH_step_engine.json"
        ),
        help="benchmark JSON to merge the 'serving' section into",
    )
    args = parser.parse_args(argv)

    load, preemption = asyncio.run(main_async(args))

    gates = {
        "cache_hit_rate>=0.9": load["cache_hit_rate"] >= 0.9,
        "latency_p99<1s": load["latency_p99_seconds"] < 1.0,
        "preemption_resume_bitwise": (
            preemption["preemptions"] >= 1
            and preemption["both_completed"]
            and preemption["bitwise_identical_to_unpreempted"]
        ),
    }
    section = {
        "meta": run_metadata(config=CONFIG),
        "load": load,
        "preemption": preemption,
        "gates": gates,
    }
    out = pathlib.Path(args.out)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["serving"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"serving section written to {out}")
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"GATE FAILURES: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
