"""Fig 6: strong scaling (§4.2).

Regenerates the paper's strong-scaling series — fixed 10,000^2-voxel,
16-FOI problem; {4..64 GPUs} vs {128..2048 CPU cores} — via the projector
over the synthesized paper-scale workload, and prints the same rows
(runtimes + speedup annotations) with the paper's speedups alongside.

Shape assertions: GPU wins decisively at the base; CPU scales near-ideally;
GPU saturates past ~16 devices; the speedup falls monotonically and drops
below ~1 at {64,2048} (paper: 4.98 -> 0.85).
"""

import numpy as np
import pytest

from repro.experiments.plotting import ascii_series
from repro.experiments.scaling import format_scaling, run_strong_scaling


@pytest.fixture(scope="module")
def rows():
    return run_strong_scaling(samples=32)


def test_fig6_generation(benchmark):
    out = benchmark.pedantic(
        lambda: run_strong_scaling(samples=12), rounds=1, iterations=1
    )
    assert len(out) == 5


def test_fig6_rows(rows):
    print("\n" + format_scaling(rows, "Fig 6 — Strong Scaling"))
    xs = np.array([r.gpus for r in rows], float)
    print(ascii_series(
        {"CPU": (xs, np.array([r.cpu_seconds for r in rows])),
         "GPU": (xs, np.array([r.gpu_seconds for r in rows]))},
        logx=True, logy=True, title="Fig 6 [log-log]",
    ))
    assert [r.label for r in rows] == [
        "{4,128}", "{8,256}", "{16,512}", "{32,1024}", "{64,2048}"
    ]


def test_fig6_base_speedup(rows):
    assert 3.0 < rows[0].speedup < 7.0  # paper: 4.98


def test_fig6_speedup_declines_monotonically(rows):
    s = [r.speedup for r in rows]
    assert all(a >= b for a, b in zip(s, s[1:]))


def test_fig6_gpu_loses_at_max_resources(rows):
    """The {64,2048} crossover: more GPUs than the problem can use."""
    assert rows[-1].speedup < 1.2  # paper: 0.85


def test_fig6_cpu_scales_near_ideally(rows):
    ideal = rows[0].cpu_seconds / 16
    assert rows[-1].cpu_seconds < 2 * ideal


def test_fig6_gpu_deviates_from_ideal(rows):
    """'it quickly saturates at this problem size' (§4.2)."""
    ideal = rows[0].gpu_seconds / 16
    assert rows[-1].gpu_seconds > 3 * ideal


def test_fig6_speedups_within_2x_of_paper(rows):
    for r in rows:
        assert 0.5 < r.speedup / r.paper_speedup < 2.0, (
            f"{r.label}: {r.speedup:.2f} vs paper {r.paper_speedup}"
        )
