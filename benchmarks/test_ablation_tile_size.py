"""Ablation: memory-tile size and sweep period (§3.2).

Tile size trades three costs: small tiles track activity tightly (fewer
wasted voxels) but sweep often (period <= tile side) and pin more
boundary area; large tiles sweep rarely but activate coarsely.  This
bench runs the real tiled implementation across tile sizes on a sparse
workload and reports processed-voxel totals and modeled time.
"""

import pytest

from repro.core.params import SimCovParams
from repro.perf.costs import gpu_step_seconds
from repro.perf.machine import PERLMUTTER
from repro.simcov_gpu.simulation import SimCovGPU

TILE_SIDES = (4, 8, 16)


@pytest.fixture(scope="module")
def workload():
    return SimCovParams.fast_test(dim=(64, 64), num_infections=1, num_steps=60)


def run_with_tile(params, side, steps=None):
    sim = SimCovGPU(
        params, num_devices=2, seed=9, tile_shape=(side, side)
    )
    sim.run(steps)
    total = 0.0
    voxels = 0
    sweeps = 0
    for w in sim.step_work:
        cost = gpu_step_seconds(
            PERLMUTTER, w["ledger"], w["active_per_device"], 2, True
        )
        total += cost.total_seconds
        voxels += w["ledger"].voxels.get("update_agents", 0)
        sweeps += w["ledger"].voxels.get("tile_sweep", 0)
    return sim, total, voxels, sweeps


def test_tile_size_bench(benchmark, workload):
    _, total, _, _ = benchmark.pedantic(
        lambda: run_with_tile(workload.with_(num_steps=12), 8, 12),
        rounds=1, iterations=1,
    )
    assert total > 0


def test_tile_size_tradeoff_table(workload):
    rows = []
    for side in TILE_SIDES:
        sim, total, voxels, sweeps = run_with_tile(workload, side)
        rows.append((side, sim.sweep_period, total, voxels, sweeps))
    print("\nTile-size ablation (64^2, 1 FOI, 60 steps, 2 devices):")
    print(f"{'tile':>6}{'period':>8}{'modeled s':>12}{'update vox':>12}{'sweep vox':>12}")
    for side, period, total, voxels, sweeps in rows:
        print(f"{side:>6}{period:>8}{total:>12.5f}{voxels:>12}{sweeps:>12}")
    # Smaller tiles process fewer update voxels (tighter tracking) ...
    assert rows[0][3] <= rows[-1][3]
    # ... but sweep more often (more voxels scanned by sweeps).
    assert rows[0][4] >= rows[-1][4]


def test_sweep_period_scales_with_tile(workload):
    for side in TILE_SIDES:
        sim = SimCovGPU(workload, num_devices=2, seed=9,
                        tile_shape=(side, side))
        assert sim.sweep_period == min(side, sim.sweep_period)
        assert sim.sweep_period <= side


def test_all_tile_sizes_identical_results(workload):
    """Tile size is a performance knob only — results are bitwise equal
    (the §3.2 safety invariant)."""
    import numpy as np

    reference = None
    for side in TILE_SIDES:
        sim, *_ = run_with_tile(workload, side)
        state = sim.gather_field("epi_state")
        tcell = sim.gather_field("tcell")
        if reference is None:
            reference = (state, tcell)
        else:
            np.testing.assert_array_equal(reference[0], state)
            np.testing.assert_array_equal(reference[1], tcell)
