"""Ablation: the CPU active-list/active-region optimization (§3.2).

SIMCoV-CPU 'reduces the computational work on inactive regions by
tracking the active voxels in an active list'.  This bench measures the
work the active region saves on sparse workloads by comparing tracked
active-voxel counts against full-domain processing, and verifies the
modeled CPU step time responds accordingly.
"""

import pytest

from repro.core.params import SimCovParams
from repro.perf.costs import cpu_step_seconds
from repro.perf.machine import PERLMUTTER
from repro.simcov_cpu.simulation import SimCovCPU


@pytest.fixture(scope="module")
def sparse_run():
    p = SimCovParams.fast_test(dim=(64, 64), num_infections=1, num_steps=80)
    sim = SimCovCPU(p, nranks=4, seed=8)
    sim.run()
    return p, sim


def test_active_region_bench(benchmark):
    p = SimCovParams.fast_test(dim=(32, 32), num_infections=1, num_steps=10)

    def run():
        sim = SimCovCPU(p, nranks=4, seed=8)
        sim.run(10)
        return sim

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sim.step_num == 10


def test_tracked_work_far_below_full_domain(sparse_run):
    p, sim = sparse_run
    total_voxels = p.num_voxels
    tracked = [sum(w["active_per_rank"]) for w in sim.step_work]
    full = total_voxels * len(tracked)
    saved = 1 - sum(tracked) / full
    print(f"\nActive-region ablation: processed {sum(tracked)} of {full} "
          f"voxel-steps ({saved:.0%} skipped)")
    # A sparse epidemic leaves much of the lung quiet until late in the
    # run (this 80-step window ends near saturation, so ~half is saved;
    # earlier windows save far more, as the early-step counts show).
    assert saved > 0.4
    assert tracked[0] < 0.02 * p.num_voxels  # early steps nearly free


def test_modeled_time_tracks_activity(sparse_run):
    """Step cost grows as the infection spreads — the active region is
    doing the pricing, not the domain size."""
    _, sim = sparse_run
    early = cpu_step_seconds(
        PERLMUTTER, sim.step_work[2]["active_per_rank"],
        sim.step_work[2]["comm"], 4,
    )
    late = cpu_step_seconds(
        PERLMUTTER, sim.step_work[-1]["active_per_rank"],
        sim.step_work[-1]["comm"], 4,
    )
    assert late > early


def test_full_domain_is_upper_bound(sparse_run):
    p, sim = sparse_run
    for w in sim.step_work:
        for count in w["active_per_rank"]:
            assert count <= p.num_voxels / 4 + 1


def test_dense_workload_converges_to_full_domain():
    """At saturation the active region approaches the whole domain — the
    regime where Fig 8 shows raw GPU throughput winning."""
    p = SimCovParams.fast_test(dim=(32, 32), num_infections=16, num_steps=60)
    sim = SimCovCPU(p, nranks=4, seed=8)
    sim.run()
    final = sum(sim.step_work[-1]["active_per_rank"])
    assert final > 0.9 * p.num_voxels
