"""Ablation: atomics vs shared-memory tree reduction (§3.3).

'We find, perhaps counterintuitively, that it is considerably faster to
perform a reduction over every single voxel in the simulated space than
include atomics throughout a single simulation update.'

This bench compares the two strategies' modeled cost across array sizes
and block geometries, locating the regime boundaries.
"""

import numpy as np
import pytest

from repro.gpusim.device import Device
from repro.gpusim.reduction import atomic_reduce, tree_reduce_device
from repro.perf.machine import PERLMUTTER

_NS = 1e-9


def modeled_atomic_seconds(n):
    d = Device(0)
    atomic_reduce(d, np.ones(n))
    m = PERLMUTTER
    return (
        d.ledger.atomic_ops * m.gpu_atomic_ns
        + d.ledger.atomic_conflicts * m.gpu_atomic_conflict_ns
    ) * _NS


def modeled_tree_seconds(n, block=256):
    d = Device(0)
    tree_reduce_device(d, np.ones(n), block_size=block)
    m = PERLMUTTER
    return (
        d.ledger.reduce_tree_elems * m.gpu_reduce_elem_ns
        + d.ledger.atomic_ops * m.gpu_atomic_ns
        + d.ledger.atomic_conflicts * m.gpu_atomic_conflict_ns
    ) * _NS


def test_reduction_bench(benchmark):
    d = Device(0)
    vals = np.ones(262_144)
    total = benchmark(lambda: tree_reduce_device(d, vals))
    assert total == 262_144


def test_tree_beats_atomics_at_scale():
    print("\nReduction-strategy ablation (modeled seconds):")
    print(f"{'N':>12}{'atomics':>14}{'tree':>14}{'ratio':>8}")
    for n in (2**10, 2**14, 2**18, 2**22):
        a = modeled_atomic_seconds(n)
        t = modeled_tree_seconds(n)
        print(f"{n:>12}{a:>14.6f}{t:>14.6f}{a / t:>8.1f}")
        assert t < a  # tree wins at every simulation-relevant size


def test_advantage_large_at_every_size():
    """Both strategies are asymptotically linear in N, so the tree's
    advantage is a large, roughly constant factor — which is why the
    paper's full-space tree reduction wins at any simulation size."""
    ratios = [
        modeled_atomic_seconds(n) / modeled_tree_seconds(n)
        for n in (2**10, 2**14, 2**18, 2**22)
    ]
    assert min(ratios) > 50
    assert max(ratios) / min(ratios) < 1.5  # roughly constant


def test_block_size_tradeoff():
    """Larger blocks mean fewer global atomics: tree cost decreases
    monotonically with block size (the paper notes the *atomics* path gets
    worse with larger blocks/thread counts — the tree path does not)."""
    n = 2**20
    costs = [modeled_tree_seconds(n, b) for b in (64, 128, 256, 512, 1024)]
    assert all(a >= b for a, b in zip(costs, costs[1:]))
    # And the geometry choice moves cost far less than the strategy choice.
    assert costs[0] / costs[-1] < 5
    assert modeled_atomic_seconds(n) / costs[0] > 10


def test_values_identical_across_strategies():
    rng = np.random.default_rng(0)
    vals = rng.integers(0, 1000, size=100_000).astype(np.float64)
    assert atomic_reduce(Device(0), vals) == tree_reduce_device(Device(1), vals)
