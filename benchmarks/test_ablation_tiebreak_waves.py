"""Ablation: single-exchange bid tiebreak vs two-wave intent/result RPCs.

§3.1: 'One solution ... is to first communicate the intent of every T
cell, perform a communication call, resolve tiebreaks ..., and then copy
the results back.  Fortunately, we can do better and avoid the second
communication call.'

This bench measures both protocols on the same workload:

- the GPU's single max-merge exchange (its cost from the ledger);
- the CPU baseline's two-wave RPC protocol (intent RPCs + result RPCs,
  counted by the PGAS runtime);

and a modeled 'GPU with a second wave' variant (one extra latency-bound
exchange per step), quantifying what the bid trick saves.
"""

import pytest

from repro.core.params import SimCovParams
from repro.perf.machine import PERLMUTTER
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU

_US = 1e-6


@pytest.fixture(scope="module")
def workload():
    return SimCovParams.fast_test(dim=(48, 48), num_infections=4, num_steps=100)


@pytest.fixture(scope="module")
def gpu_run(workload):
    sim = SimCovGPU(workload, num_devices=4, seed=2)
    sim.run()
    return sim


@pytest.fixture(scope="module")
def cpu_run(workload):
    sim = SimCovCPU(workload, nranks=4, seed=2)
    sim.run()
    return sim


def test_ablation_bench(benchmark, workload):
    sim = benchmark.pedantic(
        lambda: SimCovGPU(workload.with_(num_steps=10), num_devices=4,
                          seed=2).run(10),
        rounds=1, iterations=1,
    )
    assert len(sim) == 10


def test_single_wave_beats_two_waves(gpu_run):
    """Adding a second exchange wave costs one more latency round per
    neighbor per step — the §3.1 saving, made concrete."""
    ledger = gpu_run.cluster.ledger
    m = PERLMUTTER
    steps = gpu_run.step_num
    one_wave = (
        ledger.copies_intra * m.gpu_copy_lat_intra_us
        + ledger.copies_inter * m.gpu_copy_lat_inter_us
    ) * _US
    # Wave B is 5 of the 11 per-step exchanges; a second tiebreak round
    # would replay those messages (results/acks), roughly doubling them.
    second_wave = one_wave * (5 / 11)
    assert second_wave > 0
    print(
        f"\nTiebreak comm (modeled): single-wave {one_wave:.4f}s, "
        f"+2nd wave {one_wave + second_wave:.4f}s "
        f"(+{100 * second_wave / one_wave:.0f}%) over {steps} steps"
    )
    assert (one_wave + second_wave) / one_wave > 1.25


def test_cpu_two_wave_rpc_traffic_counted(cpu_run):
    """The CPU baseline really pays intent + result RPCs (wave 2 exists)."""
    comm = cpu_run.runtime.comm
    # Boundary-strip waves alone would be 3 RPCs per route per step; the
    # tiebreak protocol adds more whenever T cells cross boundaries.
    routes = len(cpu_run.exchanger.replace_routes)
    strip_rpcs = routes * 3 * cpu_run.step_num
    assert comm.rpcs >= strip_rpcs
    tiebreak_rpcs = comm.rpcs - strip_rpcs
    print(f"\nCPU RPCs: {comm.rpcs} total, {tiebreak_rpcs} tiebreak "
          f"(intent+result) over {cpu_run.step_num} steps")


def test_gpu_comm_volume_independent_of_tcell_count(workload):
    """The bid protocol's communication is fixed-size halo strips, not
    per-agent messages: its byte volume does not grow with T cells."""
    quiet = SimCovGPU(workload.with_(num_steps=20), num_devices=4, seed=2)
    quiet.run(20)
    busy = SimCovGPU(
        workload.with_(num_steps=20, tcell_generation_rate=200.0,
                       tcell_initial_delay=0),
        num_devices=4, seed=2,
    )
    busy.run(20)
    qb = quiet.cluster.ledger.copy_bytes_intra + quiet.cluster.ledger.copy_bytes_inter
    bb = busy.cluster.ledger.copy_bytes_intra + busy.cluster.ledger.copy_bytes_inter
    assert qb == bb
