"""Ablation (related work §5 / future work §6.1): latency hiding.

Aaby et al. [3] investigated latency hiding for multi-GPU ABMs;
SIMCoV-GPU's Fig 2 schedule is serialized (kernels, then copies, then
kernels).  Using real per-step costs from an executed run and the stream
overlap model, this bench bounds what an overlapped schedule — interior
kernels concurrent with halo copies, boundary kernels after both — could
save per step at each device count.
"""

import pytest

from repro.core.params import SimCovParams
from repro.perf.activity import DiskActivityModel
from repro.perf.machine import PAPER_SCALE_GROWTH_SPEED, PERLMUTTER
from repro.perf.projector import project_gpu_runtime
from repro.gpusim.stream import StreamSchedule


def step_components(num_devices: int):
    """Per-step (compute, comm, coord) seconds for the paper's base case."""
    p = SimCovParams.default_covid()
    model = DiskActivityModel(
        p, seed=1, speed=PAPER_SCALE_GROWTH_SPEED, supergrid=48, samples=16
    )
    r = project_gpu_runtime(PERLMUTTER, model, num_devices)
    steps = p.num_steps
    compute = (
        r.compute_seconds + r.reduce_seconds + r.sweep_seconds
        + r.launch_seconds
    ) / steps
    return compute, r.comm_seconds / steps, r.coord_seconds / steps


def make_schedules(compute: float, comm: float, coord: float,
                   boundary_fraction: float = 0.15):
    """Serial (today's Fig 2) vs overlapped step schedules."""
    serial = StreamSchedule()
    s = serial.stream()
    s.copy(comm, label="halo")
    s.compute(compute, label="kernels")
    s.host(coord, label="coordination")

    overlap = StreamSchedule()
    k, x, h = overlap.stream(), overlap.stream(), overlap.stream()
    ev = x.copy(comm, label="halo")
    interior = compute * (1 - boundary_fraction)
    k.compute(interior, label="interior kernels")
    k.wait(ev)
    k.compute(compute - interior, label="boundary kernels")
    done = k.compute(0.0, label="fence")
    h.wait(done)
    h.host(coord, label="coordination")
    return serial, overlap


def test_latency_hiding_bench(benchmark):
    compute, comm, coord = step_components(16)
    out = benchmark(
        lambda: make_schedules(compute, comm, coord)[1].makespan()
    )
    assert out > 0


@pytest.mark.parametrize("devices", [4, 16, 64])
def test_overlap_saves_more_at_scale(devices):
    compute, comm, coord = step_components(devices)
    serial, overlap = make_schedules(compute, comm, coord)
    saving = 1 - overlap.makespan() / serial.makespan()
    print(f"\n{devices} GPUs: serial {serial.makespan() * 1e3:.2f} ms/step, "
          f"overlapped {overlap.makespan() * 1e3:.2f} ms/step "
          f"({saving:.0%} saved)")
    assert 0.0 <= saving < 1.0
    if devices >= 16:
        # At scale, comm is a large share of the step: hiding it matters.
        assert saving > 0.05


def test_saving_bounded_by_comm_share():
    """Overlap can hide at most the halo-copy time."""
    compute, comm, coord = step_components(64)
    serial, overlap = make_schedules(compute, comm, coord)
    saved = serial.makespan() - overlap.makespan()
    assert saved <= comm + 1e-12
