"""Fig 5: CPU-vs-GPU correctness time series (§4.1).

Regenerates the three panels — virus count, tissue T cells, apoptotic
epithelial cells — as mean curves with min/max bands over multiple trials
of each implementation, and asserts that the trajectories agree the way
the paper's Fig 5 curves overlap.
"""

import numpy as np
import pytest

from repro.core.params import SimCovParams
from repro.experiments.correctness import TRACKED_STATS, run_correctness
from repro.experiments.plotting import ascii_series


@pytest.fixture(scope="module")
def result():
    params = SimCovParams.fast_test(dim=(32, 32), num_infections=2,
                                    num_steps=300)
    return run_correctness(params, trials=3, nranks=2, num_devices=2)


def test_fig5_generation(benchmark):
    params = SimCovParams.fast_test(dim=(24, 24), num_infections=2,
                                    num_steps=60)
    out = benchmark.pedantic(
        lambda: run_correctness(params, trials=2, nranks=2, num_devices=2),
        rounds=1, iterations=1,
    )
    assert set(out.cpu_series) == {s for s, _ in TRACKED_STATS}


@pytest.mark.parametrize("stat,display", TRACKED_STATS)
def test_fig5_curves_track(result, stat, display):
    cm, cmin, cmax, gm, gmin, gmax = result.fig5_bands(stat)
    print("\n" + ascii_series(
        {"CPU": (result.steps, cm), "GPU": (result.steps, gm)},
        title=f"Fig 5 — {display}",
    ))
    if cm.max() > 0:
        # Mean trajectories are highly correlated (visually overlapping).
        assert np.corrcoef(cm, gm)[0, 1] > 0.9
        # GPU means stay within a widened CPU trial band most of the time.
        band = (cmax - cmin) + 0.2 * cm.max()
        inside = np.abs(gm - cm) <= band
        assert inside.mean() > 0.8


def test_fig5_virus_peaks_and_declines(result):
    cm, *_ = result.fig5_bands("virions_total")
    peak = int(np.argmax(cm))
    assert 0 < peak < len(cm) - 1
    assert cm[-1] < cm[peak]


def test_fig5_tcells_rise_after_delay(result):
    _, _, _, gm, _, _ = result.fig5_bands("tcells_tissue")
    assert gm[:50].max() == 0  # before the adaptive-response delay
    assert gm.max() > 0
