"""Robustness of the reproduced scaling shapes under model perturbation.

Each machine-model constant is halved and doubled; the paper's
qualitative findings must survive most perturbations — evidence that the
shapes come from counted work, not from the calibration point.
"""

import pytest

from repro.perf.machine import MachineModel
from repro.perf.sensitivity import evaluate_shape, shape_robustness


def test_sensitivity_bench(benchmark):
    out = benchmark.pedantic(
        lambda: evaluate_shape(MachineModel(), samples=8),
        rounds=1, iterations=1,
    )
    assert out.all_hold()


def test_baseline_model_satisfies_all_findings():
    assert evaluate_shape(MachineModel(), samples=16).all_hold()


def test_findings_survive_2x_perturbations():
    robustness = shape_robustness(factors=(0.5, 2.0), samples=10)
    print("\nShape robustness under 0.5x/2x per-constant perturbation "
          f"({robustness['models']} models):")
    for name, frac in robustness.items():
        if name != "models":
            print(f"  {name:<28} {frac:.0%}")
    # Core findings are highly robust; the base-speedup margin is the
    # most calibration-sensitive and may dip under extreme CPU cheapening.
    assert robustness["foi_monotone_growth"] >= 0.9
    assert robustness["strong_monotone_decline"] >= 0.75
    assert robustness["weak_sustained_advantage"] >= 0.75
    assert robustness["strong_gpu_wins_at_base"] >= 0.75
