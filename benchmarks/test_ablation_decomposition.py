"""Ablation: linear vs block domain decomposition (Fig 1B).

Block decomposition minimizes halo surface (communication volume); linear
decomposition has simpler neighbor topology but strictly more boundary.
Measured on the real implementations' communication ledgers and on the
analytic surface formula across rank counts.
"""

import pytest

from repro.core.params import SimCovParams
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.spec import GridSpec
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU


def total_surface(spec, nranks, kind):
    d = Decomposition.make(spec, nranks, kind)
    return sum(d.halo_surface_voxels(r) for r in range(nranks))


def test_decomposition_bench(benchmark):
    spec = GridSpec((4096, 4096))
    out = benchmark(lambda: total_surface(spec, 64, DecompositionKind.BLOCK))
    assert out > 0


@pytest.mark.parametrize("nranks", [4, 16, 64, 256])
def test_block_surface_smaller(nranks):
    spec = GridSpec((4096, 4096))
    lin = total_surface(spec, nranks, DecompositionKind.LINEAR)
    blk = total_surface(spec, nranks, DecompositionKind.BLOCK)
    print(f"\n{nranks} ranks: linear surface {lin}, block surface {blk}, "
          f"ratio {lin / blk:.2f}")
    assert blk < lin


def test_linear_gap_grows_with_ranks():
    spec = GridSpec((4096, 4096))
    r4 = total_surface(spec, 4, DecompositionKind.LINEAR) / total_surface(
        spec, 4, DecompositionKind.BLOCK
    )
    r64 = total_surface(spec, 64, DecompositionKind.LINEAR) / total_surface(
        spec, 64, DecompositionKind.BLOCK
    )
    assert r64 > r4


def test_cpu_measured_rpc_bytes_follow_surface():
    p = SimCovParams.fast_test(dim=(32, 32), num_infections=2, num_steps=20)
    blk = SimCovCPU(p, nranks=4, seed=1)
    lin = SimCovCPU(p, nranks=4, seed=1, decomposition=DecompositionKind.LINEAR)
    blk.run(20)
    lin.run(20)
    assert lin.runtime.comm.rpc_bytes > blk.runtime.comm.rpc_bytes


def test_gpu_measured_halo_bytes_follow_surface():
    p = SimCovParams.fast_test(dim=(32, 32), num_infections=2, num_steps=20)
    blk = SimCovGPU(p, num_devices=4, seed=1)
    lin = SimCovGPU(p, num_devices=4, seed=1,
                    decomposition=DecompositionKind.LINEAR)
    blk.run(20)
    lin.run(20)
    b = blk.cluster.ledger
    l = lin.cluster.ledger
    assert (l.copy_bytes_intra + l.copy_bytes_inter) > (
        b.copy_bytes_intra + b.copy_bytes_inter
    )


def test_results_identical_across_decompositions():
    """Decomposition is a performance choice, never a semantic one."""
    import numpy as np

    p = SimCovParams.fast_test(dim=(32, 32), num_infections=2, num_steps=30)
    blk = SimCovGPU(p, num_devices=4, seed=1)
    lin = SimCovGPU(p, num_devices=4, seed=1,
                    decomposition=DecompositionKind.LINEAR)
    blk.run(30)
    lin.run(30)
    np.testing.assert_array_equal(
        blk.gather_field("epi_state"), lin.gather_field("epi_state")
    )
    np.testing.assert_array_equal(
        blk.gather_field("tcell"), lin.gather_field("tcell")
    )
