#!/usr/bin/env python
"""Step-engine benchmark runner: activity gating vs whole-domain baseline.

Measures steps/sec and per-phase seconds (via
:class:`~repro.engine.metrics.PhaseMetrics`) for the canonical small and
medium 2D configurations, running each once gated (the §3.2 periodic
tile sweep) and once force-ungated, and writes ``BENCH_step_engine.json``
at the repo root.  Every run pair is also checked for bitwise identity —
a benchmark that drifted from the ground truth is reported as failed,
not merely slow.

Usage (from the repo root, no install needed)::

    python benchmarks/run_benchmarks.py            # all configs
    python benchmarks/run_benchmarks.py --config small_2d
    python benchmarks/run_benchmarks.py --steps 40 --out /tmp/bench.json

The configs are fixed-seed and deterministic: the recorded stats (active
fractions, bitwise identity) are repeatable; only the timings vary run
to run.
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.testing import repo_root

#: Canonical benchmark configs.  ``small_2d`` is the early-infection
#: regime the ≥2× acceptance gate applies to: one focus of infection in a
#: 256² domain stays spatially confined for the whole run, so gating has
#: quiescent space to skip.  ``medium_2d`` grows the domain to show the
#: gap widening with scale.
CONFIGS = {
    "small_2d": {"dim": (256, 256), "num_infections": 1, "steps": 100, "seed": 11},
    "medium_2d": {"dim": (384, 384), "num_infections": 1, "steps": 120, "seed": 11},
}

#: Voxel fields compared for the bitwise-identity check.
STATE_FIELDS = (
    "epi_state", "epi_timer", "virions", "chemokine",
    "tcell", "tcell_tissue_time", "tcell_bound_time",
)


def _run_once(params, seed, steps, active_gating):
    t0 = time.perf_counter()
    sim = SequentialSimCov(params, seed=seed, active_gating=active_gating)
    sim.run(steps)
    wall = time.perf_counter() - t0
    return sim, {
        "wall_seconds": round(wall, 4),
        "steps_per_sec": round(steps / wall, 2),
        "phase_seconds": {
            name: round(sec, 4) for name, sec in sim.phase_metrics.seconds.items()
        },
    }


def _identical(gated, ungated):
    for name in STATE_FIELDS:
        if not np.array_equal(getattr(gated.block, name), getattr(ungated.block, name)):
            return False
    if len(gated.series) != len(ungated.series):
        return False
    return all(gated.series[i] == ungated.series[i] for i in range(len(gated.series)))


def run_config(name, spec, steps_override=None):
    steps = steps_override or spec["steps"]
    params = SimCovParams.fast_test(
        dim=spec["dim"], num_infections=spec["num_infections"], num_steps=steps,
    )
    gated, gated_rec = _run_once(params, spec["seed"], steps, active_gating=True)
    ungated, ungated_rec = _run_once(params, spec["seed"], steps, active_gating=False)

    voxels = int(np.prod(spec["dim"]))
    active = [w["active_voxels"] / voxels for w in gated.step_work]
    result = {
        "dim": list(spec["dim"]),
        "num_infections": spec["num_infections"],
        "steps": steps,
        "seed": spec["seed"],
        "gated": gated_rec,
        "ungated": ungated_rec,
        "speedup": round(gated_rec["steps_per_sec"] / ungated_rec["steps_per_sec"], 3),
        "mean_active_fraction": round(float(np.mean(active)), 4),
        "final_active_fraction": round(active[-1], 4),
        "bitwise_identical": _identical(gated, ungated),
    }
    print(
        f"{name}: {result['speedup']}x "
        f"(gated {gated_rec['steps_per_sec']} steps/s, "
        f"ungated {ungated_rec['steps_per_sec']} steps/s, "
        f"mean active {100 * result['mean_active_fraction']:.1f}%, "
        f"bitwise_identical={result['bitwise_identical']})"
    )
    return result


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--config", choices=[*CONFIGS, "all"], default="all")
    ap.add_argument("--steps", type=int, default=None,
                    help="override step count (smoke/CI use)")
    ap.add_argument("--out", type=pathlib.Path,
                    default=repo_root() / "BENCH_step_engine.json")
    args = ap.parse_args(argv)

    names = list(CONFIGS) if args.config == "all" else [args.config]
    payload = {
        "benchmark": "step_engine_activity_gating",
        "metric": "steps_per_sec (sequential driver, gated vs ungated)",
        "configs": {n: run_config(n, CONFIGS[n], args.steps) for n in names},
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0 if all(c["bitwise_identical"] for c in payload["configs"].values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
