#!/usr/bin/env python
"""Step-engine benchmark runner: activity gating vs whole-domain baseline,
the multi-process distributed backend, and the batched ensemble backend.

Measures steps/sec and per-phase seconds (via
:class:`~repro.engine.metrics.PhaseMetrics`) for the canonical small and
medium 2D configurations, running each once gated (the §3.2 periodic
tile sweep), once force-ungated, and once on the distributed runtime
(``repro.dist``, default 4 worker processes); measures ensemble
simulations/sec at batch 1/16/64 against a loop of solo runs on the
``small_2d`` run config (``repro.experiments.configs.RUN_CONFIGS``); and
writes ``BENCH_step_engine.json`` at the repo root.  A strong-scaling
section sweeps the dist backend over rank counts on ``medium_2d`` with a
per-rank exchange/wait breakdown and activity-gated strip-skip counts.
Every run is also checked for bitwise identity against the sequential
reference — a benchmark that drifted from the ground truth is reported
as failed, not merely slow.

Distributed numbers are honest: the record includes ``cpu_count`` so a
reader can see whether the ranks had cores to spread over.  On a
single-core container the dist run *cannot* beat sequential (three extra
processes time-slice one core and pay barrier latency on top); the
paper-regime speedup needs >= nranks cores.

Usage (from the repo root, no install needed)::

    python benchmarks/run_benchmarks.py            # all configs
    python benchmarks/run_benchmarks.py --config small_2d
    python benchmarks/run_benchmarks.py --steps 40 --out /tmp/bench.json

The configs are fixed-seed and deterministic: the recorded stats (active
fractions, bitwise identity) are repeatable; only the timings vary run
to run.
"""

import argparse
import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.obs.runmeta import run_metadata
from repro.testing import repo_root

#: Canonical benchmark configs.  ``small_2d`` is the early-infection
#: regime the ≥2× acceptance gate applies to: one focus of infection in a
#: 256² domain stays spatially confined for the whole run, so gating has
#: quiescent space to skip.  ``medium_2d`` grows the domain to show the
#: gap widening with scale.
CONFIGS = {
    "small_2d": {"dim": (256, 256), "num_infections": 1, "steps": 100, "seed": 11},
    "medium_2d": {"dim": (384, 384), "num_infections": 1, "steps": 120, "seed": 11},
}

#: Voxel fields compared for the bitwise-identity check.
STATE_FIELDS = (
    "epi_state", "epi_timer", "virions", "chemokine",
    "tcell", "tcell_tissue_time", "tcell_bound_time",
)


def _run_once(params, seed, steps, active_gating):
    t0 = time.perf_counter()
    sim = SequentialSimCov(params, seed=seed, active_gating=active_gating)
    sim.run(steps)
    wall = time.perf_counter() - t0
    return sim, {
        "wall_seconds": round(wall, 4),
        "steps_per_sec": round(steps / wall, 2),
        "phase_seconds": {
            name: round(sec, 4) for name, sec in sim.phase_metrics.seconds.items()
        },
    }


def _run_dist(params, seed, steps, nranks):
    from repro.dist import DistSimCov

    t0 = time.perf_counter()
    with DistSimCov(params, nranks=nranks, seed=seed) as sim:
        sim.run(steps)
        wall = time.perf_counter() - t0
        record = {
            "nranks": nranks,
            "wall_seconds": round(wall, 4),
            "steps_per_sec": round(steps / wall, 2),
            # Worker-side time, summed over ranks (the coordinator only
            # reduces): > wall_seconds when ranks share cores.
            "worker_phase_seconds": {
                name: round(sec, 4)
                for name, sec in sim.phase_metrics.seconds.items()
            },
            "worker_phase_calls": dict(sim.phase_metrics.calls),
            # Per-rank breakdown (the load-balance view): one
            # {phase: seconds} dict per rank, in rank order.
            "per_rank_phase_seconds": [
                {name: round(sec, 4) for name, sec in m.seconds.items()}
                for m in sim.backend.runtime.per_rank_metrics()
            ],
            # Barrier-wait seconds per rank, split out of the phase
            # totals above: a rank whose exchange time is mostly wait is
            # starved, not communication-bound.
            "per_rank_wait_seconds": {
                name: [round(sec, 4) for sec in per_rank]
                for name, per_rank in
                sim.backend.runtime.per_rank_wait_seconds().items()
            },
        }
        pulled, skipped = sim.backend.runtime.strip_counts()
        record["strips"] = {
            "pulled": pulled,
            "skipped": skipped,
            "skipped_fraction": round(skipped / max(pulled + skipped, 1), 4),
        }
        fields = {name: sim.gather_field(name) for name in STATE_FIELDS}
        series = [sim.series[i] for i in range(len(sim.series))]
    return fields, series, record


def _identical(gated, ungated):
    for name in STATE_FIELDS:
        if not np.array_equal(getattr(gated.block, name), getattr(ungated.block, name)):
            return False
    if len(gated.series) != len(ungated.series):
        return False
    return all(gated.series[i] == ungated.series[i] for i in range(len(gated.series)))


def _dist_identical(fields, series, ref):
    for name in STATE_FIELDS:
        if not np.array_equal(fields[name], getattr(ref.block, name)[ref.block.interior]):
            return False
    if len(series) != len(ref.series):
        return False
    return all(series[i] == ref.series[i] for i in range(len(series)))


def _member_identical(ens, b, solo):
    """Whether ensemble member ``b`` matches its solo run bitwise (final
    state fields + the whole per-step series)."""
    for name in STATE_FIELDS:
        if not np.array_equal(
            ens.gather_field(name, member=b),
            getattr(solo.block, name)[solo.block.interior],
        ):
            return False
    ms = ens.member_series[b]
    if len(ms) != len(solo.series):
        return False
    return all(ms[i] == solo.series[i] for i in range(len(ms)))


#: Ensemble batch sizes benchmarked against the solo-run loop.
ENSEMBLE_BATCHES = (1, 16, 64)


def run_ensemble_config(steps_override=None, batches=ENSEMBLE_BATCHES):
    """Simulations/sec of the batched ensemble backend vs a solo loop.

    The baseline runs every solo simulation for real (the loop wall time
    for batch B is the sum of the first B runs), and those runs double as
    the ground truth for the bitwise-identity check on the largest batch.
    """
    from repro.engine.ensemble import EnsembleSimCov
    from repro.experiments.configs import get_run_config

    cfg = get_run_config("small_2d")
    steps = steps_override or cfg.steps
    params = SimCovParams.fast_test(
        dim=cfg.dim, num_infections=cfg.num_infections, num_steps=steps,
    )
    max_batch = max(batches)
    # Warm both code paths so one-time numpy/scipy setup does not bias
    # whichever side happens to run first.
    EnsembleSimCov(params, seeds=np.arange(2, dtype=np.int64)).run(min(steps, 30))
    SequentialSimCov(params, seed=0).run(min(steps, 30))

    solo_walls = []
    solos = []
    for s in range(max_batch):
        t0 = time.perf_counter()
        sim = SequentialSimCov(params, seed=s)
        sim.run(steps)
        solo_walls.append(time.perf_counter() - t0)
        solos.append(sim)

    result = {
        "config": cfg.name,
        "dim": list(cfg.dim),
        "num_infections": cfg.num_infections,
        "steps": steps,
        "cpu_count": os.cpu_count(),
        "meta": run_metadata(config=cfg.name),
        "batches": {},
        "bitwise_identical": True,
    }
    for batch in batches:
        seeds = np.arange(batch, dtype=np.int64)
        t0 = time.perf_counter()
        ens = EnsembleSimCov(params, seeds=seeds)
        ens.run(steps)
        ens_wall = time.perf_counter() - t0
        loop_wall = float(np.sum(solo_walls[:batch]))
        identical = all(
            _member_identical(ens, b, solos[b]) for b in range(batch)
        )
        result["bitwise_identical"] = result["bitwise_identical"] and identical
        rec = {
            "ensemble_wall_seconds": round(ens_wall, 4),
            "ensemble_sims_per_sec": round(batch / ens_wall, 3),
            "ensemble_member_steps_per_sec": round(batch * steps / ens_wall, 1),
            "solo_loop_wall_seconds": round(loop_wall, 4),
            "solo_loop_sims_per_sec": round(batch / loop_wall, 3),
            "speedup_vs_solo_loop": round(loop_wall / ens_wall, 2),
            "bitwise_identical": identical,
        }
        result["batches"][str(batch)] = rec
        print(
            f"ensemble/{cfg.name} batch={batch}: "
            f"{rec['speedup_vs_solo_loop']}x vs solo loop "
            f"(ensemble {rec['ensemble_member_steps_per_sec']} member-steps/s,"
            f" solo loop {round(batch * steps / loop_wall, 1)},"
            f" bitwise_identical={identical})"
        )
    return result


def run_config(name, spec, steps_override=None, dist_nranks=4):
    steps = steps_override or spec["steps"]
    params = SimCovParams.fast_test(
        dim=spec["dim"], num_infections=spec["num_infections"], num_steps=steps,
    )
    gated, gated_rec = _run_once(params, spec["seed"], steps, active_gating=True)
    ungated, ungated_rec = _run_once(params, spec["seed"], steps, active_gating=False)

    voxels = int(np.prod(spec["dim"]))
    active = [w["active_voxels"] / voxels for w in gated.step_work]
    result = {
        "dim": list(spec["dim"]),
        "num_infections": spec["num_infections"],
        "steps": steps,
        "seed": spec["seed"],
        "cpu_count": os.cpu_count(),
        "meta": run_metadata(config=name),
        "gated": gated_rec,
        "ungated": ungated_rec,
        "speedup": round(gated_rec["steps_per_sec"] / ungated_rec["steps_per_sec"], 3),
        "mean_active_fraction": round(float(np.mean(active)), 4),
        "final_active_fraction": round(active[-1], 4),
        "bitwise_identical": _identical(gated, ungated),
    }
    print(
        f"{name}: {result['speedup']}x "
        f"(gated {gated_rec['steps_per_sec']} steps/s, "
        f"ungated {ungated_rec['steps_per_sec']} steps/s, "
        f"mean active {100 * result['mean_active_fraction']:.1f}%, "
        f"bitwise_identical={result['bitwise_identical']})"
    )
    if dist_nranks:
        fields, series, dist_rec = _run_dist(
            params, spec["seed"], steps, dist_nranks
        )
        dist_rec["speedup_vs_gated"] = round(
            dist_rec["steps_per_sec"] / gated_rec["steps_per_sec"], 3
        )
        dist_rec["speedup_vs_ungated"] = round(
            dist_rec["steps_per_sec"] / ungated_rec["steps_per_sec"], 3
        )
        dist_rec["bitwise_identical"] = _dist_identical(fields, series, gated)
        result["dist"] = dist_rec
        result["bitwise_identical"] = (
            result["bitwise_identical"] and dist_rec["bitwise_identical"]
        )
        print(
            f"{name}/dist: {dist_rec['speedup_vs_gated']}x vs gated "
            f"({dist_rec['steps_per_sec']} steps/s on {dist_nranks} ranks, "
            f"bitwise_identical={dist_rec['bitwise_identical']})"
        )
    return result


#: Rank counts swept by the strong-scaling section.
STRONG_SCALING_NRANKS = (1, 2, 4)

#: A measured speedup may regress to this fraction of the recorded one
#: before the floor check fails — headroom for timer jitter and shared
#: CI runners, not for real regressions (the fused protocol's win over
#: the seed's 8-barrier step is far larger than 30%).
FLOOR_FRACTION = 0.7


def run_strong_scaling(config="medium_2d", nranks_list=STRONG_SCALING_NRANKS,
                       steps_override=None):
    """Strong scaling: fixed problem, growing rank count.

    One gated sequential run is the baseline; every dist run is checked
    bitwise against it.  The per-rank exchange/wait breakdown is what
    makes the numbers interpretable: on a single-core box the waits
    dominate (ranks time-slice one core), with >= nranks cores they
    shrink toward the copy cost.
    """
    spec = CONFIGS[config]
    steps = steps_override or spec["steps"]
    params = SimCovParams.fast_test(
        dim=spec["dim"], num_infections=spec["num_infections"], num_steps=steps,
    )
    gated, gated_rec = _run_once(params, spec["seed"], steps, active_gating=True)
    section = {
        "config": config,
        "dim": list(spec["dim"]),
        "steps": steps,
        "cpu_count": os.cpu_count(),
        "meta": run_metadata(config=config),
        "sequential_gated": gated_rec,
        "ranks": {},
        "bitwise_identical": True,
    }
    for nranks in nranks_list:
        fields, series, rec = _run_dist(params, spec["seed"], steps, nranks)
        rec["speedup_vs_gated"] = round(
            rec["steps_per_sec"] / gated_rec["steps_per_sec"], 3
        )
        rec["bitwise_identical"] = _dist_identical(fields, series, gated)
        section["bitwise_identical"] = (
            section["bitwise_identical"] and rec["bitwise_identical"]
        )
        section["ranks"][str(nranks)] = rec
        waits = rec["per_rank_wait_seconds"]
        total_wait = sum(sum(per_rank) for per_rank in waits.values())
        print(
            f"strong_scaling/{config} nranks={nranks}: "
            f"{rec['speedup_vs_gated']}x vs gated "
            f"({rec['steps_per_sec']} steps/s, "
            f"barrier wait {total_wait:.2f}s summed over ranks, "
            f"strips skipped {rec['strips']['skipped_fraction']:.0%}, "
            f"bitwise_identical={rec['bitwise_identical']})"
        )
    return section


def check_speedup_floor(payload, reference_path):
    """Fail if any dist/sequential speedup regressed below the recorded
    BENCH value (times :data:`FLOOR_FRACTION`).

    Only configs present in both payloads are compared, so a smoke run
    of one config gates just that config.  The recorded file carries
    ``cpu_count`` so the comparison stays honest across machines: a
    floor measured on fewer (or equal) cores is conservative for this
    machine and is enforced; a floor measured on *more* cores than we
    have would fail spuriously and is skipped with a notice instead.
    """
    reference = json.loads(pathlib.Path(reference_path).read_text())
    ref_cores = reference.get("cpu_count") or 1
    failures, checked = [], 0
    for name, cfg in payload.get("configs", {}).items():
        ref_cfg = reference.get("configs", {}).get(name)
        if not ref_cfg or "dist" not in ref_cfg or "dist" not in cfg:
            continue
        if cfg["dist"]["nranks"] != ref_cfg["dist"]["nranks"]:
            continue
        if ref_cores > (os.cpu_count() or 1):
            print(
                f"floor check: skipping {name} — reference recorded on "
                f"{ref_cores} cores, this machine has {os.cpu_count()}"
            )
            continue
        floor = ref_cfg["dist"]["speedup_vs_gated"] * FLOOR_FRACTION
        got = cfg["dist"]["speedup_vs_gated"]
        checked += 1
        if got < floor:
            failures.append(
                f"{name}: dist speedup_vs_gated {got} fell below floor "
                f"{floor:.3f} (recorded {ref_cfg['dist']['speedup_vs_gated']}"
                f" * {FLOOR_FRACTION})"
            )
        else:
            print(f"floor check: {name} dist speedup {got} >= {floor:.3f} ok")
    if failures:
        for line in failures:
            print(f"FLOOR REGRESSION: {line}", file=sys.stderr)
        return False
    if not checked:
        print("floor check: no comparable configs (nothing gated)")
    return True


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--config",
                    choices=[*CONFIGS, "ensemble", "strong_scaling", "all"],
                    default="all")
    ap.add_argument("--steps", type=int, default=None,
                    help="override step count (smoke/CI use)")
    ap.add_argument("--dist-nranks", type=int, default=4,
                    help="worker processes for the dist run (0 disables)")
    ap.add_argument("--ensemble-batches", type=int, nargs="+",
                    default=list(ENSEMBLE_BATCHES),
                    help="ensemble batch sizes to benchmark (smoke/CI use)")
    ap.add_argument("--strong-scaling-nranks", type=int, nargs="+",
                    default=list(STRONG_SCALING_NRANKS),
                    help="rank counts swept by the strong-scaling section")
    ap.add_argument("--check-floor", type=pathlib.Path, default=None,
                    metavar="REFERENCE_JSON",
                    help="fail if any dist speedup_vs_gated regresses below "
                    f"{FLOOR_FRACTION}x the value in this recorded BENCH file")
    ap.add_argument("--out", type=pathlib.Path,
                    default=repo_root() / "BENCH_step_engine.json")
    args = ap.parse_args(argv)

    if args.config == "all":
        names = list(CONFIGS)
        with_ensemble = True
        with_strong_scaling = args.dist_nranks > 0
    else:
        names = [args.config] if args.config in CONFIGS else []
        with_ensemble = args.config == "ensemble"
        with_strong_scaling = args.config == "strong_scaling"
    payload = {
        "benchmark": "step_engine_activity_gating",
        "metric": "steps_per_sec (sequential gated/ungated + dist backend) "
        "and ensemble sims_per_sec vs solo loop",
        # Distributed/ensemble speedups only mean something relative to this.
        "cpu_count": os.cpu_count(),
        # Which environment produced the numbers — bench diff refuses to
        # compare payloads whose host/cpu_count differ.
        "meta": run_metadata(),
        "configs": {
            n: run_config(n, CONFIGS[n], args.steps, args.dist_nranks)
            for n in names
        },
    }
    if with_ensemble:
        payload["ensemble"] = run_ensemble_config(
            args.steps, batches=tuple(args.ensemble_batches)
        )
    if with_strong_scaling:
        payload["strong_scaling"] = run_strong_scaling(
            nranks_list=tuple(args.strong_scaling_nranks),
            steps_override=args.steps,
        )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    ok = all(c["bitwise_identical"] for c in payload["configs"].values())
    if with_ensemble:
        ok = ok and payload["ensemble"]["bitwise_identical"]
    if with_strong_scaling:
        ok = ok and payload["strong_scaling"]["bitwise_identical"]
    if args.check_floor is not None:
        ok = check_speedup_floor(payload, args.check_floor) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
