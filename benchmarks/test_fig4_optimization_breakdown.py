"""Fig 4: the optimization-breakdown profile (§3.4).

Regenerates the four-bar chart — Unoptimized / Fast Reduction / Memory
Tiling / Combined, each split into Update-Agents vs Reduce-Statistics
time — from real executed runs of all four prototypes.

Paper shape asserted: reductions dominate the unoptimized profile; each
optimization helps alone; tiling also improves reductions; combined wins.
"""

import pytest

from repro.core.params import SimCovParams
from repro.experiments.profiling import format_fig4, run_profiling
from repro.simcov_gpu.variants import GpuVariant


NUM_STEPS = 40


@pytest.fixture(scope="module")
def rows():
    params = SimCovParams.fast_test(
        dim=(64, 64), num_infections=1, num_steps=NUM_STEPS
    )
    return run_profiling(params, num_devices=2, seed=11)


def test_fig4_breakdown(benchmark, rows):
    params = SimCovParams.fast_test(dim=(48, 48), num_infections=1, num_steps=12)
    result = benchmark.pedantic(
        lambda: run_profiling(params, num_devices=2, seed=11),
        rounds=1, iterations=1,
    )
    assert len(result) == 4


def test_fig4_reductions_dominate_unoptimized(rows):
    print("\n" + format_fig4(rows))
    by = {r.variant: r for r in rows}
    unopt = by[GpuVariant.UNOPTIMIZED]
    assert unopt.reduce_seconds > unopt.update_seconds


def test_fig4_each_optimization_helps_alone(rows):
    by = {r.variant: r for r in rows}
    assert by[GpuVariant.FAST_REDUCTION].total_seconds < by[GpuVariant.UNOPTIMIZED].total_seconds
    assert by[GpuVariant.MEMORY_TILING].total_seconds < by[GpuVariant.UNOPTIMIZED].total_seconds


def test_fig4_combined_is_fastest(rows):
    by = {r.variant: r for r in rows}
    assert by[GpuVariant.COMBINED].total_seconds == min(
        r.total_seconds for r in rows
    )


def test_fig4_tiling_also_improves_reductions(rows):
    """'Memory tiling also improves the performance of reductions, likely
    due to the enhanced data locality' (§3.4)."""
    by = {r.variant: r for r in rows}
    assert (
        by[GpuVariant.MEMORY_TILING].reduce_seconds
        < by[GpuVariant.UNOPTIMIZED].reduce_seconds
    )


def test_fig4_optimizations_compose_independently(rows):
    """'The optimizations combine very effectively, which indicates that
    their speedups come from mostly independent effects' (§3.4)."""
    by = {r.variant: r for r in rows}
    unopt = by[GpuVariant.UNOPTIMIZED].total_seconds
    gain_fast = unopt / by[GpuVariant.FAST_REDUCTION].total_seconds
    gain_tile = unopt / by[GpuVariant.MEMORY_TILING].total_seconds
    gain_comb = unopt / by[GpuVariant.COMBINED].total_seconds
    # Combined gain approaches the product of individual gains
    # (within a factor reflecting the shared fixed costs).
    assert gain_comb > max(gain_fast, gain_tile)
    assert gain_comb > 0.3 * gain_fast * gain_tile


class TestEnginePhaseTimings:
    """The breakdown is observable straight from the engine's per-phase
    hooks (sim.phase_metrics, surfaced as ProfilingRow.phase_seconds /
    phase_calls) — no variant-specific ledger spelunking required."""

    def test_every_variant_reports_phase_timings(self, rows):
        for r in rows:
            assert r.phase_seconds, r.variant
            # Every mandatory kernel phase executed every step and accrued
            # wall time.
            for name in ("age_extravasate", "intents", "resolve",
                         "epithelial", "diffuse", "reduce"):
                assert r.phase_calls[name] == NUM_STEPS, (r.variant, name)
                assert r.phase_seconds[name] > 0.0, (r.variant, name)

    def test_exchange_phases_timed(self, rows):
        for r in rows:
            # The GPU schedule's halo waves (A, B, C) run every step.
            for name in ("boundary_exchange", "tiebreak_exchange",
                         "concentration_exchange"):
                assert r.phase_calls[name] == NUM_STEPS, (r.variant, name)

    def test_tile_sweep_only_runs_under_tiling(self, rows):
        by = {r.variant: r for r in rows}
        for variant, r in by.items():
            sweeps = r.phase_calls.get("tile_sweep", 0)
            if variant.use_tiling:
                # Periodic: more than never, less than every step.
                assert 0 < sweeps < NUM_STEPS, variant
            else:
                assert sweeps == 0, variant

    def test_single_wave_tiebreak_visible_in_phase_counts(self, rows):
        """The GPU path's §3.1 single-exchange protocol shows up directly
        in the counters: the two-wave phases (result delivery + source-side
        apply) never execute, the one tiebreak exchange runs every step."""
        for r in rows:
            assert r.phase_calls["tiebreak_exchange"] == NUM_STEPS, r.variant
            assert r.phase_calls.get("result_exchange", 0) == 0, r.variant
            assert r.phase_calls.get("apply_results", 0) == 0, r.variant
