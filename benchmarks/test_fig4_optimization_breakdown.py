"""Fig 4: the optimization-breakdown profile (§3.4).

Regenerates the four-bar chart — Unoptimized / Fast Reduction / Memory
Tiling / Combined, each split into Update-Agents vs Reduce-Statistics
time — from real executed runs of all four prototypes.

Paper shape asserted: reductions dominate the unoptimized profile; each
optimization helps alone; tiling also improves reductions; combined wins.
"""

import pytest

from repro.core.params import SimCovParams
from repro.experiments.profiling import format_fig4, run_profiling
from repro.simcov_gpu.variants import GpuVariant


@pytest.fixture(scope="module")
def rows():
    params = SimCovParams.fast_test(dim=(64, 64), num_infections=1, num_steps=40)
    return run_profiling(params, num_devices=2, seed=11)


def test_fig4_breakdown(benchmark, rows):
    params = SimCovParams.fast_test(dim=(48, 48), num_infections=1, num_steps=12)
    result = benchmark.pedantic(
        lambda: run_profiling(params, num_devices=2, seed=11),
        rounds=1, iterations=1,
    )
    assert len(result) == 4


def test_fig4_reductions_dominate_unoptimized(rows):
    print("\n" + format_fig4(rows))
    by = {r.variant: r for r in rows}
    unopt = by[GpuVariant.UNOPTIMIZED]
    assert unopt.reduce_seconds > unopt.update_seconds


def test_fig4_each_optimization_helps_alone(rows):
    by = {r.variant: r for r in rows}
    assert by[GpuVariant.FAST_REDUCTION].total_seconds < by[GpuVariant.UNOPTIMIZED].total_seconds
    assert by[GpuVariant.MEMORY_TILING].total_seconds < by[GpuVariant.UNOPTIMIZED].total_seconds


def test_fig4_combined_is_fastest(rows):
    by = {r.variant: r for r in rows}
    assert by[GpuVariant.COMBINED].total_seconds == min(
        r.total_seconds for r in rows
    )


def test_fig4_tiling_also_improves_reductions(rows):
    """'Memory tiling also improves the performance of reductions, likely
    due to the enhanced data locality' (§3.4)."""
    by = {r.variant: r for r in rows}
    assert (
        by[GpuVariant.MEMORY_TILING].reduce_seconds
        < by[GpuVariant.UNOPTIMIZED].reduce_seconds
    )


def test_fig4_optimizations_compose_independently(rows):
    """'The optimizations combine very effectively, which indicates that
    their speedups come from mostly independent effects' (§3.4)."""
    by = {r.variant: r for r in rows}
    unopt = by[GpuVariant.UNOPTIMIZED].total_seconds
    gain_fast = unopt / by[GpuVariant.FAST_REDUCTION].total_seconds
    gain_tile = unopt / by[GpuVariant.MEMORY_TILING].total_seconds
    gain_comb = unopt / by[GpuVariant.COMBINED].total_seconds
    # Combined gain approaches the product of individual gains
    # (within a factor reflecting the shared fixed costs).
    assert gain_comb > max(gain_fast, gain_tile)
    assert gain_comb > 0.3 * gain_fast * gain_tile
