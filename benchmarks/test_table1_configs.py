"""Table 1: regenerate the experiment configuration matrix."""

from repro.experiments.configs import TABLE1, format_table1


def test_table1_configuration_matrix(benchmark):
    text = benchmark(format_table1)
    print("\n" + text)
    # The paper's exact configuration values.
    assert TABLE1["strong"].max_units == (64, 2048)
    assert TABLE1["weak"].max_dim == (40_000, 40_000, 1)
    assert TABLE1["foi"].max_foi == 1024
    assert TABLE1["correctness"].min_units == (4, 128)


def test_table1_sequences_double(benchmark):
    def sequences():
        return {
            name: (cfg.units_sequence(), cfg.foi_sequence())
            for name, cfg in TABLE1.items()
        }

    seqs = benchmark(sequences)
    for units, fois in seqs.values():
        for (g0, c0), (g1, c1) in zip(units, units[1:]):
            assert g1 == 2 * g0 and c1 == 2 * c0
        for a, b in zip(fois, fois[1:]):
            assert b == 2 * a
