"""Fig 7: weak scaling (§4.3).

Regenerates the weak-scaling series — problem size (10,000^2 ->
40,000^2 voxels), FOI (16 -> 256) and resources ({4,128} -> {64,2048})
double together — and prints runtimes + speedups with the paper's values.

Shape assertions: GPU runtime rises from 4 to ~16 GPUs (the 'initial cost
of parallelism', §4.3) then stays nearly constant; CPU degrades as the
problem grows; the GPU advantage is sustained around four-fold
(paper: 4.91, 4.38, 3.53, 3.48, 3.82).
"""

import numpy as np
import pytest

from repro.experiments.plotting import ascii_series
from repro.experiments.scaling import format_scaling, run_weak_scaling


@pytest.fixture(scope="module")
def rows():
    return run_weak_scaling(samples=32)


def test_fig7_generation(benchmark):
    out = benchmark.pedantic(
        lambda: run_weak_scaling(samples=12), rounds=1, iterations=1
    )
    assert len(out) == 5


def test_fig7_rows(rows):
    print("\n" + format_scaling(rows, "Fig 7 — Weak Scaling"))
    xs = np.array([r.gpus for r in rows], float)
    print(ascii_series(
        {"CPU": (xs, np.array([r.cpu_seconds for r in rows])),
         "GPU": (xs, np.array([r.gpu_seconds for r in rows]))},
        logx=True, logy=True, title="Fig 7 [log-log]",
    ))
    assert rows[0].dim == (10_000, 10_000)
    assert rows[-1].dim == (40_000, 40_000)
    assert rows[-1].foi == 256


def test_fig7_gpu_nearly_flat(rows):
    """After the initial parallelism cost, GPU runtime holds (§4.3)."""
    g = [r.gpu_seconds for r in rows]
    assert g[-1] < 2.0 * g[0]
    # Later steps flatten: the 16->64 GPU growth is small.
    assert g[-1] < 1.5 * g[2]


def test_fig7_cpu_degrades(rows):
    """'SIMCoV-CPU begins to suffer performance loss' (§4.3)."""
    c = [r.cpu_seconds for r in rows]
    assert c[-1] > 1.3 * c[0]


def test_fig7_sustained_fourfold_advantage(rows):
    """'SIMCoV-GPU achieves and maintains a four-fold advantage' (§6)."""
    for r in rows:
        assert 2.5 < r.speedup < 7.0


def test_fig7_speedups_within_2x_of_paper(rows):
    for r in rows:
        assert 0.5 < r.speedup / r.paper_speedup < 2.0
