"""Fig 8: foci-of-infection scaling (§4.4).

Regenerates the FOI series — 20,000^2 voxels on {16 GPUs, 512 cores}, FOI
doubling 64 -> 1024 — including the 1024-FOI CPU point the authors could
not afford to run (flagged as a projection).

Shape assertions: CPU runtime grows steeply (near-linearly until
saturation) with FOI while GPU grows sublinearly; the speedup climbs from
~3.5x toward ~12x (paper: 3.53, 5.16, 7.68, 11.97), staying below the
15.6x ideal throughput ratio quoted in §6.
"""

import numpy as np
import pytest

from repro.experiments.plotting import ascii_series
from repro.experiments.scaling import format_scaling, run_foi_scaling
from repro.perf.machine import IDEAL_NODE_SPEEDUP


@pytest.fixture(scope="module")
def rows():
    return run_foi_scaling(samples=32)


def test_fig8_generation(benchmark):
    out = benchmark.pedantic(
        lambda: run_foi_scaling(samples=12), rounds=1, iterations=1
    )
    assert len(out) == 5


def test_fig8_rows(rows):
    print("\n" + format_scaling(rows, "Fig 8 — FOI Scaling"))
    xs = np.array([r.foi for r in rows], float)
    print(ascii_series(
        {"CPU": (xs, np.array([r.cpu_seconds for r in rows])),
         "GPU": (xs, np.array([r.gpu_seconds for r in rows]))},
        logx=True, logy=True, title="Fig 8 [log-log]",
    ))
    assert [r.foi for r in rows] == [64, 128, 256, 512, 1024]


def test_fig8_speedup_grows_with_foi(rows):
    s = [r.speedup for r in rows]
    assert all(a < b for a, b in zip(s, s[1:]))
    assert s[0] < 6.0      # paper: 3.53 at 64 FOI
    assert s[-2] > 7.0     # paper: 11.97 at 512 FOI


def test_fig8_gpu_sublinear_in_foi(rows):
    """'The GPU implementation maintains sublinear increase in runtime'."""
    g = [r.gpu_seconds for r in rows]
    for a, b in zip(g, g[1:]):
        assert b < 1.9 * a  # FOI doubles; runtime must not


def test_fig8_cpu_grows_much_faster_than_gpu(rows):
    cpu_growth = rows[-1].cpu_seconds / rows[0].cpu_seconds
    gpu_growth = rows[-1].gpu_seconds / rows[0].gpu_seconds
    assert cpu_growth > 2.5 * gpu_growth


def test_fig8_speedup_below_ideal(rows):
    """§6: the 15.6x peak-throughput ratio bounds achievable speedup."""
    assert rows[-1].speedup < IDEAL_NODE_SPEEDUP


def test_fig8_speedups_within_2x_of_paper(rows):
    for r in rows:
        if r.paper_speedup:
            assert 0.5 < r.speedup / r.paper_speedup < 2.0
