"""Regression test for the step-engine benchmark entry point.

Runs ``benchmarks/run_benchmarks.py`` the way a user would (a subprocess
from a clean checkout) on a shortened workload and checks the contract:
it writes well-formed ``BENCH_step_engine.json`` content, the gated and
ungated runs are bitwise identical, and a speedup is recorded for every
canonical config.  The timing numbers themselves are machine-dependent
and deliberately not asserted here — the committed
``BENCH_step_engine.json`` records the full-length measurement.
"""

import json
import pathlib
import subprocess
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent

pytestmark = pytest.mark.slow


def test_entry_point_writes_bench_json(bench_env, tmp_path):
    out = tmp_path / "bench.json"
    result = subprocess.run(
        [
            sys.executable, str(BENCH_DIR / "run_benchmarks.py"),
            "--steps", "30", "--dist-nranks", "2", "--out", str(out),
        ],
        capture_output=True, text=True, timeout=600,
        cwd=tmp_path, env=bench_env,
    )
    assert result.returncode == 0, result.stderr[-2000:]

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "step_engine_activity_gating"
    assert set(payload["configs"]) == {"small_2d", "medium_2d"}
    for name, cfg in payload["configs"].items():
        assert cfg["bitwise_identical"], f"{name}: gated run drifted from baseline"
        assert cfg["speedup"] > 0
        for variant in ("gated", "ungated"):
            rec = cfg[variant]
            assert rec["steps_per_sec"] > 0
            assert "diffuse" in rec["phase_seconds"]
        # The gated run sweeps periodically; the ungated one never does.
        assert "tile_sweep" in cfg["gated"]["phase_seconds"]
        # The dist record carries honest multi-process numbers and its
        # own bitwise gate against the gated sequential reference.
        dist = cfg["dist"]
        assert dist["nranks"] == 2
        assert dist["bitwise_identical"], f"{name}: dist run drifted"
        assert dist["steps_per_sec"] > 0
        assert dist["speedup_vs_gated"] > 0
        assert "diffuse" in dist["worker_phase_seconds"]
    assert payload["cpu_count"] >= 1
