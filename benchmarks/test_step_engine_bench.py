"""Regression test for the step-engine benchmark entry point.

Runs ``benchmarks/run_benchmarks.py`` the way a user would (a subprocess
from a clean checkout) on a shortened workload and checks the contract:
it writes well-formed ``BENCH_step_engine.json`` content, the gated and
ungated runs are bitwise identical, and a speedup is recorded for every
canonical config.  The timing numbers themselves are machine-dependent
and deliberately not asserted here — the committed
``BENCH_step_engine.json`` records the full-length measurement.
"""

import json
import pathlib
import subprocess
import sys

import pytest

BENCH_DIR = pathlib.Path(__file__).resolve().parent

pytestmark = pytest.mark.slow


def test_entry_point_writes_bench_json(bench_env, tmp_path):
    out = tmp_path / "bench.json"
    result = subprocess.run(
        [
            sys.executable, str(BENCH_DIR / "run_benchmarks.py"),
            "--steps", "30", "--dist-nranks", "2", "--out", str(out),
        ],
        capture_output=True, text=True, timeout=600,
        cwd=tmp_path, env=bench_env,
    )
    assert result.returncode == 0, result.stderr[-2000:]

    payload = json.loads(out.read_text())
    assert payload["benchmark"] == "step_engine_activity_gating"
    assert set(payload["configs"]) == {"small_2d", "medium_2d"}
    for name, cfg in payload["configs"].items():
        assert cfg["bitwise_identical"], f"{name}: gated run drifted from baseline"
        assert cfg["speedup"] > 0
        for variant in ("gated", "ungated"):
            rec = cfg[variant]
            assert rec["steps_per_sec"] > 0
            assert "diffuse" in rec["phase_seconds"]
        # The gated run sweeps periodically; the ungated one never does.
        assert "tile_sweep" in cfg["gated"]["phase_seconds"]
        # The dist record carries honest multi-process numbers and its
        # own bitwise gate against the gated sequential reference.
        dist = cfg["dist"]
        assert dist["nranks"] == 2
        assert dist["bitwise_identical"], f"{name}: dist run drifted"
        assert dist["steps_per_sec"] > 0
        assert dist["speedup_vs_gated"] > 0
        assert "diffuse" in dist["worker_phase_seconds"]
        # Per-rank barrier-wait breakdown and the activity-gated strip
        # counters ride along in every dist record.
        waits = dist["per_rank_wait_seconds"]
        assert "step_start" in waits and "concentration_exchange" in waits
        assert all(len(per_rank) == 2 for per_rank in waits.values())
        assert dist["strips"]["pulled"] > 0
    assert payload["cpu_count"] >= 1


def test_strong_scaling_section(bench_env, tmp_path):
    """``--config strong_scaling`` sweeps rank counts on medium_2d and
    records the per-rank exchange/wait breakdown plus strip-skip counts
    that make the scaling numbers interpretable."""
    out = tmp_path / "ss.json"
    result = subprocess.run(
        [
            sys.executable, str(BENCH_DIR / "run_benchmarks.py"),
            "--config", "strong_scaling", "--steps", "12",
            "--strong-scaling-nranks", "1", "2", "--out", str(out),
        ],
        capture_output=True, text=True, timeout=600,
        cwd=tmp_path, env=bench_env,
    )
    assert result.returncode == 0, result.stderr[-2000:]

    section = json.loads(out.read_text())["strong_scaling"]
    assert section["config"] == "medium_2d"
    assert section["bitwise_identical"]
    assert section["sequential_gated"]["steps_per_sec"] > 0
    assert set(section["ranks"]) == {"1", "2"}
    for n, rec in section["ranks"].items():
        assert rec["nranks"] == int(n)
        assert rec["bitwise_identical"]
        assert rec["speedup_vs_gated"] > 0
        waits = rec["per_rank_wait_seconds"]
        assert all(len(per_rank) == int(n) for per_rank in waits.values())
    # With one focus of infection most boundary strips are quiescent:
    # the activity gate must actually be skipping exchanges at 2 ranks.
    strips = section["ranks"]["2"]["strips"]
    assert strips["skipped"] > strips["pulled"]


def test_speedup_floor_check():
    """The --check-floor gate: regressions below FLOOR_FRACTION of the
    recorded speedup fail; a reference from a bigger machine is skipped
    rather than spuriously enforced."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "run_benchmarks", BENCH_DIR / "run_benchmarks.py"
    )
    rb = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(rb)

    import os

    cores = os.cpu_count() or 1

    def payload(speedup, nranks=4, cpu=cores):
        return {
            "cpu_count": cpu,
            "configs": {
                "medium_2d": {
                    "dist": {"nranks": nranks, "speedup_vs_gated": speedup}
                }
            },
        }

    def check(got, ref, **ref_kw):
        import tempfile

        with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
            json.dump(payload(ref, **ref_kw), f)
            f.flush()
            return rb.check_speedup_floor(payload(got), f.name)

    assert check(got=1.0, ref=1.0)
    assert check(got=0.71, ref=1.0)          # inside the jitter margin
    assert not check(got=0.5, ref=1.0)       # a real regression fails
    assert check(got=0.1, ref=1.0, cpu=cores + 8)   # bigger box: skipped
    assert check(got=0.1, ref=1.0, nranks=2)        # rank mismatch: skipped
