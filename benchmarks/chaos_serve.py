#!/usr/bin/env python
"""Chaos suite for the serving layer's fault tolerance (DESIGN.md §4g).

Three phases, each driving a failure mode end to end:

1. **crash-recovery** — a real CLI server process with a journal is
   SIGKILLed (``os._exit``, no cleanup) mid-job by an injected
   ``server_kill`` fault; a restarted server on the same journal must
   finish every journaled job **bitwise identically** to an
   uninterrupted in-process run.  Measures recovery time (restart to
   all-jobs-done).
2. **retry** — an injected ``worker_crash`` must be retried under the
   bounded-backoff policy and still produce the bitwise-exact result; a
   recurring crash must exhaust the policy into a typed failure with a
   full incident log.
3. **overload** — a submission burst against a bounded queue must answer
   every refused request with typed 429/503 JSON carrying
   ``retry_after`` — never a hang or a dropped socket.

Results are merged into ``BENCH_step_engine.json`` at the repo root as
the ``serving_resilience`` section (read-modify-write; other sections
untouched).  Exits nonzero if any hard gate fails.

Usage (from the repo root, no install needed)::

    python benchmarks/chaos_serve.py                  # defaults
    python benchmarks/chaos_serve.py --steps 120      # faster smoke
"""

import argparse
import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import time

REPO = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.core.model import SequentialSimCov  # noqa: E402
from repro.obs.runmeta import run_metadata  # noqa: E402
from repro.resilience import RestartPolicy  # noqa: E402
from repro.serve import BackgroundServer, ServeApp, ServeClient  # noqa: E402
from repro.serve.client import ServeError  # noqa: E402
from repro.serve.faults import KILL_EXIT_STATUS, ServeFaultSpec  # noqa: E402
from repro.serve.jobs import JobSpec, stats_rows  # noqa: E402


def canonical(payload):
    return json.dumps(payload, sort_keys=True)


def reference_rows(spec_json):
    spec = JobSpec.from_json(
        {k: v for k, v in spec_json.items()
         if k in ("config", "dim", "steps", "seed")}
    )
    params, steps = spec.resolve_params()
    sim = SequentialSimCov(params, seed=spec.seed)
    sim.run(steps)
    return stats_rows(sim.series)


# -- phase 1: crash recovery --------------------------------------------------

def spawn_server(journal_dir, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--port", "0", "--workers", "1",
            "--journal-dir", str(journal_dir),
            "--retry-backoff", "0.01",
            *extra,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env,
    )
    deadline = time.monotonic() + 60
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if "serving on http://" in line:
            break
        if proc.poll() is not None:
            raise RuntimeError(f"server died: {proc.stdout.read()}")
    match = re.search(r"http://[\d.]+:(\d+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"no port line, got {line!r}")
    return proc, int(match.group(1))


def run_crash_recovery(workdir, args):
    """SIGKILL a journaled server mid-flight; restart; verify bitwise."""
    journal_dir = workdir / "journal"
    specs = [
        {"dim": [48, 48], "steps": args.steps, "seed": 100 + i,
         "backend": "sequential"}
        for i in range(args.crash_jobs)
    ]
    kill_step = args.steps // 2
    proc, port = spawn_server(
        journal_dir, "--inject-serve-fault", f"0:{kill_step}:server_kill"
    )
    job_ids = []
    try:
        client = ServeClient(port=port)
        for spec in specs:
            job_ids.append(client.submit(spec)["job"]["id"])
        exit_status = proc.wait(timeout=600)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    restart_t0 = time.perf_counter()
    proc, port = spawn_server(journal_dir)
    try:
        client = ServeClient(port=port)
        finals = [
            client.wait(jid, timeout=600.0) for jid in job_ids
        ]
        recovery_seconds = time.perf_counter() - restart_t0
        results = [
            client.result(jid)["result"]["rows"] for jid in job_ids
        ]
        metrics = client.metrics()
    finally:
        proc.send_signal(signal.SIGTERM)
        drain_exit = proc.wait(timeout=120)
    bitwise = all(
        canonical(rows) == canonical(reference_rows(spec))
        for rows, spec in zip(results, specs)
    )
    return {
        "jobs": len(specs),
        "kill_step": kill_step,
        "kill_exit_status": exit_status,
        "replayed_jobs": metrics["replayed_jobs"],
        "recovery_seconds": round(recovery_seconds, 3),
        "all_done": all(f["state"] == "done" for f in finals),
        "bitwise_identical": bitwise,
        "drain_exit_status": drain_exit,
    }


# -- phase 2: retry under backoff ---------------------------------------------

def run_retry_phase(args):
    spec = {"dim": [48, 48], "steps": args.steps, "seed": 3,
            "backend": "sequential"}
    fault = ServeFaultSpec(
        job=0, step=args.steps // 2, mode="worker_crash"
    )
    with BackgroundServer(ServeApp(
        port=0, max_workers=1, fault=fault,
        retry_policy=RestartPolicy(max_restarts=3, backoff=0.01),
    )) as app:
        client = ServeClient(port=app.port)
        t0 = time.perf_counter()
        resp = client.submit(spec)
        final = client.wait(resp["job"]["id"], timeout=600.0)
        elapsed = time.perf_counter() - t0
        rows = (
            client.result(resp["job"]["id"])["result"]["rows"]
            if final["state"] == "done" else None
        )
        metrics = client.metrics()

    exhaust_fault = ServeFaultSpec(
        job=0, step=5, mode="worker_crash", repeat=99
    )
    with BackgroundServer(ServeApp(
        port=0, max_workers=1, fault=exhaust_fault,
        retry_policy=RestartPolicy(max_restarts=2, backoff=0.01),
    )) as app:
        client = ServeClient(port=app.port)
        resp = client.submit(dict(spec, seed=4))
        exhausted = client.wait(resp["job"]["id"], timeout=600.0)

    return {
        "crash_step": args.steps // 2,
        "retries": metrics["retries"],
        "recovered_state": final["state"],
        "incidents": len(final["incidents"]),
        "job_seconds_with_retry": round(elapsed, 3),
        "bitwise_identical": (
            rows is not None
            and canonical(rows) == canonical(reference_rows(spec))
        ),
        "exhaustion_state": exhausted["state"],
        "exhaustion_typed": "RestartsExhaustedError" in (
            exhausted["error"] or ""
        ),
        "exhaustion_incidents": len(exhausted["incidents"]),
    }


# -- phase 3: overload --------------------------------------------------------

def run_overload_phase(args):
    with BackgroundServer(ServeApp(
        port=0, max_workers=1, max_queue_depth=2,
        max_inflight_per_client=None,
    )) as app:
        client = ServeClient(port=app.port)
        outcomes = {"accepted": 0, "rejected_503": 0, "rejected_other": 0}
        typed = True
        job_ids = []
        for i in range(args.burst):
            spec = {"dim": [48, 48], "steps": args.steps,
                    "seed": 500 + i, "backend": "sequential"}
            try:
                job_ids.append(client.submit(spec)["job"]["id"])
                outcomes["accepted"] += 1
            except ServeError as err:
                if err.status == 503:
                    outcomes["rejected_503"] += 1
                else:
                    outcomes["rejected_other"] += 1
                if err.retry_after is None or not isinstance(
                    err.payload, dict
                ) or "reason" not in err.payload:
                    typed = False
        finals = [client.wait(j, timeout=600.0) for j in job_ids]
        metrics = client.metrics()
    return {
        "burst": args.burst,
        **outcomes,
        "rejections_typed": typed,
        "accepted_all_done": all(f["state"] == "done" for f in finals),
        "server_rejected_counter": metrics["rejected"],
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--steps", type=int, default=300,
        help="steps per chaos job (48x48 grid)",
    )
    parser.add_argument(
        "--crash-jobs", type=int, default=3,
        help="jobs in flight/queued when the server is killed",
    )
    parser.add_argument(
        "--burst", type=int, default=8,
        help="submissions in the overload burst",
    )
    parser.add_argument(
        "--recovery-budget", type=float, default=60.0,
        help="hard gate: restart-to-all-done seconds",
    )
    parser.add_argument(
        "--workdir", default="/tmp/simcov-chaos-serve",
        help="scratch directory for the journal",
    )
    parser.add_argument(
        "--out", default=str(REPO / "BENCH_step_engine.json"),
        help="benchmark JSON to merge the section into",
    )
    args = parser.parse_args(argv)

    workdir = pathlib.Path(args.workdir)
    import shutil

    shutil.rmtree(workdir, ignore_errors=True)
    workdir.mkdir(parents=True)

    print(f"crash-recovery phase: {args.crash_jobs} jobs, SIGKILL at "
          f"step {args.steps // 2}")
    crash = run_crash_recovery(workdir, args)
    print(f"  recovered {crash['jobs']} jobs in "
          f"{crash['recovery_seconds']:.2f}s, bitwise: "
          f"{crash['bitwise_identical']}")

    print("retry phase: injected worker_crash + exhaustion")
    retry = run_retry_phase(args)
    print(f"  {retry['retries']} retry, recovered "
          f"{retry['recovered_state']}, bitwise: "
          f"{retry['bitwise_identical']}; exhaustion typed: "
          f"{retry['exhaustion_typed']}")

    print(f"overload phase: burst of {args.burst} on queue depth 2")
    overload = run_overload_phase(args)
    print(f"  {overload['accepted']} accepted, "
          f"{overload['rejected_503']} typed 503s")

    gates = {
        "kill_was_sigkill_equivalent": (
            crash["kill_exit_status"] == KILL_EXIT_STATUS
        ),
        "recovery_bitwise": (
            crash["all_done"] and crash["bitwise_identical"]
        ),
        "recovery_within_budget": (
            crash["recovery_seconds"] < args.recovery_budget
        ),
        "drain_exits_zero": crash["drain_exit_status"] == 0,
        "retry_bitwise": (
            retry["recovered_state"] == "done"
            and retry["retries"] >= 1
            and retry["bitwise_identical"]
        ),
        "exhaustion_typed_failure": (
            retry["exhaustion_state"] == "failed"
            and retry["exhaustion_typed"]
            and retry["exhaustion_incidents"] == 3
        ),
        "overload_rejections_typed": (
            overload["rejected_503"] >= 1
            and overload["rejections_typed"]
            and overload["rejected_other"] == 0
            and overload["accepted_all_done"]
        ),
    }
    section = {
        "meta": run_metadata(config="chaos_48x48"),
        "crash_recovery": crash,
        "retry": retry,
        "overload": overload,
        "gates": gates,
    }
    out = pathlib.Path(args.out)
    payload = json.loads(out.read_text()) if out.exists() else {}
    payload["serving_resilience"] = section
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"serving_resilience section written to {out}")
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"GATE FAILURES: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
