"""Shared fixtures for the benchmark harness.

Each ``test_fig*``/``test_table*`` module regenerates one table or figure
of the paper (printed to the terminal; also exercised under
pytest-benchmark timing).  Benchmarks run on scaled-down workloads — see
EXPERIMENTS.md for the scaled-vs-paper mapping.
"""

import pathlib

import pytest

from repro.core.params import SimCovParams
from repro.testing import subprocess_env

BENCH_DIR = pathlib.Path(__file__).resolve().parent


@pytest.fixture(scope="session")
def bench_env():
    """Environment for benchmark subprocesses (the entry-point regression
    test): os.environ with ``src/`` on PYTHONPATH, via the same helper the
    example smoke tests use (repro.testing.subprocess_env)."""
    return subprocess_env()


@pytest.fixture(scope="session")
def fast_params():
    """The standard scaled benchmark workload."""
    return SimCovParams.fast_test(dim=(48, 48), num_infections=3, num_steps=120)


@pytest.fixture(scope="session")
def sparse_params():
    """A sparse workload where tiling/active-lists have work to skip."""
    return SimCovParams.fast_test(dim=(64, 64), num_infections=1, num_steps=60)
