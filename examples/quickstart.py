#!/usr/bin/env python
"""Quickstart: run a small SIMCoV infection and print its dynamics.

Simulates a 64x64-voxel slice of lung tissue seeded with 4 foci of
infection using the time-compressed test parameterization, on the
sequential reference implementation, then re-runs the identical
simulation on the (simulated) 4-GPU implementation and verifies they
agree — the reproduction's headline correctness property.

Run:  python examples/quickstart.py
"""

# Make `repro` importable when run straight from a checkout (no install):
# fall back to the repo's src/ layout next to this script.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


import numpy as np

from repro import SequentialSimCov, SimCovGPU, SimCovParams


def main():
    params = SimCovParams.fast_test(dim=(64, 64), num_infections=4,
                                    num_steps=300)
    print(f"Grid: {params.dim[0]}x{params.dim[1]} voxels, "
          f"{params.num_infections} FOI, {params.num_steps} steps")

    sim = SequentialSimCov(params, seed=42)
    print("\nstep  virus    healthy  dead   T cells  (sequential)")
    for step in range(params.num_steps):
        stats = sim.step()
        if step % 50 == 0 or step == params.num_steps - 1:
            print(f"{step:>4}  {stats.virions_total:>7.1f}  "
                  f"{stats.healthy:>7.0f}  {stats.dead:>5.0f}  "
                  f"{stats.tcells_tissue:>7.0f}")

    peak_step, peak_virus = sim.series.peak("virions_total")
    print(f"\nViral load peaked at step {peak_step} "
          f"({peak_virus:.1f} total concentration), "
          f"then the T-cell response cleared it — the Fig 5 curve shape.")

    # The same simulation on 4 simulated GPUs is bitwise identical.
    gpu = SimCovGPU(params, num_devices=4, seed=42)
    gpu.run()
    same = np.array_equal(
        gpu.gather_field("epi_state"),
        sim.block.epi_state[sim.block.interior],
    )
    print(f"\n4-GPU run reproduces the sequential state bitwise: {same}")
    work = gpu.step_work[-1]["ledger"]
    print(f"GPU work last step: {work.total_launches()} kernel launches, "
          f"{work.copies_intra + work.copies_inter} halo copies, "
          f"active fraction {gpu.active_fraction():.2f}")


if __name__ == "__main__":
    main()
