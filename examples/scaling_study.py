#!/usr/bin/env python
"""Plan a SIMCoV campaign: how many GPUs does your problem deserve?

§4.2 of the paper: using more GPUs than a problem warrants wastes them
('it is more appropriate to use SIMCoV-GPU on larger problems'), while §6
looks ahead to full-lung runs of ~10^13 voxels.  This example uses the
calibrated performance model to project CPU and GPU runtimes for a
user-chosen problem, locating the saturation point and checking device
memory feasibility.

Run:  python examples/scaling_study.py [side_voxels] [foi]
"""

# Make `repro` importable when run straight from a checkout (no install):
# fall back to the repo's src/ layout next to this script.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


import sys

from repro.core.params import SimCovParams
from repro.perf.activity import DiskActivityModel
from repro.perf.costs import fits_gpu_memory, gpu_memory_per_device
from repro.perf.machine import PAPER_SCALE_GROWTH_SPEED, PERLMUTTER
from repro.perf.projector import project_cpu_runtime, project_gpu_runtime


def main():
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    foi = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    params = SimCovParams.default_covid(dim=(side, side), num_infections=foi)
    model = DiskActivityModel(
        params, seed=1, speed=PAPER_SCALE_GROWTH_SPEED, supergrid=64,
        samples=32,
    )
    print(f"Problem: {side}x{side} voxels ({params.num_voxels / 1e6:.0f}M), "
          f"{foi} FOI, {params.num_steps} steps "
          f"(~{params.simulated_days:.0f} simulated days)")
    print(f"Mean active fraction over the run: "
          f"{model.mean_active_fraction():.3f}\n")

    print(f"{'GPUs':>6}{'mem/GPU':>10}{'fits?':>7}{'GPU time':>12}"
          f"{'CPU cores':>11}{'CPU time':>12}{'speedup':>9}{'GPU eff.':>9}")
    base_gpu = None
    for gpus in (4, 8, 16, 32, 64, 128):
        cores = gpus * 32  # the paper's 32-cores-per-GPU comparison ratio
        mem = gpu_memory_per_device(PERLMUTTER, params.num_voxels, gpus)
        fits = fits_gpu_memory(PERLMUTTER, params.num_voxels, gpus)
        gpu = project_gpu_runtime(PERLMUTTER, model, gpus).total_seconds
        cpu = project_cpu_runtime(PERLMUTTER, model, cores).total_seconds
        if base_gpu is None:
            base_gpu = (gpus, gpu)
        ideal = base_gpu[1] * base_gpu[0] / gpus
        eff = ideal / gpu
        print(f"{gpus:>6}{mem / 2**30:>9.1f}G{str(fits):>7}{gpu:>11.0f}s"
              f"{cores:>11}{cpu:>11.0f}s{cpu / gpu:>9.2f}{eff:>9.1%}")
    print("\nReading the table: once GPU efficiency falls well below ~50%,"
          " extra devices are better spent on more trials (parameter sweeps"
          " and stochastic replicates — §4.2's advice).")


if __name__ == "__main__":
    main()
