#!/usr/bin/env python
"""A different ABM on the same substrate: ant-like foragers.

§6 of the paper: 'according to forks of the public repository, [SIMCoV]
is already being used as a platform for creating other ABMs.  These ABMs
include a simulation of large populations of ant-like foragers ...
SIMCoV-GPU will provide a straightforward path for these models to run on
exascale supercomputers.'

This example demonstrates exactly that reuse: a foraging ABM — mobile
ants that walk (randomly, or uphill on a pheromone gradient), compete for
voxels with the SIMCoV-GPU bid tiebreak, around food that emits a
diffusing pheromone field — built from this package's substrates:

- the voxel grid, ghost-padded blocks and Moore stencils (repro.grid);
- the counter RNG keyed by voxel id (repro.rng);
- the diffusion kernel (repro.diffusion);
- the *actual* tiebreak kernels (IntentArrays, compute_moves,
  commit_moves) from repro.core.kernels — the model-specific code below
  is only the direction policy and the food bookkeeping.

Run:  python examples/ant_foraging.py
"""

# Make `repro` importable when run straight from a checkout (no install):
# fall back to the repo's src/ layout next to this script.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


import numpy as np

from repro.core.kernels import IntentArrays, _shift, commit_moves, compute_moves
from repro.core.state import VoxelBlock
from repro.diffusion.stencil import decay_field, diffuse_padded, mirror_pad
from repro.grid.spec import GridSpec, moore_offsets
from repro.rng.streams import Stream, VoxelRNG

SIZE = 64
ANTS = 120
FOOD_SITES = 3
STEPS = 200
PHEROMONE_DIFFUSION = 0.6
PHEROMONE_DECAY = 0.02
SENSE_PROB = 0.8  # chance an ant follows the gradient when signal present


def ant_intents(block, intents, rng, step, direction):
    """Write move intents + bids for the chosen ``direction`` array —
    identical structure to SIMCoV's T-cell movement kernel, minus binding."""
    region = block.interior
    offsets = moore_offsets(2)
    ants = block.tcell[region] != 0
    bids = rng.bids(step, block.gid[region])
    blocked = np.zeros_like(ants)
    for k, off in enumerate(offsets):
        sel = ants & (direction == k)
        if not sel.any():
            continue
        occupied = block.tcell[_shift(region, off)] != 0
        outside = ~block.in_domain[_shift(region, off)]
        blocked |= sel & (occupied | outside)
    ok = ants & ~blocked
    intents.move_dir[region][ok] = direction[ok].astype(np.int8)
    intents.bid_self[region][ok] = bids[ok]
    for k, off in enumerate(offsets):
        mask = ok & (direction == k)
        if not mask.any():
            continue
        view = intents.move_bid[_shift(region, off)]
        view[mask] = np.maximum(view[mask], bids[mask])


def main():
    spec = GridSpec((SIZE, SIZE))
    block = VoxelBlock(spec, spec.domain)
    rng = VoxelRNG(99)
    offsets = moore_offsets(2)

    # Ants live in the T-cell occupancy field (one agent per voxel).
    setup = np.random.default_rng(5)
    idx = setup.choice(spec.num_voxels, size=ANTS, replace=False)
    block.tcell[block.interior].reshape(-1)  # (view check only)
    coords = spec.unravel(idx) + 1  # padded coords
    block.tcell[tuple(coords.T)] = 1
    block.tcell_tissue_time[tuple(coords.T)] = 10**6

    pheromone = np.zeros(spec.shape)
    food = np.zeros(spec.shape, dtype=bool)
    food.reshape(-1)[setup.choice(spec.num_voxels, size=FOOD_SITES)] = True

    intents = IntentArrays(block.shape)
    gid = block.gid[block.interior]
    visits = 0
    for step in range(STEPS):
        # Food emits pheromone; the field diffuses and decays (the SIMCoV
        # chemokine kernels, verbatim).
        pheromone[food] = 1.0
        pheromone = diffuse_padded(mirror_pad(pheromone), PHEROMONE_DIFFUSION)
        decay_field(pheromone, PHEROMONE_DECAY)

        # Direction policy: follow the local gradient with SENSE_PROB when
        # signal exists, else walk randomly — all keyed by voxel id.
        padded = np.pad(pheromone, 1, mode="edge")
        nb = np.stack(
            [padded[1 + o[0]:SIZE + 1 + o[0], 1 + o[1]:SIZE + 1 + o[1]]
             for o in offsets],
            axis=-1,
        )
        best_dir = np.argmax(nb, axis=-1)
        rand_dir = rng.randint(Stream.TCELL_DIRECTION, step, gid, len(offsets))
        sense = rng.uniform(Stream.TCELL_BIND_TRY, step, gid) < SENSE_PROB
        has_signal = nb.max(axis=-1) > 1e-4
        direction = np.where(sense & has_signal, best_dir, rand_dir)

        # Choose + bid + resolve + move: the SIMCoV-GPU §3.1 machinery.
        intents.clear()
        ant_intents(block, intents, rng, step, direction)
        commit_moves(block, compute_moves(block, intents, block.interior))

        visits += int(((block.tcell[block.interior] == 1) & food).sum())

    n = int(block.tcell[block.interior].sum())
    print(f"Foraging ABM on the SIMCoV substrate: {ANTS} ants, "
          f"{FOOD_SITES} food sites, {STEPS} steps")
    print(f"  ants after {STEPS} conflict-resolved steps: {n} "
          f"(conservation: {'OK' if n == ANTS else 'VIOLATED'})")
    print(f"  occupancy invariant (<=1 ant/voxel): "
          f"{'OK' if block.tcell.max() <= 1 else 'VIOLATED'}")
    print(f"  cumulative food-site visits: {visits}")
    print("Same substrates, different model — the §6 platform claim.")
    assert n == ANTS


if __name__ == "__main__":
    main()
