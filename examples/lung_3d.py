#!/usr/bin/env python
"""A 3D lung-tissue simulation with fractal branching airways.

§6 of the paper looks toward full-lung 3D runs (~10^13 voxels on exascale
machines) with 'other spatial topologies such as fractal branching
airways ... overlaid on the voxels'.  This example runs the complete 3D
pipeline at desktop scale:

- a 3D voxel volume with a dichotomous branching-airway tree (empty
  voxels — no epithelium, but virions/signal/T cells pass through);
- infection seeded next to the airway, simulated on 8 simulated GPUs
  (2x2x2 block decomposition with 26-neighbor halo exchange);
- per-step statistics logged to disk and a checkpoint written mid-run,
  then resumed on the sequential implementation — bitwise identically;
- a 2D slice of the final state rendered.

Run:  python examples/lung_3d.py
"""

# Make `repro` importable when run straight from a checkout (no install):
# fall back to the repo's src/ layout next to this script.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


import numpy as np

from repro import SequentialSimCov, SimCovGPU, SimCovParams
from repro.core.structure import branching_airways_3d
from repro.grid.spec import GridSpec
from repro.io import StatsLogger, load_checkpoint, save_checkpoint


def main():
    params = SimCovParams.fast_test(dim=(20, 20, 20), num_infections=3,
                                    num_steps=120)
    spec = GridSpec(params.dim)
    airways = branching_airways_3d(spec, generations=3, trunk_radius=1)
    print(f"3D volume: {params.dim}, {len(airways)} airway voxels "
          f"({len(airways) / spec.num_voxels:.1%}), "
          f"{params.num_infections} FOI, 8 simulated GPUs (2x2x2)")

    gpu = SimCovGPU(params, num_devices=8, seed=21, structure_gids=airways,
                    tile_shape=(5, 5, 5))
    with StatsLogger("results/lung3d_stats.csv") as log:
        for step in range(60):
            log.log(gpu.step())
    save_checkpoint("results/lung3d_ck.npz", gpu)
    print(f"ran 60 steps on GPUs, checkpointed; "
          f"virus={gpu.series[-1].virions_total:.1f}, "
          f"halo messages so far="
          f"{gpu.cluster.ledger.copies_intra + gpu.cluster.ledger.copies_inter}")

    # Resume the *same* physical run on the sequential implementation.
    resumed = load_checkpoint(
        "results/lung3d_ck.npz",
        make_sim=lambda p, s, g: SequentialSimCov(p, seed=s, seed_gids=g),
    )
    with StatsLogger("results/lung3d_stats_resumed.csv") as log:
        for step in range(60):
            log.log(resumed.step())

    # Control: the same run uninterrupted on GPUs.
    control = SimCovGPU(params, num_devices=8, seed=21,
                        structure_gids=airways, tile_shape=(5, 5, 5))
    control.run(120)
    same = np.array_equal(
        resumed.block.epi_state[resumed.block.interior],
        control.gather_field("epi_state"),
    )
    print(f"GPU-checkpoint -> sequential resume matches uninterrupted GPU "
          f"run bitwise: {same}")

    # Render the mid-depth slice of the final state.
    from repro.core.state import VoxelBlock
    from repro.experiments.viz import render_world

    slice_spec = GridSpec(params.dim[:2])
    slice_block = VoxelBlock(slice_spec, slice_spec.domain)
    z = params.dim[2] // 2
    slice_block.epi_state[slice_block.interior] = (
        resumed.block.epi_state[resumed.block.interior][:, :, z]
    )
    slice_block.tcell[slice_block.interior] = (
        resumed.block.tcell[resumed.block.interior][:, :, z]
    )
    print(f"\nFinal state, z={z} slice:")
    print(render_world(slice_block, max_width=40))


if __name__ == "__main__":
    main()
