#!/usr/bin/env python
"""Model fitting by parameter sweep — the SIMCoV calibration workflow.

SIMCoV 'can match longitudinal patient data ... by fitting three key
parameters of the simulation' (§2.2, citing Moses et al. [25]), and §4.2
names parameter sweeps over many small runs as a prime use case for a few
GPUs.  This example runs that loop end to end:

1. a synthetic 'patient' trajectory is generated from hidden parameters;
2. a factorial sweep over infectivity x incubation period runs replicated
   simulations per configuration;
3. the configuration whose mean viral peak best matches the patient's is
   selected, and its world state is rendered.

Run:  python examples/parameter_fitting.py
"""

# Make `repro` importable when run straight from a checkout (no install):
# fall back to the repo's src/ layout next to this script.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams
from repro.experiments.sweep import best_fit, run_sweep, summarize
from repro.experiments.viz import render_world


def main():
    base = SimCovParams.fast_test(dim=(32, 32), num_infections=2,
                                  num_steps=150)

    # The 'patient': hidden ground-truth parameters.
    truth = base.with_(infectivity=0.1, incubation_period=12)
    patient = SequentialSimCov(truth, seed=999)
    patient.run()
    target_peak = patient.series.peak("virions_total")[1]
    print(f"Patient trajectory: peak viral load {target_peak:.1f} "
          f"(hidden params: infectivity=0.1, incubation=12)\n")

    grid = {
        "infectivity": [0.02, 0.06, 0.1, 0.2],
        "incubation_period": [6, 12, 24],
    }
    n_runs = 4 * 3 * 3
    print(f"Sweeping {len(grid['infectivity'])}x"
          f"{len(grid['incubation_period'])} configurations x 3 trials "
          f"({n_runs} runs)...")
    results = run_sweep(base, grid, trials=3, base_seed=100)

    print(f"\n{'infectivity':>12}{'incubation':>12}{'peak mean':>12}"
          f"{'peak std':>10}")
    for key, stats in sorted(summarize(results).items()):
        cfg = dict(key)
        print(f"{cfg['infectivity']:>12}{cfg['incubation_period']:>12}"
              f"{stats['mean']:>12.1f}{stats['std']:>10.1f}")

    config, mean = best_fit(results, target=target_peak)
    print(f"\nBest fit: {config} (mean peak {mean:.1f} vs patient "
          f"{target_peak:.1f})")

    refit = SequentialSimCov(base.with_(**config), seed=1)
    refit.run()
    print("\nFitted simulation's final state (Fig 1A view):")
    print(render_world(refit.block, max_width=64))


if __name__ == "__main__":
    main()
