#!/usr/bin/env python
"""Patchy-lesion initialization: the CT-scan use case of the Discussion.

§6 of the paper: 'CT scans of diseased patients do not contain point-like
initial infection locations, but instead feature large patchy lesions ...
Incorporating CT scans as initial conditions requires that many (hundreds,
thousands, or more) SIMCoV voxels be initialized as FOI.'

This example synthesizes CT-like patchy lesions (random disks of Poisson
radii), runs them against an equal-virion point-FOI initialization, and
shows (a) how the lesion run lights up far more of the domain — the
workload property behind Fig 8's FOI-scaling experiment — and (b) the
paper's [25] motivating result that spatially distributed infection grows
faster.

Run:  python examples/patchy_lesion_study.py
"""

# Make `repro` importable when run straight from a checkout (no install):
# fall back to the repo's src/ layout next to this script.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:
    import pathlib
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))


import numpy as np

from repro import SequentialSimCov, SimCovParams
from repro.core.seeding import patchy_lesions, seed_infections
from repro.rng.streams import VoxelRNG


def run(params, seed_gids, label):
    sim = SequentialSimCov(params, seed=7, seed_gids=seed_gids)
    sim.run()
    peak_step, peak = sim.series.peak("virions_total")
    print(f"  {label:<28} seeds={len(seed_gids):>5}  "
          f"peak virus={peak:>8.1f} at step {peak_step:>3}  "
          f"final dead={sim.series[-1].dead:>6.0f}  "
          f"active frac={sim.activity_fraction():.2f}")
    return sim


def main():
    params = SimCovParams.fast_test(dim=(96, 96), num_infections=0,
                                    num_steps=220)
    rng = VoxelRNG(12345)

    # CT-like: a handful of large patchy lesions.
    lesions = patchy_lesions(params, rng, num_lesions=6, mean_radius=5.0)
    # Controls: the same number of infected voxels, but as scattered points,
    # and a single consolidated focus.
    scattered = seed_infections(
        params.with_(num_infections=len(lesions)), rng
    )
    single = seed_infections(params.with_(num_infections=1), rng)

    print("Initialization study (96x96 tissue, fast dynamics, 220 steps):")
    sim_lesion = run(params, lesions, "patchy lesions (CT-like)")
    sim_scatter = run(params, scattered, "scattered point FOI")
    sim_single = run(params, single, "single focus")

    v_lesion = sim_lesion.series.field("virions_total")
    v_single = sim_single.series.field("virions_total")
    mid = len(v_lesion) // 2
    print(f"\nAt mid-simulation, distributed infection carries "
          f"{v_lesion[mid] / max(v_single[mid], 1e-9):.0f}x the viral load "
          f"of a single focus of equal initial size class —")
    print("the spatial-distribution effect SIMCoV was built to capture "
          "(Moses et al. [25]), and the reason many-FOI workloads (Fig 8) "
          "are the GPU implementation's strong suit.")


if __name__ == "__main__":
    main()
