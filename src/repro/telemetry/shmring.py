"""Shared-memory-safe telemetry rings for multi-process tracing.

A worker process cannot stream variable-length JSON into shared memory,
so the distributed runtime gives each rank a fixed-capacity table of
numeric records inside the control segment, plus a per-rank count and an
overflow drop counter.  Every record is six float64 columns::

    [kind, name_id, step, ts, dur, value]

``name_id`` indexes a **name table** both sides derive from the same
inputs (phase names + the fixed barrier/counter vocabulary), so the
coordinator can decode ids back into ``"cat:name"`` strings without any
cross-process string traffic.  The coordinator drains each rank's table
in the per-step quiescent window (after the step-end barrier, before the
next step-start release), resets the count, and forwards decoded
:class:`~repro.telemetry.events.Event` objects — stamped with the
worker's rank and original timestamps — into its own tracer's sinks.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.events import COUNTER, GAUGE, SPAN, Event

#: Record columns.
COL_KIND, COL_NAME, COL_STEP, COL_TS, COL_DUR, COL_VALUE = range(6)
RECORD_WIDTH = 6

_KIND_CODES = {SPAN: 0.0, COUNTER: 1.0, GAUGE: 2.0}
_KIND_NAMES = {0: SPAN, 1: COUNTER, 2: GAUGE}


class RingCodec:
    """Name interning + row encode/decode shared by both ring sides.

    ``names`` is an ordered tuple of ``"cat:name"`` strings; its order IS
    the id assignment, so every process must build it from the same
    inputs.
    """

    def __init__(self, names: tuple[str, ...]):
        self.names = tuple(names)
        self.ids = {name: i for i, name in enumerate(self.names)}
        self._split = [
            tuple(n.split(":", 1)) if ":" in n else ("", n) for n in self.names
        ]

    def name_id(self, cat: str, name: str) -> int | None:
        return self.ids.get(f"{cat}:{name}")

    def decode_row(self, row, rank: int) -> Event | None:
        name_id = int(row[COL_NAME])
        if not 0 <= name_id < len(self.names):
            return None
        cat, name = self._split[name_id]
        kind = _KIND_NAMES.get(int(row[COL_KIND]))
        if kind is None:
            return None
        ev = Event(
            kind, name, float(row[COL_TS]), cat=cat, rank=rank,
            step=int(row[COL_STEP]),
        )
        if kind == SPAN:
            ev.dur = float(row[COL_DUR])
            if row[COL_VALUE]:
                ev.attrs["skipped"] = True
        else:
            ev.value = float(row[COL_VALUE])
        return ev


class ShmRingSink:
    """Tracer sink writing fixed records into one rank's ring views.

    ``data`` is the rank's ``(capacity, 6)`` float64 table, ``count`` and
    ``dropped`` are length-1 int64 views (the rank's slots of the shared
    per-rank vectors).  Events whose ``cat:name`` is not in the codec's
    table, or that arrive when the table is full, bump ``dropped`` — the
    drain side surfaces that so truncation is never silent.
    """

    def __init__(self, data: np.ndarray, count: np.ndarray,
                 dropped: np.ndarray, codec: RingCodec):
        self.data = data
        self.count = count
        self.dropped = dropped
        self.codec = codec
        self.capacity = int(data.shape[0])

    def on_event(self, event: Event) -> None:
        name_id = self.codec.name_id(event.cat, event.name)
        if name_id is None:
            self.dropped[0] += 1
            return
        idx = int(self.count[0])
        if idx >= self.capacity:
            self.dropped[0] += 1
            return
        row = self.data[idx]
        row[COL_KIND] = _KIND_CODES[event.kind]
        row[COL_NAME] = name_id
        row[COL_STEP] = event.step
        row[COL_TS] = event.ts
        if event.kind == SPAN:
            row[COL_DUR] = event.dur
            row[COL_VALUE] = 1.0 if event.attrs.get("skipped") else 0.0
        else:
            row[COL_DUR] = 0.0
            row[COL_VALUE] = event.value
        # Publish the record before the count: a racing reader that sees
        # the new count sees a fully written row.
        self.count[0] = idx + 1

    def close(self) -> None:
        pass


def drain_ring(data: np.ndarray, count: np.ndarray, codec: RingCodec,
               rank: int) -> list[Event]:
    """Decode one rank's pending records and reset its count.

    Only call in a quiescent window (the owner parked at a barrier);
    the count reset races with nothing then.
    """
    n = min(int(count[0]), int(data.shape[0]))
    events = []
    for i in range(n):
        ev = codec.decode_row(data[i], rank)
        if ev is not None:
            events.append(ev)
    count[0] = 0
    return events


__all__ = [
    "RECORD_WIDTH",
    "RingCodec",
    "ShmRingSink",
    "drain_ring",
]
