"""repro.telemetry — zero-dependency structured observability.

A :class:`~repro.telemetry.tracer.Tracer` produces nested spans
(step → phase → sub-op) with monotonic timestamps and rank/backend
attributes, plus counters and gauges (active-voxel occupancy, halo
bytes, barrier-wait seconds, heartbeat ages, bid conflicts, shm segment
sizes), and fans them out to pluggable sinks: an in-memory ring buffer,
a JSONL event log, and a Chrome-trace exporter whose per-rank lanes
render the distributed runtime's barrier structure in Perfetto.

Telemetry is off by default: every instrumented layer holds the no-op
:data:`~repro.telemetry.tracer.NULL_TRACER` until a caller installs a
real tracer (``simcov-repro run --trace``), so the untraced hot path
pays a single branch.
"""

from repro.telemetry.events import COUNTER, GAUGE, NO_STEP, SPAN, Event
from repro.telemetry.report import format_report, load_events, summarize
from repro.telemetry.shmring import RECORD_WIDTH, RingCodec, ShmRingSink, drain_ring
from repro.telemetry.sinks import (
    ChromeTraceSink,
    JsonlSink,
    PhaseMetricsSink,
    RingBufferSink,
    SseSink,
    read_jsonl,
    sse_frame,
)
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "COUNTER",
    "GAUGE",
    "NO_STEP",
    "SPAN",
    "Event",
    "ChromeTraceSink",
    "JsonlSink",
    "NULL_TRACER",
    "NullTracer",
    "PhaseMetricsSink",
    "RECORD_WIDTH",
    "RingBufferSink",
    "RingCodec",
    "ShmRingSink",
    "SseSink",
    "Tracer",
    "drain_ring",
    "format_report",
    "load_events",
    "read_jsonl",
    "sse_frame",
    "summarize",
]
