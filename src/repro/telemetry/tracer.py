"""The tracer: the one object instrumented code talks to.

A :class:`Tracer` fans events out to its sinks; a :class:`NullTracer`
(module singleton :data:`NULL_TRACER`) is the off-by-default stand-in
whose every method is a no-op and whose truthiness is ``False``, so hot
paths can guard attribute construction with ``if tracer:`` and pay one
branch when telemetry is off.

Two ways to record a span:

- :meth:`Tracer.span` — a context manager that times its body and tracks
  the nesting stack (``parent``/``depth`` attributes), for call sites
  that are not already timed;
- :meth:`Tracer.emit_span` — for call sites that already hold
  ``(start, duration)`` (the StepEngine's phase loop, the dist worker),
  so tracing adds no second pair of clock reads.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

from repro.telemetry.events import COUNTER, GAUGE, NO_STEP, SPAN, Event


class Tracer:
    """Fans events out to sinks; owns the span-nesting stack.

    Parameters
    ----------
    rank:
        Default rank stamped on emitted events (workers pass theirs).
    backend:
        Optional backend label merged into every span's attrs.
    sinks:
        Initial sink list; extend with :meth:`add_sink`.
    """

    enabled = True

    def __init__(self, rank: int = 0, backend: str = "", sinks=()):
        self.rank = int(rank)
        self.backend = backend
        self._sinks = list(sinks)
        self._stack: list[str] = []

    def __bool__(self) -> bool:
        return True

    def add_sink(self, sink) -> "Tracer":
        self._sinks.append(sink)
        return self

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    # -- emission ------------------------------------------------------------

    def emit(self, event: Event) -> None:
        """Forward a pre-built event untouched (the dist merge path —
        the event keeps the originating worker's rank/timestamps)."""
        for sink in self._sinks:
            sink.on_event(event)

    def emit_span(
        self,
        name: str,
        start: float,
        duration: float,
        cat: str = "phase",
        step: int = NO_STEP,
        **attrs,
    ) -> None:
        """Record an already-timed interval."""
        if self.backend:
            attrs.setdefault("backend", self.backend)
        self.emit(
            Event(
                SPAN, name, start, dur=duration, cat=cat,
                rank=self.rank, step=step, attrs=attrs,
            )
        )

    @contextmanager
    def span(self, name: str, cat: str = "span", step: int = NO_STEP, **attrs):
        """Time the body as a span; nesting is tracked on a stack."""
        if self._stack:
            attrs.setdefault("parent", self._stack[-1])
        attrs.setdefault("depth", len(self._stack))
        self._stack.append(name)
        start = perf_counter()
        try:
            yield self
        finally:
            duration = perf_counter() - start
            self._stack.pop()
            self.emit_span(name, start, duration, cat=cat, step=step, **attrs)

    def counter(
        self, name: str, value: float, cat: str = "counter",
        step: int = NO_STEP, **attrs,
    ) -> None:
        """A per-step monotonic contribution (bytes pulled, bids won)."""
        self.emit(
            Event(
                COUNTER, name, perf_counter(), value=float(value), cat=cat,
                rank=self.rank, step=step, attrs=attrs,
            )
        )

    def gauge(
        self, name: str, value: float, cat: str = "gauge",
        step: int = NO_STEP, **attrs,
    ) -> None:
        """An instantaneous sample (occupancy, heartbeat age, sizes)."""
        self.emit(
            Event(
                GAUGE, name, perf_counter(), value=float(value), cat=cat,
                rank=self.rank, step=step, attrs=attrs,
            )
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Flush and close every sink (idempotent)."""
        sinks, self._sinks = self._sinks, []
        for sink in sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


class _NullSpan:
    """Reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The no-op tracer: every method short-circuits, ``bool()`` is False.

    Instrumented code holds a tracer unconditionally; with this one
    installed the only cost on the hot path is the ``if tracer:`` guard
    (or an attribute call that immediately returns).
    """

    enabled = False

    def __bool__(self) -> bool:
        return False

    def add_sink(self, sink) -> "NullTracer":
        raise RuntimeError("cannot attach sinks to the null tracer")

    @property
    def sinks(self) -> tuple:
        return ()

    def emit(self, event) -> None:
        pass

    def emit_span(self, name, start, duration, cat="phase", step=NO_STEP,
                  **attrs) -> None:
        pass

    def span(self, name, cat="span", step=NO_STEP, **attrs):
        return _NULL_SPAN

    def counter(self, name, value, cat="counter", step=NO_STEP, **attrs) -> None:
        pass

    def gauge(self, name, value, cat="gauge", step=NO_STEP, **attrs) -> None:
        pass

    def close(self) -> None:
        pass


#: The shared off switch — safe to share because it holds no state.
NULL_TRACER = NullTracer()
