"""The telemetry event model.

One flat :class:`Event` record represents everything the tracer can
observe:

- **spans** — a named interval ``[ts, ts + dur]`` (a step, a phase, a
  barrier wait, a halo pull).  Spans nest by time containment; the
  tracer additionally stamps ``parent``/``depth`` attributes for spans
  opened through its context-manager API, so nesting survives sinks
  that do not reconstruct containment.
- **counters** — a monotonic per-step contribution (halo bytes pulled,
  bid conflicts won).
- **gauges** — an instantaneous sample (active-voxel occupancy,
  heartbeat age, shm segment size).

Timestamps are ``time.perf_counter()`` seconds.  On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide, so events recorded by the
distributed runtime's worker *processes* share a timeline with the
coordinator's — the property the per-rank Chrome-trace lanes rely on.

``cat`` buckets events for sinks and the report tool: the engine uses
``"step"``/``"phase"``, the distributed runtime adds ``"barrier"`` and
``"halo"``, backends use ``"gating"``/``"comm"``/``"shm"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SPAN = "span"
COUNTER = "counter"
GAUGE = "gauge"

#: Sentinel for "no step context" (events outside the step loop).
NO_STEP = -1


@dataclass(slots=True)
class Event:
    """One telemetry record (see module docstring for the kinds)."""

    kind: str
    name: str
    #: ``perf_counter`` seconds; span start or sample time.
    ts: float
    #: Span duration in seconds (0.0 for counters/gauges).
    dur: float = 0.0
    #: Counter/gauge value (0.0 for spans).
    value: float = 0.0
    cat: str = ""
    rank: int = 0
    step: int = NO_STEP
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Plain-dict form (the JSONL wire format)."""
        out = {
            "kind": self.kind,
            "name": self.name,
            "ts": self.ts,
            "cat": self.cat,
            "rank": self.rank,
            "step": self.step,
        }
        if self.kind == SPAN:
            out["dur"] = self.dur
        else:
            out["value"] = self.value
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_json(cls, data: dict) -> "Event":
        return cls(
            kind=data["kind"],
            name=data["name"],
            ts=float(data["ts"]),
            dur=float(data.get("dur", 0.0)),
            value=float(data.get("value", 0.0)),
            cat=data.get("cat", ""),
            rank=int(data.get("rank", 0)),
            step=int(data.get("step", NO_STEP)),
            attrs=dict(data.get("attrs", {})),
        )
