"""Pluggable event sinks.

A sink is any object with ``on_event(event)`` and (optionally)
``close()``.  Shipped sinks:

- :class:`RingBufferSink` — bounded in-memory buffer (tests, ad-hoc
  inspection, the always-cheap default for live tracing);
- :class:`JsonlSink` — streams one JSON object per event, the archival
  format ``simcov-repro trace report`` reads back;
- :class:`ChromeTraceSink` — writes the Chrome trace-event JSON format
  (load in ``chrome://tracing`` or https://ui.perfetto.dev): spans
  become complete (``"X"``) events on a ``pid=rank`` lane, counters and
  gauges become counter (``"C"``) events, and metadata (``"M"``) events
  name each rank's lane;
- :class:`PhaseMetricsSink` — aggregates ``cat="phase"`` spans into a
  :class:`~repro.engine.metrics.PhaseMetrics`-compatible object (it only
  needs ``record(name, seconds, skipped=...)``), which is how the
  engine's metrics surface becomes a view over the tracer;
- :class:`SseSink` — formats each event as a server-sent-events frame
  (:func:`sse_frame`) and fans the text to subscriber callables; the
  serving layer (:mod:`repro.serve`) bridges those callables into each
  job's event stream, so ``GET /jobs/{id}/events`` is just another sink
  on the same tracer every backend already feeds.
"""

from __future__ import annotations

import json
from collections import deque

from repro.telemetry.events import SPAN, Event


class RingBufferSink:
    """Keep the last ``capacity`` events in memory."""

    def __init__(self, capacity: int = 65536):
        self.events: deque[Event] = deque(maxlen=int(capacity))

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass

    # -- inspection ----------------------------------------------------------

    def spans(self, cat: str | None = None) -> list[Event]:
        return [
            e for e in self.events
            if e.kind == SPAN and (cat is None or e.cat == cat)
        ]

    def values(self, name: str) -> list[float]:
        """Every counter/gauge sample recorded under ``name``."""
        return [e.value for e in self.events
                if e.kind != SPAN and e.name == name]


class JsonlSink:
    """One JSON object per line, streamed as events arrive.

    Line-buffered: each event reaches the file as it happens, so a trace
    from a crashed or signalled process is still readable up to the last
    complete event (the serve CI job uploads these as artifacts).

    The first line is a ``{"kind": "meta", ...}`` run-metadata header
    (:func:`repro.obs.runmeta.run_metadata`) — host, cpu count, python,
    git SHA — so a report or a diff knows which environment produced the
    numbers; pass ``write_meta=False`` to suppress it, or ``meta=`` to
    ride extra keys along.  Non-event records (the header, metrics
    snapshots) share the file via :meth:`write_record`; readers dispatch
    on ``kind``.
    """

    def __init__(self, path, meta: dict | None = None, write_meta: bool = True):
        self.path = path
        self._fh = open(path, "w", buffering=1)
        if write_meta:
            from repro.obs.runmeta import run_metadata

            self.write_record({"kind": "meta", **run_metadata(), **(meta or {})})

    def on_event(self, event: Event) -> None:
        self._fh.write(json.dumps(event.to_json()) + "\n")

    def write_record(self, record: dict) -> None:
        """Append a non-event record (meta header, metrics snapshot);
        silently dropped after close — record writers (the snapshot
        sink) may outlive this sink in a tracer's close order."""
        if self._fh is not None:
            self._fh.write(json.dumps(record) + "\n")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


#: Record kinds that decode as telemetry events.
_EVENT_KINDS = frozenset({"span", "counter", "gauge"})


def read_jsonl(path) -> list[Event]:
    """Load a :class:`JsonlSink` file back into events.

    Non-event records (``kind`` outside span/counter/gauge: the metadata
    header, metrics snapshots) are skipped — use :func:`read_meta` /
    :func:`repro.obs.snapshot.read_snapshots` for those.
    """
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                rec = json.loads(line)
                if rec.get("kind") in _EVENT_KINDS:
                    events.append(Event.from_json(rec))
    return events


def read_meta(path) -> dict | None:
    """The run-metadata header of a JSONL trace, or None (older traces,
    Chrome traces are handled by their own ``otherData`` field)."""
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "meta":
                rec.pop("kind", None)
                return rec
            return None  # header is always first when present
    return None


class ChromeTraceSink:
    """Buffer events; write Chrome trace-event JSON on close.

    Each rank renders as one process lane (``pid = rank``), with spans on
    ``tid`` 0 — Perfetto then shows the distributed runtime as stacked
    per-rank timelines whose barrier-wait slices line up vertically.
    """

    def __init__(self, path, meta: dict | None = None):
        self.path = path
        self.meta = meta
        self._events: list[Event] = []
        self._closed = False

    def on_event(self, event: Event) -> None:
        self._events.append(event)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        from repro.obs.runmeta import run_metadata

        meta = {**run_metadata(), **(self.meta or {})}
        with open(self.path, "w") as fh:
            json.dump(self.render(self._events, meta=meta), fh)
        self._events = []

    @staticmethod
    def render(events: list[Event], meta: dict | None = None) -> dict:
        """The trace-event payload for an event list (pure; testable)."""
        base = min((e.ts for e in events), default=0.0)
        out = []
        ranks = sorted({e.rank for e in events})
        for rank in ranks:
            # Negative ranks are control-plane lanes (the dist runtime's
            # coordinator traces as rank -1).
            label = f"rank {rank}" if rank >= 0 else "coordinator"
            out.append(
                {
                    "ph": "M", "name": "process_name", "pid": rank, "tid": 0,
                    "args": {"name": label},
                }
            )
        for e in events:
            ts_us = (e.ts - base) * 1e6
            if e.kind == SPAN:
                rec = {
                    "ph": "X",
                    "name": e.name,
                    "cat": e.cat or "span",
                    "pid": e.rank,
                    "tid": 0,
                    "ts": ts_us,
                    "dur": e.dur * 1e6,
                }
                args = {"step": e.step, **e.attrs}
                rec["args"] = args
            else:
                rec = {
                    "ph": "C",
                    "name": e.name,
                    "cat": e.cat or e.kind,
                    "pid": e.rank,
                    "tid": 0,
                    "ts": ts_us,
                    "args": {e.name: e.value},
                }
            out.append(rec)
        payload = {"traceEvents": out, "displayTimeUnit": "ms"}
        if meta:
            # Chrome's trace format reserves otherData for free-form
            # run metadata; Perfetto shows it in the trace-info panel.
            payload["otherData"] = meta
        return payload


def sse_frame(event_name: str, data) -> str:
    """One server-sent-events frame: ``event:`` + one ``data:`` line.

    ``data`` may be a pre-serialized string or any JSON-dumpable object.
    JSON never contains raw newlines, so a single ``data:`` line is
    always a valid frame (the SSE spec would otherwise need one line per
    newline).
    """
    if not isinstance(data, str):
        data = json.dumps(data)
    return f"event: {event_name}\ndata: {data}\n\n"


class SseSink:
    """Fan telemetry events out as server-sent-events frames.

    Subscribers are plain callables receiving the formatted frame text —
    thread-agnostic on purpose: the simulation runs in a worker thread,
    and the serving layer's subscriber does the thread hop into its
    asyncio loop (``loop.call_soon_threadsafe``).  A bounded
    ``categories`` filter keeps job streams compact (per-phase spans at
    13+/step would swamp an event log that every SSE client replays);
    pass ``categories=None`` to forward everything.
    """

    #: Default forwarded categories: step spans plus the serving and
    #: resilience control-plane events — the signal a client dashboard
    #: needs, without the per-phase firehose.
    DEFAULT_CATEGORIES = frozenset({"step", "serving", "resilience"})

    def __init__(self, subscriber=None, categories=DEFAULT_CATEGORIES):
        self._subscribers = []
        self.categories = None if categories is None else frozenset(categories)
        self.dropped = 0
        if subscriber is not None:
            self.subscribe(subscriber)

    def subscribe(self, callback):
        """Add a frame consumer; returns an unsubscribe callable."""
        self._subscribers.append(callback)

        def unsubscribe():
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def on_event(self, event: Event) -> None:
        if self.categories is not None and event.cat not in self.categories:
            self.dropped += 1
            return
        frame = sse_frame("telemetry", event.to_json())
        for callback in tuple(self._subscribers):
            callback(frame)

    def close(self) -> None:
        self._subscribers = []


class PhaseMetricsSink:
    """Aggregate phase spans into a PhaseMetrics-shaped accumulator.

    Duck-typed on ``record(name, seconds, skipped=...)`` so this module
    needs no import from :mod:`repro.engine`.  ``rank`` (optional)
    restricts aggregation to spans stamped with that rank — the engine
    passes its tracer's own rank so merged-in events from *other* ranks
    (the dist runtime's drained worker spans) do not double-count into
    the coordinator's metrics.
    """

    def __init__(self, metrics, rank: int | None = None):
        self.metrics = metrics
        self.rank = rank

    def on_event(self, event: Event) -> None:
        if event.kind == SPAN and event.cat == "phase":
            if self.rank is not None and event.rank != self.rank:
                return
            self.metrics.record(
                event.name, event.dur,
                skipped=bool(event.attrs.get("skipped", False)),
            )

    def close(self) -> None:
        pass
