"""Trace summarizer behind ``simcov-repro trace report``.

Reads a trace written by either sink format (JSONL or Chrome trace
JSON — the format is sniffed, not flagged) and prints the three views
the paper's performance story needs:

- **top phases** — total/mean wall seconds per phase name, descending,
  the Fig 4-style attribution table;
- **barrier-wait histogram** — distribution of ``cat="barrier"`` span
  durations, the dist runtime's synchronization cost at a glance;
- **per-rank imbalance** — per-rank phase vs. barrier-wait seconds and
  the max/mean busy ratio, the load-balance check behind the scaling
  figures.  Busy subtracts only the *phase* barriers (which nest inside
  exchange-phase spans, so their wait is part of phase time); the
  ``step_start``/``step_end`` barriers sit outside every phase and only
  count toward the rank's total barrier seconds.
"""

from __future__ import annotations

import json

from repro.telemetry.events import COUNTER, GAUGE, SPAN, Event
from repro.telemetry.sinks import read_jsonl, read_meta


def load_meta(path) -> dict | None:
    """Run-metadata header of a trace file, either format (or None)."""
    with open(path) as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return payload.get("otherData")
    return read_meta(path)


def load_events(path) -> list[Event]:
    """Load a trace file, auto-detecting JSONL vs Chrome-trace JSON.

    Both formats start with ``{``, so the sniff is structural: a file
    that parses as one JSON document carrying ``traceEvents`` is a
    Chrome trace; anything else is treated as JSONL (one event per
    line).
    """
    with open(path) as fh:
        text = fh.read()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return _from_chrome(payload)
    return read_jsonl(path)


def _from_chrome(payload: dict) -> list[Event]:
    events = []
    for rec in payload.get("traceEvents", []):
        ph = rec.get("ph")
        args = rec.get("args", {})
        if ph == "X":
            attrs = {k: v for k, v in args.items() if k != "step"}
            events.append(
                Event(
                    SPAN, rec["name"], rec["ts"] / 1e6,
                    dur=rec.get("dur", 0.0) / 1e6,
                    cat=rec.get("cat", ""), rank=int(rec.get("pid", 0)),
                    step=int(args.get("step", -1)), attrs=attrs,
                )
            )
        elif ph == "C":
            value = args.get(rec["name"], 0.0)
            kind = GAUGE if rec.get("cat") == "gauge" else COUNTER
            events.append(
                Event(
                    kind, rec["name"], rec["ts"] / 1e6, value=float(value),
                    cat=rec.get("cat", ""), rank=int(rec.get("pid", 0)),
                )
            )
    return events


def summarize(events: list[Event]) -> dict:
    """Aggregate a trace into the report's three tables."""
    phases: dict[str, dict] = {}
    barrier_durs: list[float] = []
    ranks: dict[int, dict] = {}
    steps = set()
    resilience = {
        "restarts": 0,
        "steps_replayed": 0,
        "checkpoints": 0,
        "recovery_seconds": 0.0,
        "incidents": [],
    }
    dropped: dict[int, int] = {}
    imbalance_series: list[tuple[int, float]] = []
    for e in events:
        if e.step >= 0:
            steps.add(e.step)
        if e.kind == GAUGE and e.name == "telemetry_dropped":
            # Cumulative per-rank ring-overflow count; keep the max.
            dropped[e.rank] = max(dropped.get(e.rank, 0), int(e.value))
            continue
        if e.kind == GAUGE and e.name == "imbalance_index":
            imbalance_series.append((e.step, float(e.value)))
            continue
        if e.cat == "resilience":
            if e.kind == COUNTER and e.name == "restarts":
                resilience["restarts"] += int(e.value)
            elif e.kind == COUNTER and e.name == "steps_replayed":
                resilience["steps_replayed"] += int(e.value)
            elif e.kind == COUNTER and e.name == "shadow_checkpoints":
                resilience["checkpoints"] += int(e.value)
            elif e.kind == SPAN and e.name == "recovery":
                resilience["recovery_seconds"] += e.dur
                resilience["incidents"].append(
                    {
                        "step": e.step,
                        "seconds": e.dur,
                        "error": e.attrs.get("error", "?"),
                        "nranks_before": e.attrs.get("nranks_before"),
                        "nranks_after": e.attrs.get("nranks_after"),
                        "steps_replayed": e.attrs.get("steps_replayed"),
                        # Serve-tier incidents carry a job id, not ranks.
                        "job": e.attrs.get("job"),
                    }
                )
            continue
        if e.kind != SPAN:
            continue
        per_rank = ranks.setdefault(
            e.rank,
            {
                "phase_seconds": 0.0,
                "barrier_seconds": 0.0,
                "_in_phase_barrier": 0.0,
            },
        )
        if e.cat == "phase":
            row = phases.setdefault(
                e.name, {"seconds": 0.0, "calls": 0, "skips": 0}
            )
            if e.attrs.get("skipped"):
                row["skips"] += 1
            else:
                row["seconds"] += e.dur
                row["calls"] += 1
            per_rank["phase_seconds"] += e.dur
        elif e.cat == "barrier":
            barrier_durs.append(e.dur)
            per_rank["barrier_seconds"] += e.dur
            if (
                e.name not in ("step_start", "step_end")
                or e.attrs.get("in_phase")
            ):
                per_rank["_in_phase_barrier"] += e.dur
    for row in phases.values():
        row["mean_seconds"] = (
            row["seconds"] / row["calls"] if row["calls"] else 0.0
        )
    busy = {
        r: v["phase_seconds"] - v.pop("_in_phase_barrier")
        for r, v in ranks.items()
    }
    # Imbalance covers compute lanes only — negative ranks are
    # control-plane (the dist coordinator) and would skew the ratio.
    workers = {r: b for r, b in busy.items() if r >= 0} or busy
    imbalance = 0.0
    if workers:
        mean = sum(workers.values()) / len(workers)
        if mean > 0:
            imbalance = max(workers.values()) / mean
    return {
        "events": len(events),
        "steps": len(steps),
        "phases": dict(
            sorted(phases.items(), key=lambda kv: -kv[1]["seconds"])
        ),
        "barrier_histogram": _histogram(barrier_durs),
        "barrier_total_seconds": sum(barrier_durs),
        "barrier_waits": len(barrier_durs),
        "per_rank": {
            r: {**ranks[r], "busy_seconds": busy[r]} for r in sorted(ranks)
        },
        "imbalance": imbalance,
        "imbalance_series": imbalance_series,
        "dropped": {r: n for r, n in sorted(dropped.items()) if n > 0},
        "resilience": resilience,
    }


#: Barrier-wait histogram bucket edges (seconds).
_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


def _histogram(durs: list[float]) -> list[dict]:
    edges = (0.0, *_BUCKETS, float("inf"))
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        n = sum(1 for d in durs if lo <= d < hi)
        if n or hi != float("inf"):
            rows.append({"lo": lo, "hi": hi, "count": n})
    return rows


def _imbalance_panel(series: list[tuple[int, float]], width: int = 40,
                     max_rows: int = 24) -> list[str]:
    """ASCII imbalance-over-time: one bar per (downsampled) step window.

    The signal ROADMAP open item 5's dynamic re-decomposition will
    trigger on — a run where one rank owns the infection focus shows a
    sustained high band here.
    """
    if not series:
        return []
    # Downsample by averaging fixed-size step windows so long runs fit.
    stride = max(1, (len(series) + max_rows - 1) // max_rows)
    rows = []
    for i in range(0, len(series), stride):
        chunk = series[i:i + stride]
        step = chunk[0][0]
        val = sum(v for _, v in chunk) / len(chunk)
        rows.append((step, val))
    peak = max(v for _, v in rows)
    scale = width / peak if peak > 0 else 0.0
    lines = ["", "imbalance over time (index = max/mean busy - 1)"]
    for step, val in rows:
        bar = "#" * max(0, round(val * scale))
        lines.append(f"  step {step:>6} |{bar:<{width}}| {val:.3f}")
    lines.append(f"  peak {peak:.3f} over {len(series)} samples")
    return lines


def format_report(summary: dict, meta: dict | None = None) -> str:
    """Aligned text rendering of :func:`summarize`."""
    lines = []
    if meta:
        from repro.obs.runmeta import format_meta

        lines.append(f"run: {format_meta(meta)}")
    for rank, n in summary.get("dropped", {}).items():
        lines.append(
            f"WARNING: DROPPED {n} events (rank {rank}) — telemetry ring "
            "overflowed; totals below undercount this rank"
        )
    lines += [
        f"trace: {summary['events']} events over {summary['steps']} steps",
        "",
        "top phases",
        f"  {'phase':<24}{'calls':>7}{'skips':>7}{'seconds':>12}{'mean_seconds':>14}",
    ]
    for name, row in summary["phases"].items():
        lines.append(
            f"  {name:<24}{row['calls']:>7}{row['skips']:>7}"
            f"{row['seconds']:>12.4f}{row['mean_seconds']:>14.6f}"
        )
    lines += [
        "",
        f"barrier waits: {summary['barrier_waits']} totaling "
        f"{summary['barrier_total_seconds']:.4f}s",
    ]
    for b in summary["barrier_histogram"]:
        hi = "inf" if b["hi"] == float("inf") else f"{b['hi']:g}"
        lines.append(f"  [{b['lo']:g}s, {hi}s): {b['count']}")
    lines += ["", "per-rank"]
    lines.append(
        f"  {'rank':<6}{'phase_s':>10}{'barrier_s':>11}{'busy_s':>10}"
    )
    for rank, row in summary["per_rank"].items():
        lines.append(
            f"  {rank:<6}{row['phase_seconds']:>10.4f}"
            f"{row['barrier_seconds']:>11.4f}{row['busy_seconds']:>10.4f}"
        )
    lines.append(f"  imbalance (max/mean busy): {summary['imbalance']:.3f}")
    lines += _imbalance_panel(summary.get("imbalance_series", []))
    res = summary.get("resilience", {})
    if res.get("restarts") or res.get("incidents"):
        lines += [
            "",
            f"resilience: {res['restarts']} restart"
            f"{'s' if res['restarts'] != 1 else ''}, "
            f"{res['steps_replayed']} steps replayed, "
            f"{res['recovery_seconds']:.3f}s recovering "
            f"({res['checkpoints']} shadow checkpoints)",
        ]
        for i, inc in enumerate(res["incidents"], 1):
            if inc.get("nranks_after") is not None:
                # Dist-tier incident: rank count before/after recovery.
                origin_note = (
                    f"{inc['nranks_before']} -> {inc['nranks_after']} ranks"
                    if inc["nranks_before"] != inc["nranks_after"]
                    else f"{inc['nranks_after']} ranks"
                )
            elif inc.get("job") is not None:
                # Serve-tier incident: which job's attempt failed.
                origin_note = f"job {inc['job']}"
            else:
                origin_note = "origin unknown"
            lines.append(
                f"  incident {i}: {inc['error']} at step {inc['step']} "
                f"({origin_note}, replayed {inc['steps_replayed']} steps, "
                f"{inc['seconds']:.3f}s)"
            )
    return "\n".join(lines)
