"""Futures: UPC++'s asynchronous completion primitive.

UPC++ RPCs return futures whose values arrive with a later progress
round; applications chain continuations on them (``.then``) and join
groups (``when_all``).  SIMCoV-CPU's tiebreak round-trips are exactly
this pattern (intent RPC -> future -> result); the driver in
:mod:`repro.simcov_cpu` keeps its explicit two-wave structure for
clarity, and this module provides the general-purpose primitive for
other PGAS applications built on the runtime (plus its own test suite).
"""

from __future__ import annotations

from typing import Any, Callable


class Future:
    """A value that becomes ready at some later progress round."""

    __slots__ = ("_ready", "_value", "_callbacks")

    def __init__(self):
        self._ready = False
        self._value: Any = None
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def ready(self) -> bool:
        return self._ready

    def result(self) -> Any:
        """The value; raises if not ready yet (call progress first)."""
        if not self._ready:
            raise RuntimeError(
                "future not ready — drive the runtime's progress() first"
            )
        return self._value

    def complete(self, value: Any) -> None:
        if self._ready:
            raise RuntimeError("future already completed")
        self._ready = True
        self._value = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(value)

    def then(self, fn: Callable[[Any], Any]) -> "Future":
        """Chain a continuation; returns a future of ``fn``'s result."""
        out = Future()

        def run(value):
            out.complete(fn(value))

        if self._ready:
            run(self._value)
        else:
            self._callbacks.append(run)
        return out

    @staticmethod
    def completed(value: Any = None) -> "Future":
        f = Future()
        f.complete(value)
        return f


def when_all(futures: list[Future]) -> Future:
    """A future of the list of results, ready when every input is."""
    out = Future()
    remaining = len(futures)
    results: list[Any] = [None] * len(futures)
    if remaining == 0:
        out.complete([])
        return out
    state = {"left": remaining}

    def make_cb(i):
        def cb(value):
            results[i] = value
            state["left"] -= 1
            if state["left"] == 0:
                out.complete(list(results))

        return cb

    for i, f in enumerate(futures):
        f.then(make_cb(i))
    return out
