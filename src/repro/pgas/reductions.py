"""Collective reductions over PGAS ranks.

UPC++'s ``reduce_all`` is modeled as a binomial tree: ceil(log2(P)) rounds,
each halving the participating ranks.  The numeric result is computed with
numpy (deterministically, in rank order) and the round structure is recorded
for the perf model.
"""

from __future__ import annotations

import enum
import math

import numpy as np


class ReduceOp(enum.Enum):
    SUM = "sum"
    MAX = "max"
    MIN = "min"


_OPS = {
    ReduceOp.SUM: np.add,
    ReduceOp.MAX: np.maximum,
    ReduceOp.MIN: np.minimum,
}


def tree_reduce(values: list[np.ndarray], op: ReduceOp) -> np.ndarray:
    """Reduce per-rank arrays pairwise along a binomial tree.

    Pairwise order matters for float reproducibility: the tree combines
    rank i with rank i+stride for stride = 1, 2, 4, ... exactly as the
    UPC++ runtime does, so results are independent of delivery timing.
    """
    vals = [np.asarray(v).copy() for v in values]
    n = len(vals)
    fn = _OPS[op]
    stride = 1
    while stride < n:
        for i in range(0, n - stride, 2 * stride):
            vals[i] = fn(vals[i], vals[i + stride])
        stride *= 2
    return vals[0]


def reduction_rounds(nranks: int) -> int:
    """Tree depth: communication rounds for the perf model."""
    return int(math.ceil(math.log2(nranks))) if nranks > 1 else 0
