"""An in-process PGAS runtime modeled on UPC++ (paper §2.2, §3).

SIMCoV-CPU parallelizes over CPU ranks with UPC++: a partitioned global
address space, asynchronous remote procedure calls (RPCs) that execute on
the target rank at its next *progress* point, barriers and reductions.
This package reproduces those semantics in a single process:

- ranks are executed SPMD-style, one phase function at a time
  (:class:`~repro.pgas.runtime.PgasRuntime.phase`);
- RPCs issued during a phase are enqueued and delivered at the next
  progress point, exactly like UPC++'s deferred execution;
- every RPC, point-to-point message, barrier and reduction is counted by a
  :class:`~repro.pgas.comm.CommStats` ledger that the performance model
  converts into modeled communication time.
"""

from repro.pgas.comm import CommStats
from repro.pgas.futures import Future, when_all
from repro.pgas.runtime import PgasRuntime, RankContext
from repro.pgas.reductions import ReduceOp

__all__ = [
    "PgasRuntime",
    "RankContext",
    "CommStats",
    "ReduceOp",
    "Future",
    "when_all",
]
