"""The SPMD PGAS runtime.

Execution model (mirroring how SIMCoV-CPU uses UPC++):

1. The driver calls :meth:`PgasRuntime.phase` with a function; the function
   runs once per rank (in rank order — a deterministic stand-in for
   concurrent execution, valid because phases only touch rank-local state
   and communicate via RPC).
2. During a phase, ranks enqueue RPCs with :meth:`RankContext.rpc`.  RPCs do
   NOT run inline — like UPC++, they execute on the *target* rank at the
   next progress point.
3. :meth:`PgasRuntime.progress` delivers queued RPCs (in deterministic
   (issue order, target) order).  Handlers may themselves enqueue RPCs,
   delivered in subsequent rounds of the same progress call.
4. Barriers and reductions are collectives over all ranks.

The paper's modified SIMCoV-CPU (§4.1) *stages* T-cell updates — prepare in
one wave, execute in the next — precisely so that this deterministic
delivery model matches the physical cluster's semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

import numpy as np

from repro.pgas.comm import CommStats, payload_nbytes
from repro.pgas.reductions import ReduceOp, reduction_rounds, tree_reduce


class RankContext:
    """Per-rank view of the runtime: rank id, local store, RPC endpoint."""

    def __init__(self, runtime: "PgasRuntime", rank: int):
        self.runtime = runtime
        self.rank = rank
        #: Rank-local named state (the analog of UPC++ dist_object).
        self.store: dict[str, Any] = {}

    @property
    def nranks(self) -> int:
        return self.runtime.nranks

    @property
    def node(self) -> int:
        return self.runtime.node_of(self.rank)

    def rpc(self, target: int, handler: str, **payload) -> None:
        """Enqueue an RPC for ``target``; runs at the next progress point."""
        self.runtime._enqueue_rpc(self.rank, target, handler, payload)

    def rpc_future(self, target: int, handler: str, **payload):
        """Enqueue an RPC and return a :class:`~repro.pgas.futures.Future`
        of the handler's return value.

        Like ``upcxx::rpc``'s returned future: the value ships back as an
        (accounted) reply message and the future completes during a later
        progress round.
        """
        return self.runtime._enqueue_rpc_future(
            self.rank, target, handler, payload
        )


class PgasRuntime:
    """A team of ranks plus communication machinery.

    Parameters
    ----------
    nranks:
        Team size.
    ranks_per_node:
        Used only for accounting (inter- vs intra-node RPCs).  Perlmutter
        CPU nodes run 128 ranks (paper §4).
    comm:
        Optional shared :class:`CommStats` ledger.
    """

    def __init__(
        self,
        nranks: int,
        ranks_per_node: int | None = None,
        comm: CommStats | None = None,
    ):
        if nranks <= 0:
            raise ValueError(f"nranks must be positive, got {nranks}")
        self.nranks = int(nranks)
        self.ranks_per_node = int(ranks_per_node or nranks)
        self.comm = comm if comm is not None else CommStats()
        self.ranks = [RankContext(self, r) for r in range(self.nranks)]
        self._handlers: dict[str, Callable] = {}
        self._queues: list[deque] = [deque() for _ in range(self.nranks)]
        self._seq = 0
        self._futures: dict[int, Any] = {}
        self._future_seq = 0
        self.register_handler("__rpc_call", self._handle_rpc_call)
        self.register_handler("__rpc_reply", self._handle_rpc_reply)

    # -- topology ------------------------------------------------------------

    def node_of(self, rank: int) -> int:
        return rank // self.ranks_per_node

    # -- handlers & RPC --------------------------------------------------------

    def register_handler(self, name: str, fn: Callable) -> None:
        """Register ``fn(ctx, **payload)`` as an RPC handler."""
        if name in self._handlers:
            raise ValueError(f"handler {name!r} already registered")
        self._handlers[name] = fn

    def _enqueue_rpc(
        self, src: int, dst: int, handler: str, payload: dict
    ) -> None:
        if not 0 <= dst < self.nranks:
            raise ValueError(f"RPC target {dst} out of range")
        if handler not in self._handlers:
            raise KeyError(f"unknown RPC handler {handler!r}")
        nbytes = payload_nbytes(payload)
        self.comm.record_rpc(
            src, dst, nbytes, internode=self.node_of(src) != self.node_of(dst)
        )
        self._queues[dst].append((self._seq, src, handler, payload))
        self._seq += 1

    def _enqueue_rpc_future(self, src: int, dst: int, handler: str, payload):
        from repro.pgas.futures import Future

        if handler not in self._handlers:
            raise KeyError(f"unknown RPC handler {handler!r}")
        self._future_seq += 1
        fid = self._future_seq
        future = Future()
        self._futures[fid] = future
        self._enqueue_rpc(
            src, dst, "__rpc_call",
            {"fid_": fid, "handler_": handler, "reply_to_": src,
             "payload_": payload},
        )
        return future

    def _handle_rpc_call(self, ctx, fid_, handler_, reply_to_, payload_,
                         _src_rank):
        value = self._handlers[handler_](ctx, _src_rank=_src_rank, **payload_)
        ctx.rpc(reply_to_, "__rpc_reply", fid_=fid_, value_=value)

    def _handle_rpc_reply(self, ctx, fid_, value_, _src_rank):
        self._futures.pop(fid_).complete(value_)

    def progress(self) -> int:
        """Deliver queued RPCs until quiescent; returns rounds executed.

        Each round drains the RPCs visible at its start, in global issue
        order — so handler-issued RPCs run a round later, like UPC++
        progress with chained RPCs.
        """
        rounds = 0
        while any(self._queues):
            rounds += 1
            self.comm.record_progress_round()
            batch = []
            for dst in range(self.nranks):
                while self._queues[dst]:
                    seq, src, handler, payload = self._queues[dst].popleft()
                    batch.append((seq, dst, src, handler, payload))
            for seq, dst, src, handler, payload in sorted(batch, key=lambda t: t[0]):
                self._handlers[handler](self.ranks[dst], _src_rank=src, **payload)
        return rounds

    # -- SPMD driving -----------------------------------------------------------

    def phase(self, fn: Callable[[RankContext], Any], progress: bool = True) -> list:
        """Run ``fn`` on every rank, then (by default) deliver RPCs."""
        results = [fn(ctx) for ctx in self.ranks]
        if progress:
            self.progress()
        return results

    # -- collectives ---------------------------------------------------------------

    def barrier(self) -> None:
        """Collective barrier (accounting only; phases are already synced)."""
        self.progress()
        self.comm.record_barrier()

    def allreduce(self, values: list, op: ReduceOp = ReduceOp.SUM) -> np.ndarray:
        """Tree-reduce per-rank values; every rank sees the same result."""
        if len(values) != self.nranks:
            raise ValueError(
                f"allreduce needs {self.nranks} values, got {len(values)}"
            )
        arrs = [np.atleast_1d(np.asarray(v)) for v in values]
        self.comm.record_reduction(arrs[0].size * reduction_rounds(self.nranks))
        return tree_reduce(arrs, op)
