"""Communication accounting for the PGAS runtime.

The perf model needs, per simulated step: how many RPCs were issued (each
pays a latency/injection overhead), how many payload bytes moved, how many
collective rounds ran.  ``CommStats`` is a plain ledger; it never affects
simulation semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def payload_nbytes(payload: dict) -> int:
    """Wire size of an RPC payload dict: ndarray buffers plus 8 bytes per
    scalar field (UPC++ serializes trivially-copyable scalars inline)."""
    total = 0
    for value in payload.values():
        if isinstance(value, np.ndarray):
            total += value.nbytes
        elif isinstance(value, dict):
            total += payload_nbytes(value)
        else:
            total += 8
    return total


@dataclass
class CommStats:
    """Counters for one runtime's communication activity."""

    #: RPC invocations (each pays per-message overhead).
    rpcs: int = 0
    #: Total RPC payload bytes.
    rpc_bytes: int = 0
    #: RPCs whose source and target ranks sit on different nodes.
    rpcs_internode: int = 0
    rpc_bytes_internode: int = 0
    #: Barrier invocations.
    barriers: int = 0
    #: Reductions (allreduce) invocations.
    reductions: int = 0
    #: Elements reduced across ranks, summed over invocations.
    reduction_elems: int = 0
    #: Progress rounds executed (RPC delivery sweeps).
    progress_rounds: int = 0
    #: Optional per-(src,dst) message matrix, filled when ``track_pairs``.
    pair_bytes: dict = field(default_factory=dict)
    track_pairs: bool = False

    def record_rpc(self, src: int, dst: int, nbytes: int, internode: bool) -> None:
        self.rpcs += 1
        self.rpc_bytes += nbytes
        if internode:
            self.rpcs_internode += 1
            self.rpc_bytes_internode += nbytes
        if self.track_pairs:
            key = (src, dst)
            self.pair_bytes[key] = self.pair_bytes.get(key, 0) + nbytes

    def record_barrier(self) -> None:
        self.barriers += 1

    def record_reduction(self, elems: int) -> None:
        self.reductions += 1
        self.reduction_elems += elems

    def record_progress_round(self) -> None:
        self.progress_rounds += 1

    def snapshot(self) -> dict:
        """Immutable copy of scalar counters (for per-step deltas)."""
        return {
            "rpcs": self.rpcs,
            "rpc_bytes": self.rpc_bytes,
            "rpcs_internode": self.rpcs_internode,
            "rpc_bytes_internode": self.rpc_bytes_internode,
            "barriers": self.barriers,
            "reductions": self.reductions,
            "reduction_elems": self.reduction_elems,
            "progress_rounds": self.progress_rounds,
        }

    @staticmethod
    def delta(after: dict, before: dict) -> dict:
        return {k: after[k] - before[k] for k in after}
