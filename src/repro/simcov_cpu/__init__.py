"""SIMCoV-CPU: the paper's baseline implementation (§2.2).

The domain is decomposed over CPU ranks on the UPC++-like PGAS runtime
(:mod:`repro.pgas`).  Each rank keeps an *active region* (the CPU analog of
the active-list, §3.2) and performs local updates; cross-boundary
interactions ride RPCs:

- boundary-state RPCs replicate each rank's border strips into neighbor
  ghost halos (batched per neighbor, as a tuned UPC++ application would);
- the T-cell tiebreak is the **two-wave** RPC protocol the paper contrasts
  with the GPU's single-exchange scheme: (1) intents — boundary-crossing
  move/bind bids are shipped to the target's owner, which resolves all
  competition locally; (2) results — owners notify sources which of their
  cells won, so sources erase movers / hold binders.

Semantics are staged exactly as the paper's modified SIMCoV-CPU (§4.1), so
this implementation is bitwise identical to the sequential reference — and
to SIMCoV-GPU.
"""

from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_cpu.active_region import ActiveRegion

__all__ = ["SimCovCPU", "ActiveRegion"]
