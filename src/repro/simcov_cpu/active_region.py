"""Per-rank active-voxel tracking (the CPU active-list of §2.2/§3.2).

SIMCoV-CPU skips computation on quiescent voxels by maintaining a list of
voxels that can possibly change.  This reproduction tracks the same set as
a boolean mask (activity dilated by one voxel, since nothing moves or
diffuses faster than that) and executes kernels over its bounding box —
a vectorization-friendly equivalent with identical semantics.  The *count*
of active voxels is what the performance model charges per step, matching
the original's per-voxel iteration cost.

The implementation now lives in :class:`repro.engine.activity.ActivityGate`
(shared with the sequential backend's periodic §3.2 sweep); this class is
the every-step refresh configuration under its historical name.
"""

from __future__ import annotations

from repro.core.state import VoxelBlock
from repro.engine.activity import ActivityGate


class ActiveRegion(ActivityGate):
    """Tracks which owned voxels a rank must process this step.

    :meth:`refresh` recomputes the active set from current state (ghosts
    included) every step: the padded activity mask is dilated by one voxel
    so neighbors of active voxels (possible infection/diffusion/move
    targets) are included, then cropped to the owned region.  Because
    ghost strips are exchanged at the start of the step, activity
    approaching from a neighbor rank activates the receiving boundary
    voxels in time — the role RPC-time active-list updates play in the
    original.  Must be called after the step's boundary-state exchange.
    """

    def __init__(self, block: VoxelBlock, min_chemokine: float):
        super().__init__(block, min_chemokine, sweep_period=1)
