"""Per-rank active-voxel tracking (the CPU active-list of §2.2/§3.2).

SIMCoV-CPU skips computation on quiescent voxels by maintaining a list of
voxels that can possibly change.  This reproduction tracks the same set as
a boolean mask (activity dilated by one voxel, since nothing moves or
diffuses faster than that) and executes kernels over its bounding box —
a vectorization-friendly equivalent with identical semantics.  The *count*
of active voxels is what the performance model charges per step, matching
the original's per-voxel iteration cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import VoxelBlock
from repro.grid.tiling import _dilate


class ActiveRegion:
    """Tracks which owned voxels a rank must process this step."""

    def __init__(self, block: VoxelBlock, min_chemokine: float):
        self.block = block
        self.min_chemokine = min_chemokine
        self._mask = np.ones(block.owned.shape, dtype=bool)
        self._count = int(self._mask.sum())

    def refresh(self) -> None:
        """Recompute the active set from current state (ghosts included).

        The padded activity mask is dilated by one voxel so neighbors of
        active voxels (possible infection/diffusion/move targets) are
        included, then cropped to the owned region.  Because ghost strips
        are exchanged at the start of the step, activity approaching from a
        neighbor rank activates the receiving boundary voxels in time —
        the role RPC-time active-list updates play in the original.

        Must be called after the step's boundary-state exchange.
        """
        raw = self.block.activity_mask_padded(self.min_chemokine)
        g = self.block.ghost
        dilated = _dilate(raw)
        crop = tuple(slice(g, s - g) for s in dilated.shape)
        self._mask = dilated[crop]
        self._count = int(self._mask.sum())

    @property
    def count(self) -> int:
        """Active voxels this step (the perf model's work unit)."""
        return self._count

    @property
    def mask(self) -> np.ndarray:
        return self._mask

    def region(self) -> tuple[slice, ...] | None:
        """Padded-array slices of the active bounding box (None if idle).

        Kernels run over this box; voxels inside the box but outside the
        mask are provably no-ops, so semantics equal full-domain execution.
        """
        if not self._mask.any():
            return None
        g = self.block.ghost
        sls = []
        for axis in range(self._mask.ndim):
            other = tuple(a for a in range(self._mask.ndim) if a != axis)
            proj = self._mask.any(axis=other)
            idx = np.nonzero(proj)[0]
            sls.append(slice(int(idx[0]) + g, int(idx[-1]) + 1 + g))
        return tuple(sls)
