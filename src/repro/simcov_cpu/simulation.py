"""The SIMCoV-CPU simulation driver.

Per-step structure (staged per §4.1, RPC waves per §2.2/§3.1):

1. replicated vascular-pool update; T-cell aging + extravasation (local);
2. **boundary-state RPC wave**: epi_state + T-cell occupancy strips to
   neighbor ghosts;
3. T-cell intents over the active region; intents whose target voxel
   belongs to another rank are shipped as **intent RPCs** (wave 1 of the
   two-wave tiebreak) and withheld from local resolution;
4. owners merge remote bids, resolve all competition, apply arrivals and
   binds, and send **result RPCs** (wave 2) telling sources which of their
   cells won;
5. sources apply results (erase movers-out, hold binders);
6. epithelial update + production (local, active region);
7. **field RPC wave**: virion/chemokine boundary strips; diffusion + decay;
8. tree allreduce of statistics; pool debit.

The schedule above is declared as data by
:class:`~repro.engine.pgas.PgasBackend` and executed by the shared
:class:`~repro.engine.engine.StepEngine`; this class is a thin shim that
re-exports the backend's state under the historical public API.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SimCovParams
from repro.engine.driver import EngineDriver
from repro.grid.decomposition import DecompositionKind


class SimCovCPU(EngineDriver):
    """Rank-parallel SIMCoV on the PGAS runtime.

    Parameters
    ----------
    params, seed:
        As for :class:`repro.core.model.SequentialSimCov`; the same seed
        produces bitwise-identical simulations across implementations.
    nranks:
        CPU ranks (the paper's per-node count is 128).
    decomposition:
        Block (default) or linear, Fig 1B.
    ranks_per_node:
        For inter- vs intra-node RPC accounting.
    """

    def __init__(
        self,
        params: SimCovParams,
        nranks: int,
        seed: int = 0,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        ranks_per_node: int = 128,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        active_gating: bool = True,
        tracer=None,
    ):
        # Deferred: repro.engine.pgas itself imports from this package.
        from repro.engine.pgas import PgasBackend

        backend = PgasBackend(
            params,
            nranks,
            seed=seed,
            decomposition=decomposition,
            ranks_per_node=ranks_per_node,
            seed_gids=seed_gids,
            structure_gids=structure_gids,
            active_gating=active_gating,
        )
        self._init_engine(backend, tracer=tracer)
        self.decomp = backend.decomp
        self.runtime = backend.runtime
        self.exchanger = backend.exchanger
        self.blocks = backend.blocks
        self.intents = backend.intents
        self.active = backend.active

    # -- inspection ---------------------------------------------------------------

    def gather_epi_state(self) -> np.ndarray:
        """Assembled global epithelial state (test/IO helper)."""
        return self.backend.gather_epi_state()
