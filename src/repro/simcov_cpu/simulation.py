"""The SIMCoV-CPU simulation driver.

Per-step structure (staged per §4.1, RPC waves per §2.2/§3.1):

1. replicated vascular-pool update; T-cell aging + extravasation (local);
2. **boundary-state RPC wave**: epi_state + T-cell occupancy strips to
   neighbor ghosts;
3. T-cell intents over the active region; intents whose target voxel
   belongs to another rank are shipped as **intent RPCs** (wave 1 of the
   two-wave tiebreak) and withheld from local resolution;
4. owners merge remote bids, resolve all competition, apply arrivals and
   binds, and send **result RPCs** (wave 2) telling sources which of their
   cells won;
5. sources apply results (erase movers-out, hold binders);
6. epithelial update + production (local, active region);
7. **field RPC wave**: virion/chemokine boundary strips; diffusion + decay;
8. tree allreduce of statistics; pool debit.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.seeding import apply_seeds, seed_infections
from repro.core.state import VoxelBlock
from repro.core.stats import REDUCED_FIELDS, StepStats, TimeSeries, stats_vector
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger
from repro.grid.spec import GridSpec, moore_offsets
from repro.pgas.runtime import PgasRuntime
from repro.pgas.reductions import ReduceOp
from repro.rng.streams import VoxelRNG
from repro.simcov_cpu.active_region import ActiveRegion

#: Start-of-step wave: everything the active-region refresh and the binding
#: stencil need, fresh as of the previous step's end.
_OPEN_WAVE = ("epi_state", "virions", "chemokine", "tcell")
#: Post-extravasation wave: the exact T-cell occupancy snapshot movement is
#: resolved against.
_OCCUPANCY_WAVE = ("tcell",)
#: Pre-diffusion wave: post-production concentration ghosts.
_FIELD_WAVE = ("virions", "chemokine")


class SimCovCPU:
    """Rank-parallel SIMCoV on the PGAS runtime.

    Parameters
    ----------
    params, seed:
        As for :class:`repro.core.model.SequentialSimCov`; the same seed
        produces bitwise-identical simulations across implementations.
    nranks:
        CPU ranks (the paper's per-node count is 128).
    decomposition:
        Block (default) or linear, Fig 1B.
    ranks_per_node:
        For inter- vs intra-node RPC accounting.
    """

    def __init__(
        self,
        params: SimCovParams,
        nranks: int,
        seed: int = 0,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        ranks_per_node: int = 128,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
    ):
        self.params = params
        self.rng = VoxelRNG(seed)
        self.spec = GridSpec(params.dim)
        self.decomp = Decomposition.make(self.spec, nranks, decomposition)
        self.runtime = PgasRuntime(nranks, ranks_per_node=ranks_per_node)
        self.exchanger = HaloExchanger(self.decomp)
        self.blocks = [
            VoxelBlock(self.spec, self.decomp.boxes[r]) for r in range(nranks)
        ]
        self.intents = [kernels.IntentArrays(b.shape) for b in self.blocks]
        self.active = [
            ActiveRegion(b, params.min_chemokine) for b in self.blocks
        ]
        self._scratch = [
            (np.zeros_like(b.virions), np.zeros_like(b.chemokine))
            for b in self.blocks
        ]
        # Per-rank buffers filled by RPC handlers during progress.
        self._incoming_moves: list[list[dict]] = [[] for _ in range(nranks)]
        self._incoming_binds: list[list[dict]] = [[] for _ in range(nranks)]
        self._won_moves: list[list[np.ndarray]] = [[] for _ in range(nranks)]
        self._won_binds: list[list[np.ndarray]] = [[] for _ in range(nranks)]
        self._register_handlers()
        if structure_gids is not None:
            from repro.core.structure import apply_structure

            for b in self.blocks:
                apply_structure(b, structure_gids)
        if seed_gids is None:
            seed_gids = seed_infections(params, self.rng)
        self.seed_gids = np.asarray(seed_gids, dtype=np.int64)
        for b in self.blocks:
            apply_seeds(b, self.seed_gids)
        self.pool = 0.0
        self.step_num = 0
        self.series = TimeSeries()
        #: Per-step work records for the performance model.
        self.step_work: list[dict] = []

    # -- RPC handlers ----------------------------------------------------------

    def _register_handlers(self) -> None:
        rt = self.runtime

        def recv_boundary(ctx, lo, hi, _src_rank, **fields):
            from repro.grid.box import Box

            region = Box(tuple(int(x) for x in lo), tuple(int(x) for x in hi))
            block = self.blocks[ctx.rank]
            sl = region.slices_from(block.origin)
            for name, data in fields.items():
                getattr(block, name)[sl] = data

        def recv_move_intents(ctx, src_gid, tgt_gid, bid, life, _src_rank):
            self._incoming_moves[ctx.rank].append(
                {
                    "src_rank": _src_rank,
                    "src_gid": src_gid,
                    "tgt_gid": tgt_gid,
                    "bid": bid,
                    "life": life,
                }
            )

        def recv_bind_intents(ctx, src_gid, tgt_gid, bid, _src_rank):
            self._incoming_binds[ctx.rank].append(
                {
                    "src_rank": _src_rank,
                    "src_gid": src_gid,
                    "tgt_gid": tgt_gid,
                    "bid": bid,
                }
            )

        def recv_move_results(ctx, won_src_gid, _src_rank):
            self._won_moves[ctx.rank].append(won_src_gid)

        def recv_bind_results(ctx, won_src_gid, _src_rank):
            self._won_binds[ctx.rank].append(won_src_gid)

        rt.register_handler("recv_boundary", recv_boundary)
        rt.register_handler("recv_move_intents", recv_move_intents)
        rt.register_handler("recv_bind_intents", recv_bind_intents)
        rt.register_handler("recv_move_results", recv_move_results)
        rt.register_handler("recv_bind_results", recv_bind_results)

    # -- boundary waves ---------------------------------------------------------

    def _send_boundary_wave(self, fields: tuple[str, ...]) -> None:
        """Each rank ships the strips neighbors' ghosts need (batched per
        route, like a tuned UPC++ code)."""
        for src, dst, region in self.exchanger.replace_routes:
            block = self.blocks[src]
            sl = region.slices_from(block.origin)
            payload = {name: getattr(block, name)[sl].copy() for name in fields}
            self.runtime.ranks[src].rpc(
                dst,
                "recv_boundary",
                lo=np.array(region.lo),
                hi=np.array(region.hi),
                **payload,
            )
        self.runtime.progress()

    # -- local <-> global index helpers ----------------------------------------------

    def _locate(self, rank: int, gids: np.ndarray) -> tuple[tuple, np.ndarray]:
        """Padded-array indices for global ids owned by ``rank``."""
        block = self.blocks[rank]
        coords = self.spec.unravel(gids)
        local = coords - np.array(block.origin)
        return tuple(local.T), coords

    # -- the step ------------------------------------------------------------------

    def step(self) -> StepStats:
        p = self.params
        rt = self.runtime
        t = self.step_num
        nranks = rt.nranks

        comm_before = rt.comm.snapshot()
        active_counts = []

        # Pool (replicated scalar, identical on every rank).
        if t >= p.tcell_initial_delay:
            self.pool += p.tcell_generation_rate
        self.pool -= self.pool / p.tcell_vascular_period
        attempts = kernels.extravasation_attempts(p, self.rng, t, self.pool)

        extr_local = [0] * nranks
        moves_local = [0] * nranks
        binds_local = [0] * nranks
        pending_moves: list[dict] = [None] * nranks
        pending_binds: list[dict] = [None] * nranks

        # Phase 1: start-of-step boundary wave (fresh end-of-last-step state).
        self._send_boundary_wave(_OPEN_WAVE)

        # Phase 2: refresh active regions, age, extravasate (all local).
        def phase_age(ctx):
            r = ctx.rank
            self.active[r].refresh()
            active_counts.append(self.active[r].count)
            region = self.active[r].region()
            if region is not None:
                kernels.tcell_age(self.blocks[r], region)
            extr_local[r] = kernels.apply_extravasation(
                p, self.blocks[r], attempts
            )

        rt.phase(phase_age, progress=False)

        # Phase 2b: occupancy wave — the exact T-cell snapshot for movement.
        self._send_boundary_wave(_OCCUPANCY_WAVE)

        # Phase 3: intents + intent RPCs (tiebreak wave 1).
        def phase_intents(ctx):
            r = ctx.rank
            block = self.blocks[r]
            intents = self.intents[r]
            intents.clear()
            region = self.active[r].region()
            if region is not None:
                kernels.tcell_intents(p, self.rng, t, block, intents, region)
            pending_moves[r] = self._extract_remote_intents(r, kind="move")
            pending_binds[r] = self._extract_remote_intents(r, kind="bind")

        rt.phase(phase_intents, progress=True)  # delivers intent RPCs

        # Phase 4: merge remote bids, resolve, apply arrivals, result RPCs.
        def phase_resolve(ctx):
            r = ctx.rank
            block = self.blocks[r]
            intents = self.intents[r]
            region = self.active[r].region()
            self._merge_remote_bids(r)
            if region is not None:
                moves_local[r] += kernels.resolve_moves(block, intents, region)
                binds_local[r] += kernels.resolve_binds(
                    p, self.rng, t, block, intents, region
                )
            moves_local[r] += self._apply_remote_moves(ctx)
            self._apply_remote_binds(ctx)

        rt.phase(phase_resolve, progress=True)  # delivers result RPCs

        # Phase 5: apply results at sources.
        def phase_results(ctx):
            self._apply_results(ctx.rank, pending_moves[ctx.rank],
                                pending_binds[ctx.rank])

        rt.phase(phase_results, progress=False)

        # Phase 6: epithelial + production.
        def phase_epithelial(ctx):
            r = ctx.rank
            region = self.active[r].region()
            if region is not None:
                kernels.epithelial_update(p, self.rng, t, self.blocks[r], region)
                kernels.production_update(p, self.blocks[r], region, step=t)

        rt.phase(phase_epithelial, progress=False)

        # Phase 7: field wave + diffusion.
        self._send_boundary_wave(_FIELD_WAVE)

        def phase_diffuse(ctx):
            r = ctx.rank
            block = self.blocks[r]
            region = self.active[r].region()
            if region is None:
                return
            kernels.mirror_fields(block)
            sv, sc = self._scratch[r]
            kernels.concentration_update(p, block, region, sv, sc)
            kernels.concentration_commit(p, block, [region], sv, sc, step=t)

        rt.phase(phase_diffuse, progress=False)

        # Phase 8: statistics allreduce + pool debit.
        vectors = [
            np.concatenate(
                [
                    stats_vector(self.blocks[r]),
                    [extr_local[r], binds_local[r], moves_local[r]],
                ]
            )
            for r in range(nranks)
        ]
        reduced = rt.allreduce(vectors, ReduceOp.SUM)
        extr = int(reduced[len(REDUCED_FIELDS)])
        self.pool = max(0.0, self.pool - extr)
        stats = StepStats.from_vector(
            t,
            reduced[: len(REDUCED_FIELDS)],
            pool=self.pool,
            extravasations=extr,
            binds=int(reduced[len(REDUCED_FIELDS) + 1]),
            moves=int(reduced[len(REDUCED_FIELDS) + 2]),
        )
        self.series.append(stats)
        self.step_work.append(
            {
                "step": t,
                "active_per_rank": list(active_counts),
                "comm": rt.comm.delta(rt.comm.snapshot(), comm_before),
            }
        )
        self.step_num += 1
        return stats

    # -- tiebreak plumbing ----------------------------------------------------------

    def _extract_remote_intents(self, rank: int, kind: str) -> dict:
        """Find owned T cells targeting ghost voxels; ship them to owners and
        withhold them from local resolution.  Returns the pending record."""
        block = self.blocks[rank]
        intents = self.intents[rank]
        interior = block.interior
        if kind == "move":
            dirs = intents.move_dir[interior]
            stencil = moore_offsets(self.spec.ndim)
            base = 0
        else:
            dirs = intents.bind_dir[interior]
            stencil = kernels.bind_stencil(self.spec.ndim)
            base = 0
        owned_box = block.owned
        src_list, tgt_list, bid_list, life_list = [], [], [], []
        pend_local = []
        for k, off in enumerate(stencil):
            mask = dirs == (k + base)
            if not mask.any():
                continue
            src_local = np.argwhere(mask)  # owned-relative coords
            src_global = src_local + np.array(owned_box.lo)
            tgt_global = src_global + off
            outside = ~owned_box.contains(tgt_global)
            if not outside.any():
                continue
            src_g = src_global[outside]
            tgt_g = tgt_global[outside]
            src_pad = tuple((src_g - np.array(block.origin)).T)
            src_list.append(self.spec.ravel(src_g))
            tgt_list.append(self.spec.ravel(tgt_g))
            bid_list.append(intents.bid_self[src_pad])
            if kind == "move":
                life_list.append(block.tcell_tissue_time[src_pad])
            pend_local.append(src_pad)
            # Withhold from local resolution.
            if kind == "move":
                intents.move_dir[src_pad] = -1
            else:
                intents.bind_dir[src_pad] = -1
        if not src_list:
            return {"src_gid": np.array([], dtype=np.int64)}
        src_gid = np.concatenate(src_list)
        tgt_gid = np.concatenate(tgt_list)
        bid = np.concatenate(bid_list)
        owners = self.decomp.owner_of(self.spec.unravel(tgt_gid))
        life = np.concatenate(life_list) if kind == "move" else None
        for dst in np.unique(owners):
            sel = owners == dst
            payload = {
                "src_gid": src_gid[sel],
                "tgt_gid": tgt_gid[sel],
                "bid": bid[sel],
            }
            if kind == "move":
                payload["life"] = life[sel]
                self.runtime.ranks[rank].rpc(int(dst), "recv_move_intents", **payload)
            else:
                self.runtime.ranks[rank].rpc(int(dst), "recv_bind_intents", **payload)
        return {"src_gid": src_gid, "bid": bid, "kind": kind}

    def _merge_remote_bids(self, rank: int) -> None:
        """Max-merge buffered remote bids into this rank's bid arrays."""
        intents = self.intents[rank]
        for rec in self._incoming_moves[rank]:
            idx, _ = self._locate(rank, rec["tgt_gid"])
            arr = intents.move_bid
            np.maximum.at(arr, idx, rec["bid"])
        for rec in self._incoming_binds[rank]:
            idx, _ = self._locate(rank, rec["tgt_gid"])
            np.maximum.at(intents.bind_bid, idx, rec["bid"])

    def _apply_remote_moves(self, ctx) -> int:
        """Instantiate remote movers that won bids on owned voxels; notify
        their source ranks (tiebreak wave 2)."""
        r = ctx.rank
        block = self.blocks[r]
        intents = self.intents[r]
        arrivals = 0
        winners_by_src: dict[int, list[int]] = {}
        for rec in self._incoming_moves[r]:
            idx, _ = self._locate(r, rec["tgt_gid"])
            won = intents.move_bid[idx] == rec["bid"]
            for i in np.nonzero(won)[0]:
                cell = tuple(int(x[i]) for x in idx)
                block.tcell[cell] = 1
                block.tcell_tissue_time[cell] = rec["life"][i]
                block.tcell_bound_time[cell] = 0
                arrivals += 1
                winners_by_src.setdefault(rec["src_rank"], []).append(
                    int(rec["src_gid"][i])
                )
        self._incoming_moves[r] = []
        for src_rank, gids in winners_by_src.items():
            ctx.rpc(
                src_rank,
                "recv_move_results",
                won_src_gid=np.array(gids, dtype=np.int64),
            )
        return arrivals

    def _apply_remote_binds(self, ctx) -> None:
        """Apply remote bind winners to owned epithelial cells; notify the
        winning T cells' owners."""
        r = ctx.rank
        block = self.blocks[r]
        intents = self.intents[r]
        p = self.params
        winners_by_src: dict[int, list[int]] = {}
        for rec in self._incoming_binds[r]:
            idx, _ = self._locate(r, rec["tgt_gid"])
            won = intents.bind_bid[idx] == rec["bid"]
            for i in np.nonzero(won)[0]:
                winners_by_src.setdefault(rec["src_rank"], []).append(
                    int(rec["src_gid"][i])
                )
        self._incoming_binds[r] = []
        for src_rank, gids in winners_by_src.items():
            ctx.rpc(
                src_rank,
                "recv_bind_results",
                won_src_gid=np.array(gids, dtype=np.int64),
            )

    def _apply_results(self, rank: int, pending_moves, pending_binds) -> None:
        """Source side of tiebreak wave 2: erase movers that won a ghost
        voxel; hold binders that won a ghost epithelial cell."""
        block = self.blocks[rank]
        for gids in self._won_moves[rank]:
            idx, _ = self._locate(rank, gids)
            block.tcell[idx] = 0
            block.tcell_tissue_time[idx] = 0
            block.tcell_bound_time[idx] = 0
        self._won_moves[rank] = []
        for gids in self._won_binds[rank]:
            idx, _ = self._locate(rank, gids)
            block.tcell_bound_time[idx] = self.params.tcell_binding_period
        self._won_binds[rank] = []

    # -- driver -----------------------------------------------------------------------

    def run(self, num_steps: int | None = None) -> TimeSeries:
        n = num_steps if num_steps is not None else self.params.num_steps
        for _ in range(n):
            self.step()
        return self.series

    def gather_epi_state(self) -> np.ndarray:
        """Assembled global epithelial state (test/IO helper)."""
        return self.exchanger.gather_global([b.epi_state for b in self.blocks])

    def gather_field(self, name: str) -> np.ndarray:
        return self.exchanger.gather_global([getattr(b, name) for b in self.blocks])
