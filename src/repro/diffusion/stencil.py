"""Von Neumann stencil diffusion kernels (2D and 3D).

Three entry points serve the three implementations:

- :func:`diffuse_global` — whole-grid update for the sequential reference;
- :func:`diffuse_padded` — interior update of a ghost-padded local array
  (CPU ranks / GPU devices after a halo exchange);
- :func:`diffuse_region` — update of one tile's sub-region of a padded
  array (the memory-tiled GPU kernels, §3.2).
"""

from __future__ import annotations

import numpy as np

from repro.grid.box import Box


def _shifted(sl: tuple[slice, ...], axis: int, delta: int) -> tuple[slice, ...]:
    """Shift one axis of a slice tuple by ``delta`` (slices must be bounded)."""
    out = list(sl)
    s = sl[axis]
    out[axis] = slice(s.start + delta, s.stop + delta)
    return tuple(out)


def diffuse_region(
    src: np.ndarray,
    dst: np.ndarray,
    region: tuple[slice, ...],
    rate,
    spatial_ndim: int | None = None,
) -> None:
    """Write the diffusion update of ``src`` over ``region`` into ``dst``.

    ``region`` indexes the *padded* arrays and must not touch the outer
    ghost ring (neighbors are read at distance 1).  ``src`` and ``dst``
    must be distinct buffers (Jacobi update, as on the GPU).

    ``spatial_ndim`` names how many *trailing* axes are spatial; leading
    axes (an ensemble batch) carry independent grids and are not diffused
    across.  ``rate`` may be an array broadcastable against the region
    (per-member rates shaped ``(B, 1, ..., 1)``).
    """
    if src is dst:
        raise ValueError("diffuse_region requires distinct src/dst buffers")
    ndim = src.ndim if spatial_ndim is None else int(spatial_ndim)
    if not 1 <= ndim <= src.ndim:
        raise ValueError(f"spatial_ndim {ndim} out of range for {src.ndim}-d array")
    axis0 = src.ndim - ndim
    core = src[region]
    # First-pair initialization instead of zeros_like keeps this kernel
    # array-library-agnostic (no library-specific allocator needed).  Field
    # values are non-negative, so dropping the leading `0 +` is bitwise
    # neutral.
    nb_sum = src[_shifted(region, axis0, +1)] + src[_shifted(region, axis0, -1)]
    for axis in range(axis0 + 1, src.ndim):
        nb_sum += src[_shifted(region, axis, +1)]
        nb_sum += src[_shifted(region, axis, -1)]
    k = 2 * ndim
    dst[region] = core + (rate / k) * (nb_sum - k * core)


def split_interior_boundary(
    region: tuple[slice, ...],
    shape: tuple[int, ...],
    ghost: int = 1,
) -> tuple[tuple[slice, ...] | None, list[tuple[slice, ...]]]:
    """Split ``region`` into a stencil-safe interior core plus boundary slabs.

    The *interior* is the part of ``region`` whose ±``ghost`` neighborhood
    stays inside the non-ghost cells of a padded array of ``shape`` — it
    can be computed before a halo pull lands, because its stencil never
    reads a ghost cell.  The *boundary slabs* are the disjoint remainder
    (up to ``2 * ndim`` axis-aligned slabs) that must wait for fresh
    ghosts.  Together they tile ``region`` exactly, so running a kernel
    over interior-then-slabs is element-for-element the same work as one
    monolithic call — the sopht-mpi overlap decomposition.

    Returns ``(interior, slabs)`` where ``interior`` is ``None`` when the
    region is too thin to have a safe core (blocks thinner than twice the
    halo width end up all-boundary).
    """
    core = tuple(
        slice(2 * ghost, n - 2 * ghost) for n in shape[-len(region):]
    )
    slabs: list[tuple[slice, ...]] = []
    rem = list(region)
    for ax in range(len(region)):
        r, c = rem[ax], core[ax]
        lo_stop = min(r.stop, c.start)
        if r.start < lo_stop:
            slab = list(rem)
            slab[ax] = slice(r.start, lo_stop)
            slabs.append(tuple(slab))
        hi_start = max(r.start, c.stop)
        if hi_start < r.stop:
            slab = list(rem)
            slab[ax] = slice(hi_start, r.stop)
            slabs.append(tuple(slab))
        lo, hi = max(r.start, c.start), min(r.stop, c.stop)
        if lo >= hi:
            return None, slabs
        rem[ax] = slice(lo, hi)
    return tuple(rem), slabs


def diffuse_padded(padded: np.ndarray, rate: float) -> np.ndarray:
    """Diffusion update of a ghost-padded array's interior; returns a new
    interior array (ghosts must already hold correct neighbor values)."""
    interior = tuple(slice(1, s - 1) for s in padded.shape)
    out = np.empty_like(padded)
    diffuse_region(padded, out, interior, rate)
    return out[interior].copy()


def mirror_pad(field: np.ndarray) -> np.ndarray:
    """Pad by one cell with edge replication — the no-flux boundary."""
    return np.pad(field, 1, mode="edge")


def diffuse_global(field: np.ndarray, rate: float) -> np.ndarray:
    """Whole-domain diffusion step with no-flux boundaries."""
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"diffusion rate must be in [0, 1], got {rate}")
    return diffuse_padded(mirror_pad(field), rate)


def decay_field(field: np.ndarray, rate) -> None:
    """In-place exponential decay: c *= (1 - rate).

    ``rate`` may be an array of per-member rates broadcastable against
    ``field`` (shape ``(B, 1, ..., 1)``).
    """
    if not bool(np.min(rate) >= 0.0) or not bool(np.max(rate) <= 1.0):
        raise ValueError(f"decay rate must be in [0, 1], got {rate}")
    field *= 1.0 - rate


def mirror_out_of_domain(
    arr: np.ndarray, owned: Box, domain: Box, ghost: int = 1
) -> None:
    """Fill ghost cells that fall *outside the global domain* with the
    nearest owned value (no-flux boundary for subdomain arrays).

    Ghost cells inside the domain are the neighbor ranks' responsibility
    (halo exchange) and are left untouched.

    ``arr`` may carry leading non-spatial axes (an ensemble batch); only
    the trailing ``len(owned.lo)`` axes are treated as spatial.
    """
    offset = arr.ndim - len(owned.lo)
    if offset < 0:
        raise ValueError(
            f"array rank {arr.ndim} below spatial rank {len(owned.lo)}"
        )
    for axis in range(len(owned.lo)):
        ax = axis + offset
        if owned.lo[axis] == domain.lo[axis]:
            lo_edge = [slice(None)] * arr.ndim
            lo_src = [slice(None)] * arr.ndim
            lo_edge[ax] = slice(0, ghost)
            lo_src[ax] = slice(ghost, ghost + 1)
            arr[tuple(lo_edge)] = arr[tuple(lo_src)]
        if owned.hi[axis] == domain.hi[axis]:
            hi_edge = [slice(None)] * arr.ndim
            hi_src = [slice(None)] * arr.ndim
            hi_edge[ax] = slice(arr.shape[ax] - ghost, arr.shape[ax])
            hi_src[ax] = slice(arr.shape[ax] - ghost - 1, arr.shape[ax] - ghost)
            arr[tuple(hi_edge)] = arr[tuple(hi_src)]
