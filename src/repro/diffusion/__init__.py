"""Explicit stencil diffusion for SIMCoV's concentration fields.

The virus and the inflammatory signal are continuous quantities that
diffuse through the voxel grid (paper §2.2) with parameterized rates and
decay.  The scheme is the flux-form explicit update

    c'(v) = c(v) + (D / 2d) * sum_{n in VN(v)} (c(n) - c(v)),

followed by exponential decay.  Pairwise fluxes are antisymmetric, so mass
is conserved exactly (up to float rounding); domain boundaries are
no-flux (mirror).  Stability requires 0 <= D <= 1.
"""

from repro.diffusion.stencil import (
    diffuse_global,
    diffuse_padded,
    diffuse_region,
    mirror_pad,
    mirror_out_of_domain,
    decay_field,
)

__all__ = [
    "diffuse_global",
    "diffuse_padded",
    "diffuse_region",
    "mirror_pad",
    "mirror_out_of_domain",
    "decay_field",
]
