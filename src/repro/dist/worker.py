"""The per-rank worker process of the distributed runtime.

Each worker owns one subdomain: its :class:`~repro.core.state.VoxelBlock`
and :class:`~repro.core.kernels.IntentArrays` fields are views into its
shared-memory segment, and the segments of its halo neighbors are mapped
read-mostly, so every exchange phase is a direct strip copy between
address spaces — no serialization, no message queue.

The worker executes the same declarative :func:`dist_schedule` the
coordinator validates, in lock step with its peers via the control
segment's phase barriers (see :mod:`repro.dist.control`).  The schedule
is the GPU backend's single-wave §3.1 tiebreak (REPLACE intents + MAX
bids at ``tiebreak_exchange``; ``result_exchange`` is a structural no-op)
combined with the PGAS backend's start-of-step ghost refresh, which
feeds the per-rank every-step :class:`~repro.engine.activity.ActivityGate`.

Barrier placement per step (W = workers-only phase barrier, S = the
step barrier shared with the coordinator) — the *fused* 6-barrier
protocol (4 phase + 2 step; the seed protocol used 8)::

       open pulls        gated ghost pulls in the quiescent window
                         (peers parked; previous step's fields final)
    S  step start        coordinator published (step, pool); the barrier
                         itself is the open wave's exit fence
       age_extravasate   gate refresh + publish activity box + kernels
       boundary_exchange clear intents + INTERIOR intents pass (no ghost
    W                    reads), then (peers done mutating) gated T-cell
                         strip pulls
       intents           BOUNDARY-band intents pass (fresh ghosts)
    W  tiebreak_exchange (intents done) ──► gated REPLACE pulls + merge
                         MAX bids into *private* buffers (raw bid arrays
                         are never mutated after intents, so no
                         snapshot fence is needed)
       resolve / epithelial
    W  concentration_exchange (production done) ──► gated pulls, then
                         mirror + INTERIOR diffuse into scratch  ──►  W
       diffuse           BOUNDARY-band diffuse + commit, publish results
    S  step end          coordinator reduces statistics

Unlabeled edges need no barrier: a reader that advances past its copy
only mutates the copied fields after a later barrier that the writer
must also have passed (verified per wave in DESIGN.md §4a).  The open
wave's pulls run *before* the step-start barrier: every peer is parked
there too, so its previous-step fields are final, and no peer can
mutate them until this worker arrives — the step-start barrier doubles
as the copies-done fence that used to cost a dedicated phase barrier.
Pulls are gated per strip by the activity boxes peers publish in the
control segment (see ``_pull_state_wave``); a checkpoint restore bumps
``dirty_epoch`` and forces one full re-pull + resync fence.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.dist.control import (
    CMD_STEP,
    RES_ACTIVE,
    RES_BINDS,
    RES_EXTRAVASATIONS,
    RES_MOVES,
    SHUTDOWN_STEP,
    STATUS_ERROR,
    STRIPS_PULLED,
    STRIPS_SKIPPED,
    ControlBlock,
    DistAborted,
    ShmBarrier,
    control_layout,
)
from repro.dist.shm import ShmSegment, block_layout
from repro.diffusion.stencil import split_interior_boundary
from repro.engine.activity import ActivityGate
from repro.engine.metrics import PhaseMetrics
from repro.engine.phases import FieldSet, Phase, PhaseKind, exchange, kernel
from repro.grid.box import Box
from repro.grid.halo import MergeMode, RankPullPlan, strip_live
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG
from repro.telemetry.shmring import RingCodec, ShmRingSink
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Start-of-step ghost refresh: activity-gate + bind-stencil inputs (the
#: PGAS open wave).  ``epi_state`` is not mutated again before ``intents``
#: reads its ghosts, so it rides here instead of in the boundary wave.
OPEN_FIELDS = ("epi_state", "virions", "chemokine", "tcell")
#: Post-extravasation occupancy + move payload (the GPU wave A remainder).
BOUNDARY_FIELDS = ("tcell", "tcell_tissue_time", "tcell_bound_time")
#: Post-production concentrations (wave C).
CONCENTRATION_FIELDS = ("virions", "chemokine")


def dist_schedule() -> tuple[Phase, ...]:
    """The multi-process schedule: PGAS-style open wave + GPU-style
    single-wave tiebreak, no tile_sweep (gating is every-step refresh)."""
    return (
        exchange(
            "open_exchange",
            FieldSet("state", OPEN_FIELDS, MergeMode.REPLACE),
            doc="start-of-step ghost strips: gate + bind-stencil input",
        ),
        kernel("age_extravasate"),
        exchange(
            "boundary_exchange",
            FieldSet("state", BOUNDARY_FIELDS, MergeMode.REPLACE),
            doc="post-extravasation occupancy + move payload",
        ),
        kernel("intents"),
        exchange(
            "tiebreak_exchange",
            FieldSet(
                "intent", kernels.IntentArrays.REPLACE_FIELDS, MergeMode.REPLACE
            ),
            FieldSet("intent", kernels.IntentArrays.MAX_FIELDS, MergeMode.MAX),
            doc="the single tiebreak wave of §3.1 (pull + private max-merge)",
        ),
        kernel("resolve"),
        exchange("result_exchange", doc="no-op: single-wave tiebreak"),
        kernel("apply_results", doc="no-op: winners resolved locally"),
        kernel("epithelial"),
        exchange(
            "concentration_exchange",
            FieldSet("state", CONCENTRATION_FIELDS, MergeMode.REPLACE),
            doc="post-production concentration strips",
        ),
        kernel("diffuse"),
        kernel("reduce", doc="publish per-rank totals; coordinator reduces"),
    )


def telemetry_name_table(phase_names) -> tuple[str, ...]:
    """The shared ``"cat:name"`` interning table for the telemetry rings.

    Both the coordinator and every worker derive this tuple from the
    phase-name list they already agree on, so ring records can carry a
    small integer instead of a string (see
    :mod:`repro.telemetry.shmring`).  Order is the id assignment — append
    only.
    """
    names = [f"phase:{n}" for n in phase_names]
    names += [f"barrier:{n}" for n in phase_names]
    names += ["barrier:step_start", "barrier:step_end"]
    names += ["comm:halo_bytes", "counter:bids_won", "counter:bids_lost"]
    names += ["gating:active_voxels", "step:step"]
    names += ["comm:strips_pulled", "comm:strips_skipped", "barrier:resync"]
    return tuple(names)


#: The fault-injection vocabulary (see :class:`FaultSpec`).
FAULT_MODES = ("stall", "die", "error", "slow", "freeze_heartbeat")


@dataclass(frozen=True)
class FaultSpec:
    """Fault injection for robustness/recovery tests.

    At the start of ``phase`` in ``step``, rank ``rank`` misbehaves
    according to ``mode``:

    - ``"stall"`` — stop making progress until aborted (trips the
      coordinator's barrier timeout; status/heartbeat stay frozen);
    - ``"die"`` — hard exit (``os._exit(13)``, no teardown), surfaced by
      the coordinator's liveness poll;
    - ``"error"`` — raise inside the phase; the worker marks its error
      status, flips the abort flag and exits nonzero;
    - ``"slow"`` — a straggler, not a failure: sleep ``delay`` seconds at
      this phase on *every* step >= ``step`` (the run still completes);
    - ``"freeze_heartbeat"`` — from (step, phase) on, keep computing but
      stop refreshing the heartbeat, so liveness gauges age while the
      run stays healthy.

    ``repeat`` is read by the resilient supervisor
    (:mod:`repro.dist.resilient`): the fault is re-injected into the
    first ``repeat - 1`` respawned runtimes, so multi-restart and
    restart-exhaustion paths are testable deterministically.
    """

    rank: int
    step: int
    phase: str
    mode: str  # one of FAULT_MODES
    #: Seconds a "slow" rank sleeps per affected phase.
    delay: float = 0.05
    #: How many runtime incarnations the fault fires in (supervisor-read).
    repeat: int = 1

    def __post_init__(self):
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs, picklable for any start method."""

    rank: int
    nranks: int
    params: SimCovParams
    seed: int
    boxes: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]
    plan: RankPullPlan
    segment_names: tuple[str, ...]
    ctrl_name: str
    phase_names: tuple[str, ...]
    active_gating: bool = True
    barrier_timeout: float = 60.0
    fault: FaultSpec | None = None
    #: Per-rank telemetry-ring record capacity; 0 = tracing off.
    telemetry_capacity: int = 0
    #: Coordinator-side ``dirty_epoch`` snapshot at spawn time.  Workers
    #: must agree on the baseline (reading the live counter at attach
    #: time races a coordinator restore, desynchronizing the resync
    #: fence), and only the coordinator can snapshot it consistently.
    dirty_epoch: int = 0


class InjectedFault(RuntimeError):
    """Raised by the ``error`` fault mode — a real failure to the
    runtime, but not worth a traceback dump in test logs."""


def worker_main(spec: WorkerSpec) -> None:
    """Process entry point: run the step loop until shutdown or abort."""
    worker = None
    try:
        worker = _RankWorker(spec)
        worker.run()
        code = 0
    except DistAborted:
        code = 0
    except BaseException as err:
        if not isinstance(err, InjectedFault):
            import traceback

            traceback.print_exc()
        if worker is not None and worker.ctrl is not None:
            worker.ctrl.status[spec.rank, STATUS_ERROR] = 1
            worker.ctrl.abort()
        code = 1
    finally:
        if worker is not None:
            worker.close()
    # Skip atexit/GC teardown races on the interpreter's way out — all
    # segments are already closed and the parent owns unlinking.
    os._exit(code)


class _TiebreakView:
    """The intent view ``resolve`` reads: REPLACE fields straight from the
    shared raw arrays, MAX bid fields from this rank's private merged
    buffers.  Duck-types the :class:`~repro.core.kernels.IntentArrays`
    surface the resolve kernels touch."""

    __slots__ = ("move_dir", "bind_dir", "bid_self", "move_bid", "bind_bid")

    def __init__(self, raw, merged_move_bid, merged_bind_bid):
        self.move_dir = raw.move_dir
        self.bind_dir = raw.bind_dir
        self.bid_self = raw.bid_self
        self.move_bid = merged_move_bid
        self.bind_bid = merged_bind_bid


class _RankWorker:
    """One rank's state + step loop."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.rank = spec.rank
        self.params = spec.params
        self.rng = VoxelRNG(spec.seed)
        self.grid = GridSpec(spec.params.dim)
        self.plan = spec.plan
        self.schedule = dist_schedule()
        assert tuple(p.name for p in self.schedule) == spec.phase_names
        self.metrics = PhaseMetrics()
        self.ctrl: ControlBlock | None = None
        self._segments: list[ShmSegment] = []

        boxes = [Box(lo, hi) for lo, hi in spec.boxes]
        # Attach the control segment and the data segments of self + every
        # halo neighbor; build zero-copy views.
        ctrl_seg = ShmSegment.attach(
            spec.ctrl_name,
            control_layout(
                spec.nranks, len(spec.phase_names), spec.telemetry_capacity
            ),
        )
        self._segments.append(ctrl_seg)
        self.ctrl = ControlBlock(ctrl_seg, spec.nranks, spec.phase_names)
        if spec.telemetry_capacity > 0:
            codec = RingCodec(telemetry_name_table(spec.phase_names))
            self.tracer = Tracer(
                rank=self.rank,
                backend="dist",
                sinks=[
                    ShmRingSink(
                        self.ctrl.tel_data[self.rank],
                        self.ctrl.tel_count[self.rank : self.rank + 1],
                        self.ctrl.tel_dropped[self.rank : self.rank + 1],
                        codec,
                    )
                ],
            )
        else:
            self.tracer = NULL_TRACER
        #: Step currently executing (stamped on barrier/comm events
        #: emitted from helpers that don't receive the step).
        self._step = 0
        self.arrays: dict[int, dict[str, np.ndarray]] = {}
        for r in {self.rank, *self.plan.neighbor_ranks}:
            shape = tuple(s + 2 for s in boxes[r].shape)
            seg = ShmSegment.attach(spec.segment_names[r], block_layout(shape))
            self._segments.append(seg)
            self.arrays[r] = seg.arrays
        mine = self.arrays[self.rank]
        # The coordinator created + initialized (zero, tissue, seeds) the
        # field storage, so adopt it as-is; intents are worker scratch and
        # start at their sentinels.
        self.block = VoxelBlock.from_arrays(
            self.grid, boxes[self.rank], mine, ghost=1, fresh=False
        )
        self.intents = kernels.IntentArrays.from_arrays(
            {
                name: mine[f"intent_{name}"]
                for name in kernels.IntentArrays.FIELD_DTYPES
            },
            fresh=True,
        )
        self.gate = ActivityGate(
            self.block,
            spec.params.min_chemokine,
            sweep_period=1,
            enabled=spec.active_gating,
        )
        self._scratch_v = np.zeros_like(self.block.virions)
        self._scratch_c = np.zeros_like(self.block.chemokine)
        # -- activity-gated exchange state ---------------------------------
        #: Global boxes of the REPLACE routes (liveness tests are box math).
        self._route_boxes = [r.region for r in self.plan.replace]
        nroutes = len(self.plan.replace)
        #: Per-(wave, route) staleness: True = the source has written inside
        #: the route since this wave last pulled it.  Everything starts
        #: dirty so the first step always pulls.
        self._dirty_open = [True] * nroutes
        self._dirty_bnd = [True] * nroutes
        self._dirty_conc = [True] * nroutes
        #: Ghost-invalidation epoch last honored (checkpoint restores bump
        #: the shared counter; see _resync).
        self._seen_epoch = int(spec.dirty_epoch)
        #: Stash of the pre-step open pulls: (seconds, bytes, pulled,
        #: skipped).  Ring-write discipline defers its telemetry to the
        #: open_exchange phase body, after the step-start barrier.
        self._pending_open = None
        # -- fused tiebreak (no snapshot fence) ----------------------------
        # Raw MAX bid arrays are never mutated after the intents phase;
        # each rank max-merges neighbor strips into private buffers and
        # resolves against this view, eliminating the mid-wave barrier.
        if self.plan.max_merge:
            self._merged_move_bid = np.zeros_like(self.intents.move_bid)
            self._merged_bind_bid = np.zeros_like(self.intents.bind_bid)
            self._resolve_intents = _TiebreakView(
                self.intents, self._merged_move_bid, self._merged_bind_bid
            )
        else:  # single rank: nothing to merge, resolve reads the raw arrays
            self._merged_move_bid = self._merged_bind_bid = None
            self._resolve_intents = self.intents
        #: Boundary-band work deferred by the overlapped interior passes.
        self._intents_boundary: list | None = None
        self._diffuse_boundary: list | None = None
        # -- per-step accounting -------------------------------------------
        self._phase_index = {n: i for i, n in enumerate(spec.phase_names)}
        #: Barrier-wait seconds per phase + [step_start, step_end].
        self._wait = np.zeros(len(spec.phase_names) + 2)
        self._extra_seconds = 0.0
        self._pulled_step = 0
        self._skipped_step = 0
        self.step_bar = ShmBarrier(
            self.ctrl.step_bar, self.rank, self.ctrl, label="step barrier"
        )
        self.phase_bar = ShmBarrier(
            self.ctrl.phase_bar, self.rank, self.ctrl, label="phase barrier"
        )
        # Let the coordinator win every timeout-reporting race: workers
        # blocked on a stalled peer must outlast the coordinator's wait.
        self.timeout = spec.barrier_timeout * 2 + 5.0
        # Per-step counters.
        self._extr = 0
        self._moves = 0
        self._binds = 0
        self._active = 0
        #: Cleared by the freeze_heartbeat fault: status keeps updating
        #: but the liveness timestamp goes stale.
        self._heartbeat_on = True

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> None:
        hb = lambda: self.ctrl.set_status(
            self.rank,
            int(self.ctrl.status[self.rank, 0]),
            int(self.ctrl.status[self.rank, 1]),
            heartbeat=self._heartbeat_on,
        )
        pending_end = None  # (start, dur, step) of the last step-end wait
        nphases = len(self.spec.phase_names)
        while True:
            # Open-wave ghost pulls run here, in the quiescent window:
            # every peer is parked at this same barrier, so its fields are
            # final, and none can mutate them until this worker arrives.
            # No ring writes in this window (the coordinator is draining).
            self._early_open_pull()
            t0 = perf_counter()
            self.step_bar.wait(self.timeout, heartbeat=hb)
            t1 = perf_counter()
            self._wait[nphases] += t1 - t0
            step = int(self.ctrl.command[CMD_STEP])
            if step == SHUTDOWN_STEP:
                return
            if self.tracer:
                # Ring-write discipline: the coordinator drains the rings
                # between the step-end barrier and the next step-start
                # release, so nothing may be written in that window — the
                # step-end wait span is therefore emitted one step late,
                # here, right after the start barrier proves the drain is
                # over.
                if pending_end is not None:
                    self.tracer.emit_span(
                        "step_end", pending_end[0], pending_end[1],
                        cat="barrier", step=pending_end[2],
                    )
                self.tracer.emit_span(
                    "step_start", t0, t1 - t0, cat="barrier", step=step
                )
            self._pulled_step = self._skipped_step = 0
            epoch = int(self.ctrl.dirty_epoch[0])
            if epoch != self._seen_epoch:
                self._seen_epoch = epoch
                self._resync(step)
            self._run_step(step, float(self.ctrl.pool[0]))
            t2 = perf_counter()
            self.step_bar.wait(self.timeout, heartbeat=hb)
            dur = perf_counter() - t2
            self._wait[nphases + 1] += dur
            pending_end = (t2, dur, step)

    def close(self) -> None:
        for seg in self._segments:
            seg.close()
        self._segments.clear()

    # -- one step ------------------------------------------------------------

    def _run_step(self, step: int, pool: float) -> None:
        # Recompute the global attempt schedule locally: it is a pure
        # function of (seed, step, pool), all of which the coordinator
        # published, so every rank derives the identical arrays.
        attempts = kernels.extravasation_attempts(
            self.params, self.rng, step, pool
        )
        self._extr = self._moves = self._binds = 0
        self._step = step
        step_start = perf_counter()
        for index, phase in enumerate(self.schedule):
            self.ctrl.set_status(
                self.rank, step, index, heartbeat=self._heartbeat_on
            )
            self._maybe_fault(step, phase.name)
            start = perf_counter()
            ran = self._execute(phase, step, attempts)
            # Work done outside the phase loop on this phase's behalf
            # (the pre-step open pulls, a resync) is charged here.
            elapsed = perf_counter() - start + self._extra_seconds
            self._extra_seconds = 0.0
            skipped = ran is False
            self.metrics.record(phase.name, elapsed, skipped=skipped)
            if self.tracer:
                self.tracer.emit_span(
                    phase.name, start, elapsed, cat="phase", step=step,
                    skipped=skipped,
                )
        if self.tracer:
            self.tracer.emit_span(
                "step", step_start, perf_counter() - step_start,
                cat="step", step=step,
            )
        self._publish(step)

    def _execute(self, phase: Phase, step: int, attempts):
        if phase.kind is PhaseKind.EXCHANGE:
            return self._exchange(phase)
        handler = getattr(self, f"phase_{phase.name}", None)
        if handler is None:
            return False
        return handler(step, attempts)

    def _maybe_fault(self, step: int, phase_name: str) -> None:
        fault = self.spec.fault
        if (
            fault is None
            or fault.rank != self.rank
            or fault.phase != phase_name
        ):
            return
        if fault.mode == "slow":
            # A straggler: late every affected step, but never failing.
            if step >= fault.step:
                time.sleep(fault.delay)
            return
        if step != fault.step and fault.mode != "freeze_heartbeat":
            return
        if fault.mode == "freeze_heartbeat":
            if step >= fault.step:
                self._heartbeat_on = False
            return
        if fault.mode == "die":
            os._exit(13)
        if fault.mode == "error":
            raise InjectedFault(
                f"injected fault: rank {self.rank} errored in "
                f"{phase_name!r} at step {step}"
            )
        while not self.ctrl.aborted:  # stall (status stays frozen here)
            time.sleep(0.005)
        raise DistAborted(f"aborted while stalled in {phase_name!r}")

    def _publish(self, step: int) -> None:
        """Per-step totals + cumulative metrics, read by the coordinator
        after the step-end barrier."""
        row = self.ctrl.results[self.rank]
        row[RES_EXTRAVASATIONS] = self._extr
        row[RES_MOVES] = self._moves
        row[RES_BINDS] = self._binds
        row[RES_ACTIVE] = self._active
        for i, name in enumerate(self.spec.phase_names):
            self.ctrl.metrics_seconds[self.rank, i] = self.metrics.seconds.get(name, 0.0)
            self.ctrl.metrics_calls[self.rank, i] = self.metrics.calls.get(name, 0)
            self.ctrl.metrics_skips[self.rank, i] = self.metrics.skips.get(name, 0)
        self.ctrl.metrics_wait[self.rank] = self._wait
        self.ctrl.strips[self.rank, STRIPS_PULLED] += self._pulled_step
        self.ctrl.strips[self.rank, STRIPS_SKIPPED] += self._skipped_step
        if self.tracer and (self._pulled_step or self._skipped_step):
            self.tracer.counter(
                "strips_pulled", self._pulled_step, cat="comm", step=step
            )
            self.tracer.counter(
                "strips_skipped", self._skipped_step, cat="comm", step=step
            )

    # -- exchange phases -----------------------------------------------------

    def _phase_barrier(self, name: str) -> None:
        """One phase-barrier wait, timed as a ``cat="barrier"`` span and
        charged to the owning phase's wait column."""
        start = perf_counter()
        self.phase_bar.wait(self.timeout)
        dur = perf_counter() - start
        idx = self._phase_index.get(name)
        if idx is None:  # the resync fence is charged to the open wave
            idx = self._phase_index["open_exchange"]
        self._wait[idx] += dur
        if self.tracer:
            self.tracer.emit_span(
                name, start, dur, cat="barrier", step=self._step
            )

    def _exchange(self, phase: Phase):
        if not phase.exchanges:
            return False
        if phase.name == "open_exchange":
            return self._open_exchange(phase)
        if phase.name == "boundary_exchange":
            return self._boundary_exchange(phase)
        if phase.name == "tiebreak_exchange":
            return self._tiebreak_exchange(phase)
        return self._concentration_exchange(phase)

    def _keys(self, fs: FieldSet) -> list[str]:
        prefix = "intent_" if fs.scope == "intent" else ""
        return [prefix + name for name in fs.fields]

    # -- copy primitives ----------------------------------------------------

    def _copy_route(self, route, keys) -> int:
        """Copy one route's full strip for ``keys``; returns bytes moved."""
        src = self.arrays[route.src]
        mine = self.arrays[self.rank]
        ssl = self.plan.src_slices(route)
        dsl = self.plan.dst_slices(route)
        nbytes = 0
        for key in keys:
            strip = src[key][ssl]
            mine[key][dsl] = strip
            nbytes += strip.nbytes
        return nbytes

    def _copy_box(self, src_rank: int, box: Box, keys) -> int:
        """Copy an arbitrary global sub-box from ``src_rank`` (the cropped
        tiebreak pulls); returns bytes moved."""
        src = self.arrays[src_rank]
        mine = self.arrays[self.rank]
        ssl = box.slices_from(self.plan.origins[src_rank])
        dsl = box.slices_from(self.plan.origins[self.rank])
        nbytes = 0
        for key in keys:
            strip = src[key][ssl]
            mine[key][dsl] = strip
            nbytes += strip.nbytes
        return nbytes

    # -- the gated waves ----------------------------------------------------

    def _early_open_pull(self) -> None:
        """Gated open-wave ghost pulls in the pre-step quiescent window.

        Every peer is parked at the step-start barrier, so its previous-
        step fields are final and stay frozen until this worker arrives —
        the barrier itself is the copies-done fence.  Liveness is judged
        against the regions peers published *last* step (exactly the box
        their writes since our previous pull were confined to).  No ring
        writes here (the coordinator is draining); telemetry is stashed
        and accounted in the open_exchange phase body.
        """
        if not self.plan.replace:
            self._pending_open = (0.0, 0, 0, 0)
            return
        start = perf_counter()
        ndim = len(self.plan.origins[self.rank])
        keys = list(OPEN_FIELDS)
        nbytes = pulled = skipped = 0
        for i, route in enumerate(self.plan.replace):
            if strip_live(
                self._route_boxes[i], self.ctrl.read_region(route.src, ndim)
            ):
                self._dirty_open[i] = True
                self._dirty_bnd[i] = True
                self._dirty_conc[i] = True
            if self._dirty_open[i]:
                nbytes += self._copy_route(route, keys)
                pulled += 1
                # OPEN_FIELDS covers the concentration fields, so the conc
                # wave's view of this strip is fresh too; the tissue/bound
                # times are *not* in the open wave, so the boundary wave
                # stays dirty until it pulls them itself.
                self._dirty_open[i] = False
                self._dirty_conc[i] = False
            else:
                skipped += 1
        self._pending_open = (perf_counter() - start, nbytes, pulled, skipped)

    def _open_exchange(self, phase: Phase):
        """Account the pre-step pulls (see :meth:`_early_open_pull`): the
        copies themselves already ran in the quiescent window."""
        seconds, nbytes, pulled, skipped = self._pending_open
        self._pending_open = None
        self._extra_seconds += seconds
        self._pulled_step += pulled
        self._skipped_step += skipped
        if self.tracer and nbytes:
            self.tracer.counter(
                "halo_bytes", nbytes, cat="comm", step=self._step,
                phase=phase.name,
            )
        return pulled > 0

    def _pull_state_wave(self, phase: Phase, dirty) -> bool:
        """One gated in-step REPLACE wave: a strip is pulled iff it was
        left dirty by an earlier wave or the source's *current* activity
        box touches it; pulling cleans it."""
        keys = [k for fs in phase.exchanges for k in self._keys(fs)]
        ndim = len(self.plan.origins[self.rank])
        nbytes = pulled = skipped = 0
        for i, route in enumerate(self.plan.replace):
            if strip_live(
                self._route_boxes[i], self.ctrl.read_region(route.src, ndim)
            ):
                dirty[i] = True
            if dirty[i]:
                nbytes += self._copy_route(route, keys)
                dirty[i] = False
                pulled += 1
            else:
                skipped += 1
        self._pulled_step += pulled
        self._skipped_step += skipped
        if self.tracer and nbytes:
            self.tracer.counter(
                "halo_bytes", nbytes, cat="comm", step=self._step,
                phase=phase.name,
            )
        return pulled > 0

    def _boundary_exchange(self, phase: Phase):
        """Overlap: clear intents and run the *interior* intents pass —
        whose stencil never leaves this rank's non-ghost cells — before
        fencing on peers, then pull the T-cell strips the boundary band
        needs.  The full clear (not a dirty-slab fast path) is required:
        tiebreak copies write ghost strips behind IntentArrays' tracking,
        and a stale merged bid anywhere would leak into every neighbor's
        next merge."""
        self.intents.clear()
        region = self.gate.region()
        interior = None
        if region is None:
            self._intents_boundary = None
        else:
            interior, slabs = split_interior_boundary(
                region, self.block.virions.shape, self.block.ghost
            )
            if interior is None:
                # Too thin for a safe core: the whole region waits for
                # fresh ghosts (the slabs from a failed split don't tile).
                self._intents_boundary = [region]
            else:
                self._intents_boundary = slabs
                kernels.tcell_intents(
                    self.params, self.rng, self._step, self.block,
                    self.intents, interior,
                )
        # Entry barrier: peers are done mutating T-cell fields; the next
        # mutation (resolve) sits behind the tiebreak barrier, which every
        # reader passes first.
        self._phase_barrier(phase.name)
        ran = self._pull_state_wave(phase, self._dirty_bnd)
        return ran or interior is not None

    def _tiebreak_exchange(self, phase: Phase):
        """The single tiebreak wave: entry barrier (everyone's intents are
        final — raw arrays are never mutated after the intents phase),
        then gated REPLACE pulls of neighbor intents cropped to the
        one-voxel neighborhood resolve actually reads, then max-merge the
        bid strips into this rank's *private* buffers.  No exit fence:
        peers still copying read only raw arrays, whose next mutation
        (next step's clear) sits behind the concentration barriers."""
        self._phase_barrier(phase.name)
        nroutes = len(self.plan.replace) + len(self.plan.max_merge)
        my_box = self.gate.region_box()
        if my_box is None:
            # No resolve this step: no intent ghosts are read.  Peers pull
            # this rank's raw (fully cleared) arrays directly.
            self._skipped_step += nroutes
            return False
        read_box = my_box.expand(1)
        ndim = len(self.plan.origins[self.rank])
        rep_keys = [
            k
            for fs in phase.exchanges
            if fs.merge is MergeMode.REPLACE
            for k in self._keys(fs)
        ]
        nbytes = 0
        for route in self.plan.replace:
            box = route.region.intersect(read_box)
            if not box.is_empty and strip_live(
                box, self.ctrl.read_region(route.src, ndim), dilate=1
            ):
                nbytes += self._copy_box(route.src, box, rep_keys)
                self._pulled_step += 1
            else:
                self._skipped_step += 1
        nbytes += self._merge_max_bids(read_box, ndim)
        if self.tracer and nbytes:
            self.tracer.counter(
                "halo_bytes", nbytes, cat="comm", step=self._step,
                phase=phase.name,
            )
        return True

    def _merge_max_bids(self, read_box: Box, ndim: int) -> int:
        """Refresh the private merged-bid buffers: copy this rank's raw
        bids over the resolve read neighborhood, then max-merge every live
        neighbor strip (cropped to that neighborhood) on top.  Raw bid
        arrays — this rank's and every peer's — are left untouched, which
        is what makes the merge fence-free."""
        if self._merged_move_bid is None:
            return 0
        region = self.gate.region()
        shape = self._merged_move_bid.shape
        mr = tuple(
            slice(max(0, s.start - 1), min(n, s.stop + 1))
            for s, n in zip(region, shape)
        )
        self._merged_move_bid[mr] = self.intents.move_bid[mr]
        self._merged_bind_bid[mr] = self.intents.bind_bid[mr]
        merged = {
            "intent_move_bid": self._merged_move_bid,
            "intent_bind_bid": self._merged_bind_bid,
        }
        trace = bool(self.tracer)
        nbytes = 0
        won = lost = 0
        for route in self.plan.max_merge:
            box = route.region.intersect(read_box)
            if box.is_empty or not strip_live(
                box, self.ctrl.read_region(route.src, ndim), dilate=1
            ):
                self._skipped_step += 1
                continue
            ssl = box.slices_from(self.plan.origins[route.src])
            dsl = box.slices_from(self.plan.origins[self.rank])
            for key, buf in merged.items():
                payload = self.arrays[route.src][key][ssl]
                view = buf[dsl]
                if trace:
                    # A conflict is a boundary slot both sides bid on;
                    # this rank loses where the incoming bid beats its own.
                    contested = (payload > 0) & (view > 0)
                    lost_here = int((contested & (payload > view)).sum())
                    lost += lost_here
                    won += int(contested.sum()) - lost_here
                np.maximum(view, payload, out=view)
                nbytes += payload.nbytes
            self._pulled_step += 1
        if trace and (won or lost):
            self.tracer.counter("bids_won", won, step=self._step)
            self.tracer.counter("bids_lost", lost, step=self._step)
        return nbytes

    def _concentration_exchange(self, phase: Phase):
        """Entry barrier (production done everywhere), gated concentration
        pulls, then — overlapping any peer still copying — the no-flux
        mirror and the *interior* diffusion pass into scratch.  The exit
        barrier fences the copies from the diffuse phase's commit, which
        overwrites the owned strips peers read."""
        self._phase_barrier(phase.name)
        self._pull_state_wave(phase, self._dirty_conc)
        region = self.gate.region()
        if region is None:
            self._diffuse_boundary = None
        else:
            kernels.mirror_fields(self.block)
            interior, slabs = split_interior_boundary(
                region, self.block.virions.shape, self.block.ghost
            )
            if interior is None:
                self._diffuse_boundary = [region]
            else:
                self._diffuse_boundary = slabs
                kernels.concentration_update(
                    self.params, self.block, interior, self._scratch_v,
                    self._scratch_c,
                )
        self._phase_barrier(phase.name)
        return True

    def _resync(self, step: int) -> None:
        """Honor a ghost-invalidation epoch bump (checkpoint restore wrote
        fields behind the workers' backs): every strip may be stale, so
        re-pull every exchanged field unconditionally, then fence so no
        rank starts mutating restored state a peer is still copying.
        Every worker observes the same bump at the same step-start, so the
        extra phase-barrier epoch stays in lock step."""
        start = perf_counter()
        keys = sorted({*OPEN_FIELDS, *BOUNDARY_FIELDS, *CONCENTRATION_FIELDS})
        for i, route in enumerate(self.plan.replace):
            self._copy_route(route, keys)
            self._dirty_open[i] = False
            self._dirty_bnd[i] = False
            self._dirty_conc[i] = False
            self._pulled_step += 1
        self._phase_barrier("resync")
        self._extra_seconds += perf_counter() - start

    # -- kernel phases (mirror the PGAS backend's per-rank bodies) -----------

    def phase_age_extravasate(self, step: int, attempts):
        self.gate.refresh()
        # Strip-liveness handshake: peers gate their pulls on this box.
        # Published before this rank's boundary-entry barrier arrival, so
        # every in-step reader (fenced behind that barrier) sees it; the
        # next step's early pulls are fenced by step_end/step_start.
        self.ctrl.publish_region(self.rank, self.gate.region_box())
        self._active = self.gate.count
        if self.tracer:
            self.tracer.gauge(
                "active_voxels", self._active, cat="gating", step=step
            )
        region = self.gate.region()
        if region is None:
            return False
        kernels.tcell_age(self.block, region)
        # Attempts only succeed where signal >= min_chemokine, which the
        # freshly-refreshed region covers (same argument as PGAS).
        self._extr = kernels.apply_extravasation(
            self.params, self.block, attempts, region
        )

    def phase_intents(self, step: int, attempts):
        # The clear + interior pass already ran in the boundary_exchange
        # body (overlap); only the boundary band — which reads the freshly
        # pulled ghost strips — remains.  Bitwise-equal to the monolithic
        # pass: the slabs tile the region exactly, every draw is keyed by
        # (seed, stream, step, gid), and the bid scatter is a commutative
        # elementwise max.
        slabs = self._intents_boundary
        if not slabs:
            return False
        for slab in slabs:
            kernels.tcell_intents(
                self.params, self.rng, step, self.block, self.intents, slab
            )

    def phase_resolve(self, step: int, attempts):
        # Purely local: ghost intents + merged bids make the winner
        # computation identical on both sides of every boundary.  An idle
        # region is sound — any inbound mover was visible in this rank's
        # padded activity mask at refresh time.  Reads the tiebreak view
        # (raw REPLACE fields + private merged bids); raw arrays stay
        # untouched for peers still copying.
        region = self.gate.region()
        if region is None:
            return False
        self._moves = kernels.resolve_moves(
            self.block, self._resolve_intents, region
        )
        self._binds = kernels.resolve_binds(
            self.params, self.rng, step, self.block, self._resolve_intents,
            region,
        )

    def phase_apply_results(self, step: int, attempts):
        return False

    def phase_epithelial(self, step: int, attempts):
        region = self.gate.region()
        if region is None:
            return False
        kernels.epithelial_update(
            self.params, self.rng, step, self.block, region
        )
        kernels.production_update(self.params, self.block, region, step=step)

    def phase_diffuse(self, step: int, attempts):
        # The mirror + interior pass ran in the concentration_exchange
        # body (overlap); finish the boundary band against the fresh
        # ghosts, then commit the whole region from scratch — elementwise
        # identical to the monolithic update it replaces.
        region = self.gate.region()
        if region is None:
            return False
        for slab in self._diffuse_boundary:
            kernels.concentration_update(
                self.params, self.block, slab, self._scratch_v,
                self._scratch_c,
            )
        kernels.concentration_commit(
            self.params, self.block, [region], self._scratch_v,
            self._scratch_c, step=step,
        )

    def phase_reduce(self, step: int, attempts):
        # The coordinator owns the reduction; per-rank totals go out in
        # _publish after the phase loop.
        return None
