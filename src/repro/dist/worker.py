"""The per-rank worker process of the distributed runtime.

Each worker owns one subdomain: its :class:`~repro.core.state.VoxelBlock`
and :class:`~repro.core.kernels.IntentArrays` fields are views into its
shared-memory segment, and the segments of its halo neighbors are mapped
read-mostly, so every exchange phase is a direct strip copy between
address spaces — no serialization, no message queue.

The worker executes the same declarative :func:`dist_schedule` the
coordinator validates, in lock step with its peers via the control
segment's phase barriers (see :mod:`repro.dist.control`).  The schedule
is the GPU backend's single-wave §3.1 tiebreak (REPLACE intents + MAX
bids at ``tiebreak_exchange``; ``result_exchange`` is a structural no-op)
combined with the PGAS backend's start-of-step ghost refresh, which
feeds the per-rank every-step :class:`~repro.engine.activity.ActivityGate`.

Barrier placement per step (W = workers-only phase barrier, S = the
step barrier shared with the coordinator)::

    S  step start        coordinator published (step, pool)
       open_exchange     pull ghost strips          ──►  W  (copies done)
       age_extravasate   gate refresh + kernels
    W  boundary_exchange (peers done mutating)      ──►  pull T-cell strips
       intents
    W  tiebreak_exchange (intents done)  ──►  pull REPLACE strips +
                                              snapshot MAX strips
    W                    (snapshots done) ──►  apply MAX merges
       resolve / epithelial
    W  concentration_exchange (production done) ──► pull strips ──► W
       diffuse, publish per-step results
    S  step end          coordinator reduces statistics

The two unlabeled edges of each REPLACE wave need no barrier: a reader
that advances past its copy only mutates the copied fields after a later
barrier that the writer must also have passed (verified per phase in
DESIGN.md).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.dist.control import (
    CMD_STEP,
    RES_ACTIVE,
    RES_BINDS,
    RES_EXTRAVASATIONS,
    RES_MOVES,
    SHUTDOWN_STEP,
    STATUS_ERROR,
    ControlBlock,
    DistAborted,
    ShmBarrier,
    control_layout,
)
from repro.dist.shm import ShmSegment, block_layout
from repro.engine.activity import ActivityGate
from repro.engine.metrics import PhaseMetrics
from repro.engine.phases import FieldSet, Phase, PhaseKind, exchange, kernel
from repro.grid.box import Box
from repro.grid.halo import MergeMode, RankPullPlan
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG
from repro.telemetry.shmring import RingCodec, ShmRingSink
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Start-of-step ghost refresh: activity-gate + bind-stencil inputs (the
#: PGAS open wave).  ``epi_state`` is not mutated again before ``intents``
#: reads its ghosts, so it rides here instead of in the boundary wave.
OPEN_FIELDS = ("epi_state", "virions", "chemokine", "tcell")
#: Post-extravasation occupancy + move payload (the GPU wave A remainder).
BOUNDARY_FIELDS = ("tcell", "tcell_tissue_time", "tcell_bound_time")
#: Post-production concentrations (wave C).
CONCENTRATION_FIELDS = ("virions", "chemokine")


def dist_schedule() -> tuple[Phase, ...]:
    """The multi-process schedule: PGAS-style open wave + GPU-style
    single-wave tiebreak, no tile_sweep (gating is every-step refresh)."""
    return (
        exchange(
            "open_exchange",
            FieldSet("state", OPEN_FIELDS, MergeMode.REPLACE),
            doc="start-of-step ghost strips: gate + bind-stencil input",
        ),
        kernel("age_extravasate"),
        exchange(
            "boundary_exchange",
            FieldSet("state", BOUNDARY_FIELDS, MergeMode.REPLACE),
            doc="post-extravasation occupancy + move payload",
        ),
        kernel("intents"),
        exchange(
            "tiebreak_exchange",
            FieldSet(
                "intent", kernels.IntentArrays.REPLACE_FIELDS, MergeMode.REPLACE
            ),
            FieldSet("intent", kernels.IntentArrays.MAX_FIELDS, MergeMode.MAX),
            doc="the single tiebreak wave of §3.1 (snapshot, barrier, merge)",
        ),
        kernel("resolve"),
        exchange("result_exchange", doc="no-op: single-wave tiebreak"),
        kernel("apply_results", doc="no-op: winners resolved locally"),
        kernel("epithelial"),
        exchange(
            "concentration_exchange",
            FieldSet("state", CONCENTRATION_FIELDS, MergeMode.REPLACE),
            doc="post-production concentration strips",
        ),
        kernel("diffuse"),
        kernel("reduce", doc="publish per-rank totals; coordinator reduces"),
    )


def telemetry_name_table(phase_names) -> tuple[str, ...]:
    """The shared ``"cat:name"`` interning table for the telemetry rings.

    Both the coordinator and every worker derive this tuple from the
    phase-name list they already agree on, so ring records can carry a
    small integer instead of a string (see
    :mod:`repro.telemetry.shmring`).  Order is the id assignment — append
    only.
    """
    names = [f"phase:{n}" for n in phase_names]
    names += [f"barrier:{n}" for n in phase_names]
    names += ["barrier:step_start", "barrier:step_end"]
    names += ["comm:halo_bytes", "counter:bids_won", "counter:bids_lost"]
    names += ["gating:active_voxels", "step:step"]
    return tuple(names)


#: The fault-injection vocabulary (see :class:`FaultSpec`).
FAULT_MODES = ("stall", "die", "error", "slow", "freeze_heartbeat")


@dataclass(frozen=True)
class FaultSpec:
    """Fault injection for robustness/recovery tests.

    At the start of ``phase`` in ``step``, rank ``rank`` misbehaves
    according to ``mode``:

    - ``"stall"`` — stop making progress until aborted (trips the
      coordinator's barrier timeout; status/heartbeat stay frozen);
    - ``"die"`` — hard exit (``os._exit(13)``, no teardown), surfaced by
      the coordinator's liveness poll;
    - ``"error"`` — raise inside the phase; the worker marks its error
      status, flips the abort flag and exits nonzero;
    - ``"slow"`` — a straggler, not a failure: sleep ``delay`` seconds at
      this phase on *every* step >= ``step`` (the run still completes);
    - ``"freeze_heartbeat"`` — from (step, phase) on, keep computing but
      stop refreshing the heartbeat, so liveness gauges age while the
      run stays healthy.

    ``repeat`` is read by the resilient supervisor
    (:mod:`repro.dist.resilient`): the fault is re-injected into the
    first ``repeat - 1`` respawned runtimes, so multi-restart and
    restart-exhaustion paths are testable deterministically.
    """

    rank: int
    step: int
    phase: str
    mode: str  # one of FAULT_MODES
    #: Seconds a "slow" rank sleeps per affected phase.
    delay: float = 0.05
    #: How many runtime incarnations the fault fires in (supervisor-read).
    repeat: int = 1

    def __post_init__(self):
        if self.mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {self.mode!r}")
        if self.repeat < 1:
            raise ValueError("repeat must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs, picklable for any start method."""

    rank: int
    nranks: int
    params: SimCovParams
    seed: int
    boxes: tuple[tuple[tuple[int, ...], tuple[int, ...]], ...]
    plan: RankPullPlan
    segment_names: tuple[str, ...]
    ctrl_name: str
    phase_names: tuple[str, ...]
    active_gating: bool = True
    barrier_timeout: float = 60.0
    fault: FaultSpec | None = None
    #: Per-rank telemetry-ring record capacity; 0 = tracing off.
    telemetry_capacity: int = 0


class InjectedFault(RuntimeError):
    """Raised by the ``error`` fault mode — a real failure to the
    runtime, but not worth a traceback dump in test logs."""


def worker_main(spec: WorkerSpec) -> None:
    """Process entry point: run the step loop until shutdown or abort."""
    worker = None
    try:
        worker = _RankWorker(spec)
        worker.run()
        code = 0
    except DistAborted:
        code = 0
    except BaseException as err:
        if not isinstance(err, InjectedFault):
            import traceback

            traceback.print_exc()
        if worker is not None and worker.ctrl is not None:
            worker.ctrl.status[spec.rank, STATUS_ERROR] = 1
            worker.ctrl.abort()
        code = 1
    finally:
        if worker is not None:
            worker.close()
    # Skip atexit/GC teardown races on the interpreter's way out — all
    # segments are already closed and the parent owns unlinking.
    os._exit(code)


class _RankWorker:
    """One rank's state + step loop."""

    def __init__(self, spec: WorkerSpec):
        self.spec = spec
        self.rank = spec.rank
        self.params = spec.params
        self.rng = VoxelRNG(spec.seed)
        self.grid = GridSpec(spec.params.dim)
        self.plan = spec.plan
        self.schedule = dist_schedule()
        assert tuple(p.name for p in self.schedule) == spec.phase_names
        self.metrics = PhaseMetrics()
        self.ctrl: ControlBlock | None = None
        self._segments: list[ShmSegment] = []

        boxes = [Box(lo, hi) for lo, hi in spec.boxes]
        # Attach the control segment and the data segments of self + every
        # halo neighbor; build zero-copy views.
        ctrl_seg = ShmSegment.attach(
            spec.ctrl_name,
            control_layout(
                spec.nranks, len(spec.phase_names), spec.telemetry_capacity
            ),
        )
        self._segments.append(ctrl_seg)
        self.ctrl = ControlBlock(ctrl_seg, spec.nranks, spec.phase_names)
        if spec.telemetry_capacity > 0:
            codec = RingCodec(telemetry_name_table(spec.phase_names))
            self.tracer = Tracer(
                rank=self.rank,
                backend="dist",
                sinks=[
                    ShmRingSink(
                        self.ctrl.tel_data[self.rank],
                        self.ctrl.tel_count[self.rank : self.rank + 1],
                        self.ctrl.tel_dropped[self.rank : self.rank + 1],
                        codec,
                    )
                ],
            )
        else:
            self.tracer = NULL_TRACER
        #: Step currently executing (stamped on barrier/comm events
        #: emitted from helpers that don't receive the step).
        self._step = 0
        self.arrays: dict[int, dict[str, np.ndarray]] = {}
        for r in {self.rank, *self.plan.neighbor_ranks}:
            shape = tuple(s + 2 for s in boxes[r].shape)
            seg = ShmSegment.attach(spec.segment_names[r], block_layout(shape))
            self._segments.append(seg)
            self.arrays[r] = seg.arrays
        mine = self.arrays[self.rank]
        # The coordinator created + initialized (zero, tissue, seeds) the
        # field storage, so adopt it as-is; intents are worker scratch and
        # start at their sentinels.
        self.block = VoxelBlock.from_arrays(
            self.grid, boxes[self.rank], mine, ghost=1, fresh=False
        )
        self.intents = kernels.IntentArrays.from_arrays(
            {
                name: mine[f"intent_{name}"]
                for name in kernels.IntentArrays.FIELD_DTYPES
            },
            fresh=True,
        )
        self.gate = ActivityGate(
            self.block,
            spec.params.min_chemokine,
            sweep_period=1,
            enabled=spec.active_gating,
        )
        self._scratch_v = np.zeros_like(self.block.virions)
        self._scratch_c = np.zeros_like(self.block.chemokine)
        self.step_bar = ShmBarrier(
            self.ctrl.step_bar, self.rank, self.ctrl, label="step barrier"
        )
        self.phase_bar = ShmBarrier(
            self.ctrl.phase_bar, self.rank, self.ctrl, label="phase barrier"
        )
        # Let the coordinator win every timeout-reporting race: workers
        # blocked on a stalled peer must outlast the coordinator's wait.
        self.timeout = spec.barrier_timeout * 2 + 5.0
        # Per-step counters.
        self._extr = 0
        self._moves = 0
        self._binds = 0
        self._active = 0
        #: Cleared by the freeze_heartbeat fault: status keeps updating
        #: but the liveness timestamp goes stale.
        self._heartbeat_on = True

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> None:
        hb = lambda: self.ctrl.set_status(
            self.rank,
            int(self.ctrl.status[self.rank, 0]),
            int(self.ctrl.status[self.rank, 1]),
            heartbeat=self._heartbeat_on,
        )
        pending_end = None  # (start, dur, step) of the last step-end wait
        while True:
            t0 = perf_counter()
            self.step_bar.wait(self.timeout, heartbeat=hb)
            t1 = perf_counter()
            step = int(self.ctrl.command[CMD_STEP])
            if step == SHUTDOWN_STEP:
                return
            if self.tracer:
                # Ring-write discipline: the coordinator drains the rings
                # between the step-end barrier and the next step-start
                # release, so nothing may be written in that window — the
                # step-end wait span is therefore emitted one step late,
                # here, right after the start barrier proves the drain is
                # over.
                if pending_end is not None:
                    self.tracer.emit_span(
                        "step_end", pending_end[0], pending_end[1],
                        cat="barrier", step=pending_end[2],
                    )
                self.tracer.emit_span(
                    "step_start", t0, t1 - t0, cat="barrier", step=step
                )
            self._run_step(step, float(self.ctrl.pool[0]))
            t2 = perf_counter()
            self.step_bar.wait(self.timeout, heartbeat=hb)
            pending_end = (t2, perf_counter() - t2, step)

    def close(self) -> None:
        for seg in self._segments:
            seg.close()
        self._segments.clear()

    # -- one step ------------------------------------------------------------

    def _run_step(self, step: int, pool: float) -> None:
        # Recompute the global attempt schedule locally: it is a pure
        # function of (seed, step, pool), all of which the coordinator
        # published, so every rank derives the identical arrays.
        attempts = kernels.extravasation_attempts(
            self.params, self.rng, step, pool
        )
        self._extr = self._moves = self._binds = 0
        self._step = step
        step_start = perf_counter()
        for index, phase in enumerate(self.schedule):
            self.ctrl.set_status(
                self.rank, step, index, heartbeat=self._heartbeat_on
            )
            self._maybe_fault(step, phase.name)
            start = perf_counter()
            ran = self._execute(phase, step, attempts)
            elapsed = perf_counter() - start
            skipped = ran is False
            self.metrics.record(phase.name, elapsed, skipped=skipped)
            if self.tracer:
                self.tracer.emit_span(
                    phase.name, start, elapsed, cat="phase", step=step,
                    skipped=skipped,
                )
        if self.tracer:
            self.tracer.emit_span(
                "step", step_start, perf_counter() - step_start,
                cat="step", step=step,
            )
        self._publish(step)

    def _execute(self, phase: Phase, step: int, attempts):
        if phase.kind is PhaseKind.EXCHANGE:
            return self._exchange(phase)
        handler = getattr(self, f"phase_{phase.name}", None)
        if handler is None:
            return False
        return handler(step, attempts)

    def _maybe_fault(self, step: int, phase_name: str) -> None:
        fault = self.spec.fault
        if (
            fault is None
            or fault.rank != self.rank
            or fault.phase != phase_name
        ):
            return
        if fault.mode == "slow":
            # A straggler: late every affected step, but never failing.
            if step >= fault.step:
                time.sleep(fault.delay)
            return
        if step != fault.step and fault.mode != "freeze_heartbeat":
            return
        if fault.mode == "freeze_heartbeat":
            if step >= fault.step:
                self._heartbeat_on = False
            return
        if fault.mode == "die":
            os._exit(13)
        if fault.mode == "error":
            raise InjectedFault(
                f"injected fault: rank {self.rank} errored in "
                f"{phase_name!r} at step {step}"
            )
        while not self.ctrl.aborted:  # stall (status stays frozen here)
            time.sleep(0.005)
        raise DistAborted(f"aborted while stalled in {phase_name!r}")

    def _publish(self, step: int) -> None:
        """Per-step totals + cumulative metrics, read by the coordinator
        after the step-end barrier."""
        row = self.ctrl.results[self.rank]
        row[RES_EXTRAVASATIONS] = self._extr
        row[RES_MOVES] = self._moves
        row[RES_BINDS] = self._binds
        row[RES_ACTIVE] = self._active
        for i, name in enumerate(self.spec.phase_names):
            self.ctrl.metrics_seconds[self.rank, i] = self.metrics.seconds.get(name, 0.0)
            self.ctrl.metrics_calls[self.rank, i] = self.metrics.calls.get(name, 0)
            self.ctrl.metrics_skips[self.rank, i] = self.metrics.skips.get(name, 0)

    # -- exchange phases -----------------------------------------------------

    def _phase_barrier(self, name: str) -> None:
        """One phase-barrier wait, timed as a ``cat="barrier"`` span."""
        if not self.tracer:
            self.phase_bar.wait(self.timeout)
            return
        start = perf_counter()
        self.phase_bar.wait(self.timeout)
        self.tracer.emit_span(
            name, start, perf_counter() - start, cat="barrier",
            step=self._step,
        )

    def _exchange(self, phase: Phase):
        if not phase.exchanges:
            return False
        barrier = lambda: self._phase_barrier(phase.name)
        if phase.name == "open_exchange":
            # Peers finished their previous step (step barrier); copy, then
            # fence so nobody mutates state another rank is still reading.
            self._pull_replace(phase, (fs for fs in phase.exchanges
                                       if fs.merge is MergeMode.REPLACE))
            barrier()
        elif phase.name == "tiebreak_exchange":
            # Halo wave B: everyone's intents are written (entry barrier);
            # REPLACE-copy neighbor intents into ghosts and snapshot the
            # bid strips, fence, then max-merge the snapshots — the exact
            # "send pre-exchange values" semantics of HaloExchanger.
            barrier()
            self._pull_replace(phase, (fs for fs in phase.exchanges
                                       if fs.merge is MergeMode.REPLACE))
            snaps = self._snapshot_max(phase)
            barrier()
            self._apply_max(snaps)
        elif phase.name == "concentration_exchange":
            # Production done everywhere (entry); copies done (exit) before
            # any rank's diffusion commit overwrites its owned strips.
            barrier()
            self._pull_replace(phase, phase.exchanges)
            barrier()
        else:  # boundary_exchange
            # Entry barrier only: peers are done mutating T-cell fields;
            # the next mutation (resolve) sits behind the tiebreak
            # barriers, which every reader passes first.
            barrier()
            self._pull_replace(phase, phase.exchanges)
        return True

    def _keys(self, fs: FieldSet) -> list[str]:
        prefix = "intent_" if fs.scope == "intent" else ""
        return [prefix + name for name in fs.fields]

    def _pull_replace(self, phase: Phase, field_sets) -> None:
        mine = self.arrays[self.rank]
        keys = [k for fs in field_sets for k in self._keys(fs)]
        nbytes = 0
        for route in self.plan.replace:
            src = self.arrays[route.src]
            ssl = self.plan.src_slices(route)
            dsl = self.plan.dst_slices(route)
            for key in keys:
                strip = src[key][ssl]
                mine[key][dsl] = strip
                nbytes += strip.nbytes
        if self.tracer and nbytes:
            self.tracer.counter(
                "halo_bytes", nbytes, cat="comm", step=self._step,
                phase=phase.name,
            )

    def _snapshot_max(self, phase: Phase):
        snaps = []
        keys = [
            k
            for fs in phase.exchanges
            if fs.merge is MergeMode.MAX
            for k in self._keys(fs)
        ]
        for route in self.plan.max_merge:
            src = self.arrays[route.src]
            ssl = self.plan.src_slices(route)
            dsl = self.plan.dst_slices(route)
            for key in keys:
                snaps.append((key, dsl, src[key][ssl].copy()))
        return snaps

    def _apply_max(self, snaps) -> None:
        mine = self.arrays[self.rank]
        trace = bool(self.tracer)
        won = lost = 0
        for key, dsl, payload in snaps:
            view = mine[key][dsl]
            if trace:
                # A conflict is a boundary slot both sides bid on; this
                # rank loses where the incoming bid beats the local one.
                contested = (payload > 0) & (view > 0)
                lost_here = int((contested & (payload > view)).sum())
                lost += lost_here
                won += int(contested.sum()) - lost_here
            np.maximum(view, payload, out=view)
        if trace and (won or lost):
            self.tracer.counter("bids_won", won, step=self._step)
            self.tracer.counter("bids_lost", lost, step=self._step)

    # -- kernel phases (mirror the PGAS backend's per-rank bodies) -----------

    def phase_age_extravasate(self, step: int, attempts):
        self.gate.refresh()
        self._active = self.gate.count
        if self.tracer:
            self.tracer.gauge(
                "active_voxels", self._active, cat="gating", step=step
            )
        region = self.gate.region()
        if region is None:
            return False
        kernels.tcell_age(self.block, region)
        # Attempts only succeed where signal >= min_chemokine, which the
        # freshly-refreshed region covers (same argument as PGAS).
        self._extr = kernels.apply_extravasation(
            self.params, self.block, attempts, region
        )

    def phase_intents(self, step: int, attempts):
        region = self.gate.region()
        # Full clear, not the dirty-slab fast path: the tiebreak copies
        # write ghost strips behind IntentArrays' tracking, and a stale
        # merged bid *anywhere* in this array would leak into every
        # neighbor's next max-merge snapshot (the GPU backend clears
        # fully for the same reason).
        self.intents.clear()
        if region is None:
            return False
        kernels.tcell_intents(
            self.params, self.rng, step, self.block, self.intents, region
        )

    def phase_resolve(self, step: int, attempts):
        # Purely local: ghost intents + merged bids make the winner
        # computation identical on both sides of every boundary.  An idle
        # region is sound — any inbound mover was visible in this rank's
        # padded activity mask at refresh time.
        region = self.gate.region()
        if region is None:
            return False
        self._moves = kernels.resolve_moves(self.block, self.intents, region)
        self._binds = kernels.resolve_binds(
            self.params, self.rng, step, self.block, self.intents, region
        )

    def phase_apply_results(self, step: int, attempts):
        return False

    def phase_epithelial(self, step: int, attempts):
        region = self.gate.region()
        if region is None:
            return False
        kernels.epithelial_update(
            self.params, self.rng, step, self.block, region
        )
        kernels.production_update(self.params, self.block, region, step=step)

    def phase_diffuse(self, step: int, attempts):
        region = self.gate.region()
        if region is None:
            return False
        kernels.mirror_fields(self.block)
        kernels.concentration_update(
            self.params, self.block, region, self._scratch_v, self._scratch_c
        )
        kernels.concentration_commit(
            self.params, self.block, [region], self._scratch_v,
            self._scratch_c, step=step,
        )

    def phase_reduce(self, step: int, attempts):
        # The coordinator owns the reduction; per-rank totals go out in
        # _publish after the phase loop.
        return None
