"""Supervised restart for the distributed runtime.

:class:`ResilientDistSimCov` wraps :class:`~repro.dist.driver.DistSimCov`
with the fault-tolerance model production multi-hour runs need
(DESIGN.md §4c):

- **shadow checkpoints** — every K steps, in the per-step quiescent
  window (all workers parked at the step-start barrier), the supervisor
  gathers the interior of every checkpoint field through the
  coordinator's shared-memory views into an in-memory snapshot
  (:func:`repro.io.checkpoint.snapshot_state`, near-memcpy cost), and
  optionally mirrors it to a rotated on-disk checkpoint directory;
- **automatic recovery** — a worker death
  (:class:`~repro.dist.control.WorkerFailedError`) or barrier timeout
  (:class:`~repro.dist.control.BarrierTimeoutError`) aborts and tears
  down the wrecked runtime (processes joined, every ``/dev/shm`` segment
  released), respawns a fresh one under a bounded-restart policy
  (max retries, exponential backoff, per-incident diagnostics), restores
  the last shadow snapshot, and replays forward — and because the
  checkpoint is decomposition-independent and randomness is a pure
  function of ``(seed, step, voxel)``, the recovered time series is
  **bitwise identical** to a fault-free run;
- **graceful degradation** — under the ``shrink`` policy each recovery
  re-decomposes onto one fewer rank (an OOM-shaped repeatedly-failing
  rank stops being fatal), which the implementation-independent
  checkpoint makes exact as well.

Recovery telemetry flows through :mod:`repro.telemetry` on the
coordinator lane: ``restarts`` / ``steps_replayed`` counters and a
``recovery`` span per incident, all ``cat="resilience"``, which
``simcov-repro trace report`` renders as an incident table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from time import perf_counter

import numpy as np

from repro.core.params import SimCovParams
from repro.core.stats import StepStats, TimeSeries
from repro.dist.control import BarrierTimeoutError, DistError, WorkerFailedError
from repro.dist.driver import DistSimCov
from repro.dist.worker import FaultSpec
from repro.grid.decomposition import DecompositionKind
from repro.io.checkpoint import (
    auto_checkpoint_path,
    restore_state,
    rotate_checkpoints,
    save_checkpoint,
    snapshot_state,
)

# The bounded-restart vocabulary is shared with the serving tier
# (repro.serve per-job retries): the policy and incident-log helpers
# live in repro.resilience and are re-exported here for back-compat.
from repro.resilience import (  # noqa: F401  (re-exported API)
    RestartPolicy,
    format_incident_log,
    write_incident_log,
)
from repro.resilience import RestartsExhaustedError as _SharedRestartsExhausted

#: Failures the supervisor recovers from.  Anything else (model bugs,
#: checkpoint corruption, KeyboardInterrupt) propagates untouched.
RECOVERABLE_ERRORS = (WorkerFailedError, BarrierTimeoutError)


class RestartsExhaustedError(_SharedRestartsExhausted, DistError):
    """The bounded-restart budget ran out; carries the incident log.

    Subclasses both the shared
    :class:`repro.resilience.RestartsExhaustedError` (so generic retry
    layers need one except clause across dist and serve) and
    :class:`~repro.dist.control.DistError` (dist back-compat).
    """


@dataclass(frozen=True)
class Incident:
    """Diagnostics of one recovered (or fatal) failure."""

    #: 1-based incident number.
    index: int
    #: Step being attempted when the failure surfaced.
    step: int
    #: Exception class name (WorkerFailedError / BarrierTimeoutError).
    error_type: str
    #: First line of the failure diagnostic.
    message: str
    #: Rank counts before/after recovery (differ under shrink).
    nranks_before: int
    nranks_after: int
    #: Step of the shadow snapshot the run was rolled back to.
    restored_step: int
    #: Steps re-executed to get back to the failure point.
    steps_replayed: int
    #: Wall seconds spent tearing down, respawning and restoring.
    recovery_seconds: float

    def describe(self) -> str:
        action = (
            f"restarted on {self.nranks_after} rank"
            f"{'s' if self.nranks_after != 1 else ''}"
        )
        if self.nranks_after != self.nranks_before:
            action = (
                f"shrunk {self.nranks_before} -> {self.nranks_after} ranks"
            )
        return (
            f"incident {self.index}: {self.error_type} at step {self.step} "
            f"-> {action}, rolled back to step {self.restored_step} "
            f"(replaying {self.steps_replayed} steps, "
            f"{self.recovery_seconds:.2f}s recovery): {self.message}"
        )


class ResilientDistSimCov:
    """A supervised :class:`DistSimCov` with checkpoint-based recovery.

    Mirrors the driver API (``step``/``run``/``series``/``gather_field``/
    ``pool``/``step_num``, context manager) and adds the supervisor
    surface: ``incidents``, ``restarts``, ``policy``, ``abort()``.

    Parameters
    ----------
    params, nranks, seed, seed_gids, decomposition, active_gating,
    barrier_timeout, start_method, tracer:
        As for :class:`DistSimCov`; ``nranks`` is the *initial* rank
        count (shrink recovery may lower it, see ``policy``).
    checkpoint_every:
        Steps between shadow snapshots.  The supervisor also snapshots
        the seeded step-0 state, so recovery is possible before the
        first periodic checkpoint.
    checkpoint_dir:
        When set, every shadow snapshot is also written to
        ``<dir>/ckpt_step<NNNNNNNN>.npz`` (atomic + CRC-checked) with
        keep-last-``keep_checkpoints`` rotation.
    policy:
        The :class:`RestartPolicy` (default: 3 restarts, no backoff,
        same-rank-count restart).
    fault:
        Optional :class:`~repro.dist.worker.FaultSpec` for recovery
        tests.  Its ``repeat`` field is honored here: the fault is
        re-injected into respawned runtimes until it has fired in
        ``repeat`` incarnations.
    """

    def __init__(
        self,
        params: SimCovParams,
        nranks: int,
        seed: int = 0,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        active_gating: bool = True,
        barrier_timeout: float = 60.0,
        start_method: str | None = None,
        fault: FaultSpec | None = None,
        tracer=None,
        *,
        checkpoint_every: int = 10,
        checkpoint_dir: str | None = None,
        keep_checkpoints: int = 3,
        policy: RestartPolicy | None = None,
    ):
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.params = params
        self.seed = seed
        self.nranks = int(nranks)
        self.policy = policy if policy is not None else RestartPolicy()
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_dir = checkpoint_dir
        self.keep_checkpoints = int(keep_checkpoints)
        self.tracer = tracer
        self._fault = fault
        self._structure_gids = structure_gids
        self._dist_kwargs = dict(
            decomposition=decomposition,
            active_gating=active_gating,
            barrier_timeout=barrier_timeout,
            start_method=start_method,
        )
        #: Authoritative per-step statistics across restarts: rolled back
        #: to the snapshot on recovery, re-filled by the bitwise-exact
        #: replay.
        self.series = TimeSeries()
        #: Diagnostics of every recovered failure, oldest first.
        self.incidents: list[Incident] = []
        self._closed = False
        self._sim = self._build(self.nranks, fault, seed_gids)
        self.seed_gids = self._sim.seed_gids
        self._shadow = None
        self._take_snapshot()

    # -- construction / recovery ---------------------------------------------

    def _build(
        self,
        nranks: int,
        fault: FaultSpec | None,
        seed_gids: np.ndarray | None,
    ) -> DistSimCov:
        return DistSimCov(
            self.params,
            nranks=nranks,
            seed=self.seed,
            seed_gids=seed_gids,
            structure_gids=self._structure_gids,
            fault=fault,
            tracer=self.tracer,
            **self._dist_kwargs,
        )

    def _take_snapshot(self) -> None:
        """Shadow-checkpoint the quiescent state (and mirror to disk)."""
        snap = snapshot_state(self._sim)
        self._shadow = snap
        if self.checkpoint_dir is not None:
            save_checkpoint(
                auto_checkpoint_path(self.checkpoint_dir, snap["step_num"]),
                self._sim,
            )
            rotate_checkpoints(self.checkpoint_dir, self.keep_checkpoints)
        if self.tracer:
            self.tracer.counter(
                "shadow_checkpoints", 1, cat="resilience",
                step=snap["step_num"],
            )

    def _recover(self, err: DistError) -> None:
        start = perf_counter()
        failed_step = int(self._sim.step_num)
        index = len(self.incidents) + 1
        nranks_before = self.nranks
        # Tear down the wrecked runtime first — even when the budget is
        # exhausted, processes and shm segments must not leak.
        self._sim.close()
        if index > self.policy.max_restarts:
            raise RestartsExhaustedError(
                f"giving up after {self.policy.max_restarts} restart"
                f"{'s' if self.policy.max_restarts != 1 else ''}: "
                f"{type(err).__name__} at step {failed_step}: "
                f"{str(err).splitlines()[0]}\n"
                f"incident log:\n{format_incident_log(self.incidents)}",
                tuple(self.incidents),
            ) from err
        delay = self.policy.backoff_seconds(index)
        if delay > 0:
            time.sleep(delay)
        if self.policy.on_failure == "shrink":
            self.nranks = max(self.policy.min_ranks, self.nranks - 1)
        fault = self._fault
        inject = (
            fault
            if fault is not None
            and index < fault.repeat
            and fault.rank < self.nranks
            else None
        )
        self._sim = self._build(self.nranks, inject, self.seed_gids)
        restore_state(self._sim, self._shadow)
        restored_step = int(self._shadow["step_num"])
        self.series.truncate(restored_step)
        recovery_seconds = perf_counter() - start
        incident = Incident(
            index=index,
            step=failed_step,
            error_type=type(err).__name__,
            message=str(err).splitlines()[0],
            nranks_before=nranks_before,
            nranks_after=self.nranks,
            restored_step=restored_step,
            steps_replayed=failed_step - restored_step,
            recovery_seconds=recovery_seconds,
        )
        self.incidents.append(incident)
        if self.tracer:
            self.tracer.counter(
                "restarts", 1, cat="resilience", step=failed_step
            )
            self.tracer.counter(
                "steps_replayed", incident.steps_replayed,
                cat="resilience", step=failed_step,
            )
            self.tracer.emit_span(
                "recovery", start, recovery_seconds, cat="resilience",
                step=failed_step, error=incident.error_type,
                nranks_before=nranks_before, nranks_after=self.nranks,
                restored_step=restored_step,
                steps_replayed=incident.steps_replayed,
            )

    # -- stepping ------------------------------------------------------------

    def step(self) -> StepStats:
        """Advance the simulation by one step, recovering as needed.

        After a recovery this executes (and returns) the first *replayed*
        step; callers looping on ``len(series)`` — like :meth:`run` —
        converge on exactly the fault-free sequence.
        """
        while True:
            try:
                stats = self._sim.step()
            except RECOVERABLE_ERRORS as err:
                self._recover(err)
                continue
            self.series.append(stats)
            if self._sim.step_num % self.checkpoint_every == 0:
                self._take_snapshot()
            return stats

    def run(self, num_steps: int | None = None) -> TimeSeries:
        """Advance ``num_steps`` (default ``params.num_steps``) beyond
        the current step, surviving worker failures along the way."""
        n = num_steps if num_steps is not None else self.params.num_steps
        target = len(self.series) + n
        while len(self.series) < target:
            self.step()
        return self.series

    # -- driver surface ------------------------------------------------------

    @property
    def restarts(self) -> int:
        """Recoveries performed so far."""
        return len(self.incidents)

    @property
    def step_num(self) -> int:
        return self._sim.step_num

    @property
    def pool(self) -> float:
        return self._sim.pool

    @property
    def rng(self):
        return self._sim.rng

    @property
    def blocks(self):
        return self._sim.blocks

    @property
    def phase_metrics(self):
        """Per-phase metrics of the *current* runtime incarnation."""
        return self._sim.phase_metrics

    def gather_field(self, name: str) -> np.ndarray:
        return self._sim.gather_field(name)

    def format_incident_log(self) -> str:
        return format_incident_log(self.incidents)

    def write_incident_log(self, path: str) -> None:
        write_incident_log(path, self.incidents)

    # -- teardown ------------------------------------------------------------

    def abort(self) -> None:
        """Raise the runtime's abort flag (signal handlers call this so
        parked workers unblock instead of waiting out their timeout)."""
        if not self._closed:
            self._sim.abort()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._sim.close()

    def __enter__(self) -> "ResilientDistSimCov":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
