"""Shared-memory arenas for the distributed runtime.

Each rank's :class:`~repro.core.state.VoxelBlock` fields and
:class:`~repro.core.kernels.IntentArrays` fields live in one
``multiprocessing.shared_memory`` segment, so a neighbor rank's halo
strips and §3.1 bid waves are *zero-copy reads* of the owner's arrays —
the distributed analog of UPC++ global pointers / GPU peer access.

A segment is described by a layout (ordered ``(name, shape, dtype)``
triples); :class:`ShmSegment` creates or attaches it and exposes named
ndarray views at computed offsets.  Creation and teardown are tracked in
a module-level registry wired to ``atexit``, so an interrupted run (test
failure, Ctrl-C) never leaks ``/dev/shm`` segments; the leak-check
fixture in ``tests/conftest.py`` asserts that stays true.
"""

from __future__ import annotations

import atexit
import os
from multiprocessing import shared_memory

import numpy as np

#: Prefix of every segment this package creates; the leak checker scans
#: /dev/shm for it.
SEGMENT_PREFIX = "repro_dist"

#: Segments created (and therefore owned + unlinked) by this process.
_OWNED: dict[str, shared_memory.SharedMemory] = {}
#: Segments attached (closed but never unlinked) by this process.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}

_ALIGN = 16


def make_segment_name(tag: str) -> str:
    """A unique, identifiable segment name: prefix + pid + random tag."""
    return f"{SEGMENT_PREFIX}_{os.getpid()}_{tag}"


def block_layout(padded_shape: tuple[int, ...]) -> list[tuple[str, tuple[int, ...], np.dtype]]:
    """Layout of one rank's data segment: every VoxelBlock field followed
    by every IntentArrays field, all at the padded block shape.  Geometry
    arrays (gid / in_domain) are derived per process, never shared."""
    from repro.core.kernels import IntentArrays
    from repro.core.state import VoxelBlock

    layout = [
        (name, padded_shape, np.dtype(dt))
        for name, dt in VoxelBlock.FIELD_DTYPES.items()
    ]
    layout += [
        (f"intent_{name}", padded_shape, np.dtype(dt))
        for name, dt in IntentArrays.FIELD_DTYPES.items()
    ]
    return layout


def layout_nbytes(layout) -> int:
    total = 0
    for _name, shape, dtype in layout:
        total = _round_up(total) + int(np.prod(shape)) * dtype.itemsize
    return max(1, _round_up(total))


def _round_up(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class ShmSegment:
    """One shared-memory segment + named ndarray views into it."""

    def __init__(self, shm: shared_memory.SharedMemory, layout, owner: bool):
        self.shm = shm
        self.name = shm.name
        self.owner = owner
        self.arrays: dict[str, np.ndarray] = {}
        offset = 0
        for name, shape, dtype in layout:
            offset = _round_up(offset)
            nbytes = int(np.prod(shape)) * dtype.itemsize
            self.arrays[name] = np.ndarray(
                shape, dtype=dtype, buffer=shm.buf, offset=offset
            )
            offset += nbytes

    @classmethod
    def create(cls, name: str, layout) -> "ShmSegment":
        """Allocate a zero-filled segment sized for ``layout``."""
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=layout_nbytes(layout)
        )
        shm.buf[:] = b"\x00" * len(shm.buf)
        _OWNED[name] = shm
        return cls(shm, layout, owner=True)

    @classmethod
    def attach(cls, name: str, layout) -> "ShmSegment":
        """Attach an existing segment (worker side).

        Workers are always ``multiprocessing`` children of the creator,
        so they share its resource-tracker process: the attach-side
        registration is a set-add no-op there, and unregistering it
        (tempting, to stop attachers from unlinking) would actually
        remove the *creator's* registration.  Leave tracking alone.
        """
        shm = shared_memory.SharedMemory(name=name)
        _ATTACHED[name] = shm
        return cls(shm, layout, owner=False)

    def close(self) -> None:
        """Drop this process's mapping; the owner also unlinks the file.

        Idempotent — teardown paths (context manager, atexit, the
        conftest leak sweeper) may all reach the same segment.
        """
        # ndarray views keep shm.buf alive; drop them before close() or
        # BufferError("cannot close exported pointers exist") is raised.
        self.arrays.clear()
        registry = _OWNED if self.owner else _ATTACHED
        if registry.pop(self.name, None) is None:
            return
        try:
            self.shm.close()
        except Exception:
            pass
        if self.owner:
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass
            except Exception:
                pass


def release_all() -> None:
    """Close every segment this process still tracks (atexit safety net)."""
    for registry, owner in ((_OWNED, True), (_ATTACHED, False)):
        for name, shm in list(registry.items()):
            registry.pop(name, None)
            try:
                shm.close()
            except Exception:
                pass
            if owner:
                try:
                    shm.unlink()
                except Exception:
                    pass


def live_segment_names() -> set[str]:
    """Names of repro-dist segments currently present in /dev/shm.

    Empty on platforms without a /dev/shm directory (the leak checker
    degrades to a no-op there).
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {e for e in entries if e.startswith(SEGMENT_PREFIX)}


atexit.register(release_all)
