"""The distributed runtime's control plane.

One small shared-memory segment carries everything the coordinator and
the workers use to run the versioned barrier protocol:

- ``flags``  — [abort] (any process sets it to wake every barrier waiter);
- ``command`` — [step] published by the coordinator before releasing the
  step-start barrier (−1 = shut down), plus the float64 ``pool`` value the
  extravasation-attempt schedule is derived from;
- ``step_bar`` — arrival epochs of the step-start/step-end barrier
  (parties: every worker + the coordinator);
- ``phase_bar`` — arrival epochs of the intra-step exchange barriers
  (parties: workers only);
- ``status``  — per-rank (step, phase index, error code) + a float64
  heartbeat timestamp, the diagnostic surface a barrier timeout dumps;
- ``results`` — per-rank per-step integer totals (extravasations, moves,
  binds, active voxels);
- ``region``  — per-rank strip-liveness handshake: each worker publishes
  its current activity bounding box in global coordinates (or an idle
  flag) right after its gate refresh; peers consult it to skip pulling
  halo strips whose source band is dead;
- ``dirty_epoch`` — a monotonic ghost-invalidation counter the
  coordinator bumps after writing fields behind the workers' backs
  (checkpoint restore); workers that see it change re-pull every strip;
- ``metrics_*`` — per-rank cumulative :class:`PhaseMetrics` counters;
- ``metrics_wait`` — per-rank barrier-wait seconds attributed to the
  phase the wait belongs to (plus two trailing columns for the
  step-start/step-end barriers);
- ``strips`` — per-rank cumulative (pulled, skipped) halo-strip counts,
  the activity-gated exchange's effectiveness gauge;
- ``tel_*`` — per-rank fixed-record telemetry rings (phase/barrier spans
  and counters encoded by :mod:`repro.telemetry.shmring`), present only
  when the runtime was built with ``telemetry_capacity > 0``; the
  coordinator drains them in the per-step quiescent window.

The barrier is a *versioned arrival vector*: party ``i`` bumps its own
epoch slot, then waits until every slot reaches that epoch.  Slots only
grow, so consecutive barriers reuse one vector without a reset phase
(a fast party already at epoch ``e+1`` trivially satisfies waiters at
``e``).  Waiting is sleepy polling — short yields first, then sub-ms
sleeps — because ranks may share cores with each other and the
coordinator.
"""

from __future__ import annotations

import time

import numpy as np

from repro.dist.shm import ShmSegment

#: ``flags`` slot indices.
FLAG_ABORT = 0
#: ``command`` slot indices.
CMD_STEP = 0
#: ``status`` integer columns.
STATUS_STEP, STATUS_PHASE, STATUS_ERROR = 0, 1, 2
#: ``results`` columns.
RES_EXTRAVASATIONS, RES_MOVES, RES_BINDS, RES_ACTIVE = 0, 1, 2, 3
#: ``region`` row layout: a liveness flag + a 3D-padded global box.
REGION_FLAG, REGION_LO, REGION_HI = 0, 1, 4
#: ``region`` liveness-flag values.
REGION_IDLE, REGION_LIVE = 0, 1
#: ``strips`` columns.
STRIPS_PULLED, STRIPS_SKIPPED = 0, 1
#: Sentinel published as CMD_STEP to request worker shutdown.
SHUTDOWN_STEP = -1


class DistError(RuntimeError):
    """Base class for distributed-runtime failures."""


class DistAborted(DistError):
    """The abort flag was raised while waiting (peer failure or shutdown)."""


class BarrierTimeoutError(DistError):
    """A barrier did not complete within the configured timeout."""


class WorkerFailedError(DistError):
    """A worker process exited while the coordinator was waiting on it."""


def control_layout(nranks: int, nphases: int, telemetry_capacity: int = 0):
    """Layout of the control segment (see module docstring).

    ``telemetry_capacity`` is the per-rank telemetry-ring record count;
    0 (telemetry off) lays the rings out with zero rows so the layout —
    and therefore the segment size both sides compute — stays in lock
    step between coordinator and workers.
    """
    from repro.telemetry.shmring import RECORD_WIDTH

    cap = int(telemetry_capacity)
    return [
        ("flags", (1,), np.dtype(np.int64)),
        ("command", (1,), np.dtype(np.int64)),
        ("pool", (1,), np.dtype(np.float64)),
        ("step_bar", (nranks + 1,), np.dtype(np.int64)),
        ("phase_bar", (nranks,), np.dtype(np.int64)),
        ("status", (nranks, 3), np.dtype(np.int64)),
        ("heartbeat", (nranks,), np.dtype(np.float64)),
        ("results", (nranks, 4), np.dtype(np.int64)),
        ("region", (nranks, 7), np.dtype(np.int64)),
        ("dirty_epoch", (1,), np.dtype(np.int64)),
        ("metrics_seconds", (nranks, nphases), np.dtype(np.float64)),
        ("metrics_calls", (nranks, nphases), np.dtype(np.int64)),
        ("metrics_skips", (nranks, nphases), np.dtype(np.int64)),
        ("metrics_wait", (nranks, nphases + 2), np.dtype(np.float64)),
        ("strips", (nranks, 2), np.dtype(np.int64)),
        ("tel_data", (nranks, cap, RECORD_WIDTH), np.dtype(np.float64)),
        ("tel_count", (nranks,), np.dtype(np.int64)),
        ("tel_dropped", (nranks,), np.dtype(np.int64)),
    ]


class ControlBlock:
    """Typed accessor over the control segment's arrays."""

    def __init__(self, segment: ShmSegment, nranks: int, phase_names: tuple[str, ...]):
        self.segment = segment
        self.nranks = nranks
        self.phase_names = tuple(phase_names)
        a = segment.arrays
        self.flags = a["flags"]
        self.command = a["command"]
        self.pool = a["pool"]
        self.step_bar = a["step_bar"]
        self.phase_bar = a["phase_bar"]
        self.status = a["status"]
        self.heartbeat = a["heartbeat"]
        self.results = a["results"]
        self.region = a["region"]
        self.dirty_epoch = a["dirty_epoch"]
        self.metrics_seconds = a["metrics_seconds"]
        self.metrics_calls = a["metrics_calls"]
        self.metrics_skips = a["metrics_skips"]
        self.metrics_wait = a["metrics_wait"]
        self.strips = a["strips"]
        self.tel_data = a["tel_data"]
        self.tel_count = a["tel_count"]
        self.tel_dropped = a["tel_dropped"]

    # -- abort flag ----------------------------------------------------------

    @property
    def aborted(self) -> bool:
        return bool(self.flags[FLAG_ABORT])

    def abort(self) -> None:
        self.flags[FLAG_ABORT] = 1

    # -- per-rank status -----------------------------------------------------

    def set_status(
        self, rank: int, step: int, phase: int, heartbeat: bool = True
    ) -> None:
        self.status[rank, STATUS_STEP] = step
        self.status[rank, STATUS_PHASE] = phase
        if heartbeat:  # a frozen heartbeat (fault injection) stays stale
            self.heartbeat[rank] = time.monotonic()

    # -- strip-liveness handshake --------------------------------------------

    def publish_region(self, rank: int, box) -> None:
        """Publish ``rank``'s active bounding box (a :class:`Box` in global
        coordinates, or None when the rank is idle this step).

        Written by the owning worker right after its gate refresh and read
        by peers only on the far side of a barrier the writer has also
        passed, so each step's value is stable for every reader.
        """
        row = self.region[rank]
        if box is None:
            row[REGION_FLAG] = REGION_IDLE
            return
        # Pad to 3 axes so one row shape serves 2D and 3D domains.
        lo = tuple(box.lo) + (0,) * (3 - len(box.lo))
        hi = tuple(box.hi) + (1,) * (3 - len(box.hi))
        row[REGION_LO:REGION_LO + 3] = lo
        row[REGION_HI:REGION_HI + 3] = hi
        row[REGION_FLAG] = REGION_LIVE

    def read_region(self, rank: int, ndim: int):
        """The box :meth:`publish_region` stored for ``rank`` (None=idle)."""
        from repro.grid.box import Box

        row = self.region[rank]
        if row[REGION_FLAG] != REGION_LIVE:
            return None
        return Box(
            tuple(int(v) for v in row[REGION_LO:REGION_LO + ndim]),
            tuple(int(v) for v in row[REGION_HI:REGION_HI + ndim]),
        )

    def phase_name(self, index: int) -> str:
        if 0 <= index < len(self.phase_names):
            return self.phase_names[index]
        return f"phase#{index}"

    def describe_rank(self, rank: int) -> str:
        step = int(self.status[rank, STATUS_STEP])
        phase = self.phase_name(int(self.status[rank, STATUS_PHASE]))
        age = time.monotonic() - float(self.heartbeat[rank])
        return (
            f"rank {rank}: phase {phase!r} at step {step} "
            f"(last heartbeat {age:.1f}s ago)"
        )


class ShmBarrier:
    """One party's handle on a versioned arrival-vector barrier.

    ``slots`` is the shared epoch vector; ``party`` is this process's
    slot.  Every participant must call :meth:`wait` the same number of
    times, in the same order relative to the other barriers it shares
    epochs with — which the lock-step phase schedule guarantees.
    """

    def __init__(self, slots: np.ndarray, party: int, ctrl: ControlBlock,
                 label: str = "barrier"):
        self.slots = slots
        self.party = int(party)
        self.ctrl = ctrl
        self.label = label
        self.epoch = 0

    def wait(self, timeout: float, poll=None, heartbeat=None) -> None:
        """Arrive and block until every party reaches this epoch.

        ``poll()`` (optional) runs every iteration — the coordinator uses
        it to watch worker liveness and may raise.  ``heartbeat()``
        (optional) lets a healthy-but-blocked worker keep its heartbeat
        fresh so timeout diagnostics single out the genuinely stalled
        rank.  Raises :class:`DistAborted` if the abort flag goes up and
        :class:`BarrierTimeoutError` with a per-rank dump on timeout.
        """
        self.epoch += 1
        self.slots[self.party] = self.epoch
        deadline = time.monotonic() + timeout
        spins = 0
        while True:
            if (self.slots >= self.epoch).all():
                return
            if self.ctrl.aborted:
                raise DistAborted(
                    f"{self.label}: aborted while waiting (epoch {self.epoch})"
                )
            if poll is not None:
                poll()
            if heartbeat is not None:
                heartbeat()
            if time.monotonic() > deadline:
                raise BarrierTimeoutError(self._timeout_message(timeout))
            # Sleepy polling: yield for a while, then back off to short
            # sleeps — ranks typically share cores.
            spins += 1
            time.sleep(0 if spins < 200 else 0.0002)

    def _timeout_message(self, timeout: float) -> str:
        pending = [
            p for p in range(len(self.slots)) if self.slots[p] < self.epoch
        ]
        lines = [
            f"{self.label} timed out after {timeout:.1f}s at epoch "
            f"{self.epoch}: {len(pending)} part{'y' if len(pending) == 1 else 'ies'} missing"
        ]
        for p in pending:
            if p < self.ctrl.nranks:
                lines.append("  missing " + self.ctrl.describe_rank(p))
            else:
                lines.append(f"  missing party {p} (coordinator)")
        return "\n".join(lines)
