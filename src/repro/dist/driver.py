"""The distributed driver shim.

`DistSimCov` mirrors the other drivers' public API (step/run/series/
gather_field/checkpointable ``pool``/``step_num``) while the actual
kernels run in worker processes.  Because workers hold real OS resources
(processes, shared-memory segments), this driver is also a context
manager; :meth:`DistSimCov.close` is idempotent and always releases
everything, even after a failure.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SimCovParams
from repro.dist.backend import DistBackend
from repro.dist.worker import FaultSpec
from repro.engine.driver import EngineDriver
from repro.engine.metrics import PhaseMetrics
from repro.grid.decomposition import DecompositionKind


class DistSimCov(EngineDriver):
    """Multi-process SIMCoV over shared-memory halo exchange.

    Parameters match :class:`~repro.core.model.SequentialSimCov` plus the
    distributed knobs of :class:`~repro.dist.backend.DistBackend`.  Use as
    a context manager (or call :meth:`close`) so worker processes and
    ``/dev/shm`` segments are released deterministically::

        with DistSimCov(params, nranks=4, seed=42) as sim:
            series = sim.run()
    """

    def __init__(
        self,
        params: SimCovParams,
        nranks: int,
        seed: int = 0,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        active_gating: bool = True,
        barrier_timeout: float = 60.0,
        start_method: str | None = None,
        fault: FaultSpec | None = None,
        tracer=None,
    ):
        backend = DistBackend(
            params,
            nranks,
            seed=seed,
            seed_gids=seed_gids,
            structure_gids=structure_gids,
            decomposition=decomposition,
            active_gating=active_gating,
            barrier_timeout=barrier_timeout,
            start_method=start_method,
            fault=fault,
            tracer=tracer,
        )
        self._init_engine(backend, tracer=tracer)
        self.nranks = nranks
        #: Coordinator-side shared-memory views of the per-rank blocks —
        #: checkpoint restore writes through these and the parked workers
        #: see the new state at their next step.
        self.blocks = backend.blocks

    def invalidate_ghosts(self) -> None:
        """Tell every worker its ghost strips are stale (called by
        checkpoint restore after scattering fields into the blocks; the
        activity-gated exchange would otherwise trust clean strips)."""
        self.backend.runtime.invalidate_ghosts()

    # -- metrics -------------------------------------------------------------

    @property
    def phase_metrics(self) -> PhaseMetrics:
        """Per-phase wall time where the work actually ran: the merge of
        every worker's counters (the coordinator's own engine timings are
        still available as ``engine.metrics``)."""
        return self.backend.worker_phase_metrics()

    # -- teardown ------------------------------------------------------------

    def abort(self) -> None:
        """Raise the runtime's abort flag: every worker parked at a
        barrier unblocks and exits instead of waiting out its timeout.
        The CLI's SIGINT/SIGTERM handlers call this before teardown."""
        self.backend.runtime.abort()

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "DistSimCov":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
