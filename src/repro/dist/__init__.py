"""repro.dist — a real multi-process distributed runtime.

Runs StepEngine ranks as OS processes with every rank's field arrays in
``multiprocessing.shared_memory``, so halo strips and §3.1 bid waves are
zero-copy reads of neighbor blocks, coordinated by a versioned barrier
protocol.  Bitwise identical to the sequential reference for any rank
count (tests/dist/test_dist_golden.py).

:mod:`repro.dist.resilient` adds the production fault-tolerance layer:
:class:`ResilientDistSimCov` supervises the runtime with shadow
checkpoints, bounded automatic restart (optionally shrinking to fewer
ranks) and bitwise-exact replay (tests/dist/test_resilient.py).
"""

from repro.dist.backend import DistBackend
from repro.dist.control import (
    BarrierTimeoutError,
    DistAborted,
    DistError,
    WorkerFailedError,
)
from repro.dist.driver import DistSimCov
from repro.dist.resilient import (
    Incident,
    ResilientDistSimCov,
    RestartPolicy,
    RestartsExhaustedError,
    format_incident_log,
    write_incident_log,
)
from repro.dist.runtime import DistRuntime
from repro.dist.worker import FAULT_MODES, FaultSpec, WorkerSpec, dist_schedule

__all__ = [
    "BarrierTimeoutError",
    "DistAborted",
    "DistBackend",
    "DistError",
    "DistRuntime",
    "DistSimCov",
    "FAULT_MODES",
    "FaultSpec",
    "Incident",
    "ResilientDistSimCov",
    "RestartPolicy",
    "RestartsExhaustedError",
    "WorkerSpec",
    "WorkerFailedError",
    "dist_schedule",
    "format_incident_log",
    "write_incident_log",
]
