"""repro.dist — a real multi-process distributed runtime.

Runs StepEngine ranks as OS processes with every rank's field arrays in
``multiprocessing.shared_memory``, so halo strips and §3.1 bid waves are
zero-copy reads of neighbor blocks, coordinated by a versioned barrier
protocol.  Bitwise identical to the sequential reference for any rank
count (tests/dist/test_dist_golden.py).
"""

from repro.dist.backend import DistBackend
from repro.dist.control import (
    BarrierTimeoutError,
    DistAborted,
    DistError,
    WorkerFailedError,
)
from repro.dist.driver import DistSimCov
from repro.dist.runtime import DistRuntime
from repro.dist.worker import FaultSpec, WorkerSpec, dist_schedule

__all__ = [
    "BarrierTimeoutError",
    "DistAborted",
    "DistBackend",
    "DistError",
    "DistRuntime",
    "DistSimCov",
    "FaultSpec",
    "WorkerSpec",
    "WorkerFailedError",
    "dist_schedule",
]
