"""Process + shared-memory orchestration for the distributed backend.

:class:`DistRuntime` owns everything that exists *outside* the simulation
math: the per-rank data segments and the control segment, the coordinator
side of the step barrier, worker process lifecycle (spawn, liveness,
join, terminate), failure diagnosis, and teardown.  The coordinator never
computes a phase — it publishes ``(step, pool)``, releases the step-start
barrier, and meets the workers again at the step-end barrier.

Robustness model:

- every barrier wait carries a timeout; on expiry the coordinator raises
  :class:`~repro.dist.control.BarrierTimeoutError` with a per-rank dump
  (rank / phase / step / heartbeat age) and flips the abort flag so every
  healthy worker unblocks and exits cleanly;
- the coordinator polls worker liveness while it waits, so a killed
  worker surfaces as :class:`~repro.dist.control.WorkerFailedError`
  naming the rank instead of a timeout-shaped hang;
- :meth:`DistRuntime.close` is idempotent, runs from ``atexit``/context
  managers, and always unlinks the shared-memory segments it created —
  an interrupted run never leaks ``/dev/shm`` entries.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os

import numpy as np

from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.dist.control import (
    CMD_STEP,
    STATUS_ERROR,
    SHUTDOWN_STEP,
    BarrierTimeoutError,
    ControlBlock,
    DistAborted,
    DistError,
    ShmBarrier,
    WorkerFailedError,
    control_layout,
)
from repro.dist.shm import ShmSegment, block_layout, make_segment_name
from repro.dist.worker import (
    FaultSpec,
    WorkerSpec,
    dist_schedule,
    telemetry_name_table,
    worker_main,
)
from repro.engine.metrics import PhaseMetrics
from repro.telemetry.shmring import RingCodec, drain_ring
from repro.grid.decomposition import Decomposition
from repro.grid.halo import HaloExchanger
from repro.grid.spec import GridSpec

#: Distinguishes segment families when one process hosts several runtimes.
_RUNTIME_IDS = itertools.count()


class DistRuntime:
    """One distributed run: segments, workers, and the coordinator's
    barrier handles."""

    def __init__(
        self,
        spec: GridSpec,
        decomp: Decomposition,
        exchanger: HaloExchanger,
        params: SimCovParams,
        seed: int,
        *,
        active_gating: bool = True,
        barrier_timeout: float = 60.0,
        start_method: str | None = None,
        fault: FaultSpec | None = None,
        telemetry_capacity: int = 0,
    ):
        self.spec = spec
        self.decomp = decomp
        self.exchanger = exchanger
        self.params = params
        self.seed = seed
        self.nranks = decomp.nranks
        self.active_gating = active_gating
        self.barrier_timeout = float(barrier_timeout)
        self.start_method = start_method
        self.fault = fault
        self.phase_names = tuple(p.name for p in dist_schedule())
        self.telemetry_capacity = int(telemetry_capacity)
        self._codec = (
            RingCodec(telemetry_name_table(self.phase_names))
            if self.telemetry_capacity > 0
            else None
        )
        self._procs: list[mp.process.BaseProcess] = []
        self._closed = False

        run_id = next(_RUNTIME_IDS)
        self._segments: list[ShmSegment] = []
        ctrl_seg = ShmSegment.create(
            make_segment_name(f"{run_id}_ctrl"),
            control_layout(
                self.nranks, len(self.phase_names), self.telemetry_capacity
            ),
        )
        self._segments.append(ctrl_seg)
        self.ctrl = ControlBlock(ctrl_seg, self.nranks, self.phase_names)
        self.segment_names: list[str] = []
        #: Coordinator-side views of every rank's fields, backed by the
        #: same pages the workers mutate — gather/checkpoint/seeding all
        #: read and write through these.
        self.blocks: list[VoxelBlock] = []
        for rank in range(self.nranks):
            name = make_segment_name(f"{run_id}_r{rank}")
            seg = ShmSegment.create(
                name, block_layout(exchanger.local_shape(rank))
            )
            self._segments.append(seg)
            self.segment_names.append(name)
            self.blocks.append(
                VoxelBlock.from_arrays(
                    spec, decomp.boxes[rank], seg.arrays, ghost=1, fresh=True
                )
            )
        # The coordinator is barrier party ``nranks``.
        self.step_bar = ShmBarrier(
            self.ctrl.step_bar, self.nranks, self.ctrl, label="step barrier"
        )

    # -- worker lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Spawn one worker process per rank (after the blocks are seeded)."""
        method = self.start_method or "fork"
        if method not in mp.get_all_start_methods():
            method = "spawn"
        ctx = mp.get_context(method)
        if method != "fork":
            self._ensure_importable()
        for rank in range(self.nranks):
            spec = WorkerSpec(
                rank=rank,
                nranks=self.nranks,
                params=self.params,
                seed=self.seed,
                boxes=tuple((b.lo, b.hi) for b in self.decomp.boxes),
                plan=self.exchanger.pull_plan(rank),
                segment_names=tuple(self.segment_names),
                ctrl_name=self.ctrl.segment.name,
                phase_names=self.phase_names,
                active_gating=self.active_gating,
                barrier_timeout=self.barrier_timeout,
                fault=self.fault,
                telemetry_capacity=self.telemetry_capacity,
                dirty_epoch=int(self.ctrl.dirty_epoch[0]),
            )
            proc = ctx.Process(
                target=worker_main,
                args=(spec,),
                name=f"repro-dist-rank{rank}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)

    @staticmethod
    def _ensure_importable() -> None:
        """Under spawn the children re-exec the interpreter; make sure the
        package's root is on their PYTHONPATH even when the parent got it
        via sys.path manipulation."""
        import repro

        root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        existing = os.environ.get("PYTHONPATH", "")
        if root not in existing.split(os.pathsep):
            os.environ["PYTHONPATH"] = (
                root + os.pathsep + existing if existing else root
            )

    # -- step protocol -------------------------------------------------------

    def start_step(self, step: int, pool: float) -> None:
        """Publish the step command and release the step-start barrier."""
        self.ctrl.command[CMD_STEP] = step
        self.ctrl.pool[0] = float(pool)
        self._step_wait()

    def finish_step(self) -> None:
        """Meet the workers at the step-end barrier; afterwards every
        per-rank result row and field array is quiescent and readable."""
        self._step_wait()

    def _step_wait(self) -> None:
        try:
            self.step_bar.wait(self.barrier_timeout, poll=self._check_liveness)
        except BarrierTimeoutError:
            self.ctrl.abort()  # unblock healthy workers before propagating
            raise
        except DistAborted:
            # A worker raised the flag: find out who and why.
            self._raise_worker_error()
            raise

    def _check_liveness(self) -> None:
        for rank, proc in enumerate(self._procs):
            if proc.exitcode is not None:
                self.ctrl.abort()
                raise WorkerFailedError(
                    f"worker process for rank {rank} exited with code "
                    f"{proc.exitcode} while the coordinator was waiting; "
                    f"last status: {self.ctrl.describe_rank(rank)}"
                )

    def _raise_worker_error(self) -> None:
        failed = [
            r
            for r in range(self.nranks)
            if self.ctrl.status[r, STATUS_ERROR]
        ]
        if failed:
            details = "; ".join(self.ctrl.describe_rank(r) for r in failed)
            raise WorkerFailedError(f"worker rank(s) failed: {details}")

    # -- metrics -------------------------------------------------------------

    def worker_metrics(self) -> PhaseMetrics:
        """All ranks' cumulative per-phase counters, merged."""
        merged = PhaseMetrics()
        for rank in range(self.nranks):
            merged.merge(self._rank_metrics(rank))
        return merged

    def per_rank_metrics(self) -> list[PhaseMetrics]:
        return [self._rank_metrics(r) for r in range(self.nranks)]

    def _rank_metrics(self, rank: int) -> PhaseMetrics:
        m = PhaseMetrics()
        for i, name in enumerate(self.phase_names):
            calls = int(self.ctrl.metrics_calls[rank, i])
            skips = int(self.ctrl.metrics_skips[rank, i])
            if calls:
                m.calls[name] = calls
                m.seconds[name] = float(self.ctrl.metrics_seconds[rank, i])
            if skips:
                m.skips[name] = skips
        return m

    def results_row(self, column: int) -> np.ndarray:
        """One column of the per-rank result table (copy)."""
        return self.ctrl.results[:, column].copy()

    def per_rank_wait_seconds(self) -> dict[str, list[float]]:
        """Cumulative barrier-wait seconds per rank, keyed by phase name
        plus the two step barriers — the load-imbalance surface of the
        strong-scaling benchmark."""
        cols = list(self.phase_names) + ["step_start", "step_end"]
        return {
            name: [float(self.ctrl.metrics_wait[r, i]) for r in range(self.nranks)]
            for i, name in enumerate(cols)
        }

    def strip_counts(self) -> tuple[int, int]:
        """Cumulative (pulled, skipped) halo-strip counts over all ranks —
        how much exchange the activity gating actually avoided."""
        pulled = int(self.ctrl.strips[:, 0].sum())
        skipped = int(self.ctrl.strips[:, 1].sum())
        return pulled, skipped

    def invalidate_ghosts(self) -> None:
        """Declare every worker's ghost strips stale (call after writing
        fields behind the workers' backs, e.g. a checkpoint restore).
        Workers observe the bump at their next step start and re-pull
        every strip before touching state."""
        self.ctrl.dirty_epoch[0] += 1

    # -- telemetry -----------------------------------------------------------

    def drain_telemetry(self):
        """Decode and clear every rank's telemetry ring.

        Only call in the per-step quiescent window — after
        :meth:`finish_step` returns and before the next
        :meth:`start_step` — when every worker is parked at the
        step-start barrier and the count resets race with nothing.
        Events come back sorted by timestamp (cross-rank comparable:
        ``perf_counter`` is the system-wide monotonic clock).
        """
        if self._codec is None:
            return []
        events = []
        for rank in range(self.nranks):
            events.extend(
                drain_ring(
                    self.ctrl.tel_data[rank],
                    self.ctrl.tel_count[rank : rank + 1],
                    self._codec,
                    rank,
                )
            )
        events.sort(key=lambda e: e.ts)
        return events

    def telemetry_dropped(self) -> list[int]:
        """Per-rank count of ring records lost to overflow (0 = none)."""
        return [int(n) for n in self.ctrl.tel_dropped]

    def heartbeat_ages(self, now: float) -> list[float]:
        """Seconds since each rank's last heartbeat (liveness gauge)."""
        return [
            max(0.0, now - float(self.ctrl.heartbeat[r]))
            for r in range(self.nranks)
        ]

    def segment_sizes(self) -> dict[str, int]:
        """Bytes of every live shared-memory segment, keyed by role."""
        sizes = {}
        for i, seg in enumerate(self._segments):
            role = "control" if i == 0 else f"rank{i - 1}"
            sizes[role] = int(seg.shm.size)
        return sizes

    # -- teardown ------------------------------------------------------------

    def abort(self) -> None:
        """Flip the control-segment abort flag (idempotent; safe from
        signal handlers — one shared-memory store)."""
        if self._segments:
            self.ctrl.abort()

    def close(self) -> None:
        """Stop the workers and release every shared-memory segment.

        Safe to call repeatedly and from any failure path: after an abort
        or timeout it skips the polite shutdown and goes straight to
        join/terminate, and segment unlinking runs regardless.
        """
        if self._closed:
            return
        self._closed = True
        try:
            live = [p for p in self._procs if p.is_alive()]
            if live and not self.ctrl.aborted:
                # Polite shutdown: workers are parked at the step-start
                # barrier; publish the sentinel and release them.
                self.ctrl.command[CMD_STEP] = SHUTDOWN_STEP
                try:
                    self.step_bar.wait(min(5.0, self.barrier_timeout))
                except DistError:
                    self.ctrl.abort()
            elif live:
                self.ctrl.abort()
            for proc in self._procs:
                proc.join(timeout=5.0)
            for proc in self._procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in self._procs:
                if proc.is_alive():
                    proc.join(timeout=2.0)
        finally:
            self.blocks = []
            for seg in self._segments:
                seg.close()
            self._segments = []

    def __enter__(self) -> "DistRuntime":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # defensive: tests should use close()/context manager
        try:
            self.close()
        except Exception:
            pass
