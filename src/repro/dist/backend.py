"""The distributed execution backend (multi-process shared-memory).

Unlike the PGAS and GPU-cluster backends — which *simulate* their
substrate inside one process — this backend runs each rank as a real OS
process.  The coordinator process (where the
:class:`~repro.engine.engine.StepEngine` lives) owns no kernel: every
phase body executes inside the workers (:mod:`repro.dist.worker`), in
lock step via shared-memory barriers, against field arrays allocated in
``multiprocessing.shared_memory`` so halo strips and §3.1 bid waves are
zero-copy reads of neighbor blocks.

The engine still drives the canonical schedule on the coordinator:
``begin_step`` publishes ``(step, pool)`` and releases the workers; the
intermediate phases are no-ops here (the workers run them behind the
same phase names); ``phase_reduce`` meets the workers at the step-end
barrier, sums the integer totals exactly, and recomputes the float
statistics over a coordinator-side full-domain block so the reduction
follows the *identical* code path (and numpy summation order) as the
sequential backend — that, plus counter-based RNG and owner-computes
winner resolution, is the determinism argument (DESIGN.md).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.core.stats import stats_vector
from repro.dist.control import (
    RES_ACTIVE,
    RES_BINDS,
    RES_EXTRAVASATIONS,
    RES_MOVES,
)
from repro.dist.runtime import DistRuntime
from repro.dist.worker import FaultSpec, dist_schedule
from repro.engine.backend import ExecutionBackend
from repro.engine.phases import Phase
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger
from repro.obs.imbalance import ImbalanceMonitor
from repro.obs.registry import get_registry
from repro.telemetry.events import GAUGE, Event
from repro.telemetry.tracer import NULL_TRACER

#: The fields the statistics reduction reads.
_STATS_FIELDS = ("epi_state", "tcell", "virions", "chemokine")

#: Per-rank telemetry-ring capacity when tracing is on.  Rings are
#: drained every step, so this only needs to hold one step's records
#: (a few dozen per rank); sized with two orders of headroom.
_TELEMETRY_RING_CAPACITY = 4096


class DistBackend(ExecutionBackend):
    """Rank-per-process SIMCoV over shared-memory halo exchange.

    Parameters
    ----------
    params, seed:
        As for the other backends; identical seeds give bitwise identical
        simulations on any rank count.
    nranks:
        Worker processes (one per subdomain).
    decomposition:
        Block (default) or linear.
    active_gating:
        Per-rank every-step activity gating (bitwise invisible).
    barrier_timeout:
        Seconds the coordinator waits at a step barrier before raising a
        diagnostic :class:`~repro.dist.control.BarrierTimeoutError`.
    start_method:
        ``multiprocessing`` start method; default fork where available
        (cheapest), spawn otherwise.  Worker specs are picklable, so both
        work.
    fault:
        Optional :class:`~repro.dist.worker.FaultSpec` injected into the
        workers (robustness tests).
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer`.  When enabled,
        the coordinator traces on the ``rank == -1`` lane, each worker
        records phase/barrier spans and comm counters into its
        shared-memory ring, and the coordinator drains the rings in the
        per-step quiescent window and forwards the decoded events —
        original ranks and timestamps intact — into the tracer's sinks.
    """

    name = "dist"

    def __init__(
        self,
        params: SimCovParams,
        nranks: int,
        seed: int = 0,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        active_gating: bool = True,
        barrier_timeout: float = 60.0,
        start_method: str | None = None,
        fault: FaultSpec | None = None,
        tracer=None,
    ):
        self._init_common(params, seed)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            # The coordinator owns the negative control-plane lane;
            # workers trace as their own ranks 0..nranks-1.
            self.tracer.rank = -1
        self.decomp = Decomposition.make(self.spec, nranks, decomposition)
        self.exchanger = HaloExchanger(self.decomp)
        self.runtime = DistRuntime(
            self.spec,
            self.decomp,
            self.exchanger,
            params,
            seed,
            active_gating=active_gating,
            barrier_timeout=barrier_timeout,
            start_method=start_method,
            fault=fault,
            telemetry_capacity=(
                _TELEMETRY_RING_CAPACITY if self.tracer.enabled else 0
            ),
        )
        #: Shared-memory-backed per-rank blocks (coordinator views).
        self.blocks = self.runtime.blocks
        # Seed through the shared pages *before* the workers spawn, so
        # rank 0's first gate refresh already sees the infection sites.
        self._seed_blocks(self.blocks, seed_gids, structure_gids)
        #: Private full-domain block the reduction sweeps — same memory
        #: layout as the sequential backend's single block, so the float
        #: sums are bitwise identical to the reference.
        self._stats_block = VoxelBlock(self.spec, self.spec.domain)
        self._active_counts: list[int] = []
        # Always-on metrics + the rolling imbalance index (ROADMAP open
        # item 5's trigger signal).  The per-step deltas come from the
        # same shm counter tables the benchmark reads cumulatively; the
        # _prev_* copies turn them into per-step observations.
        reg = get_registry()
        self._obs_barrier_wait = reg.counter(
            "simcov_dist_barrier_wait_seconds_total",
            "Cumulative barrier-wait seconds summed over ranks",
        )
        self._obs_strips_pulled = reg.counter(
            "simcov_dist_strips_pulled_total",
            "Halo strips actually pulled (activity gate let them through)",
        )
        self._obs_strips_skipped = reg.counter(
            "simcov_dist_strips_skipped_total",
            "Halo strips the activity gate skipped",
        )
        self._obs_imbalance = reg.gauge(
            "simcov_dist_imbalance_index",
            "Rolling per-rank busy-time imbalance (max/mean - 1)",
        )
        self._obs_dropped = reg.gauge(
            "simcov_dist_telemetry_dropped_events",
            "Telemetry ring records lost to overflow, summed over ranks",
        )
        self._obs_rank_busy = [
            reg.counter(
                "simcov_dist_rank_busy_seconds_total",
                "Per-rank busy seconds (phase time minus in-phase waits)",
                rank=r,
            )
            for r in range(nranks)
        ]
        self.imbalance = ImbalanceMonitor(nranks)
        self._nphases = len(self.runtime.phase_names)
        self._prev_phase_seconds = np.zeros(nranks)
        self._prev_phase_wait = np.zeros(nranks)
        self._prev_wait_total = 0.0
        self._prev_strips = (0, 0)
        self._last_dropped = [0] * nranks
        self.runtime.start()
        if self.tracer:
            for role, nbytes in self.runtime.segment_sizes().items():
                self.tracer.gauge(
                    "shm_segment_bytes", nbytes, cat="shm", role=role
                )

    # -- schedule ------------------------------------------------------------

    def schedule(self) -> tuple[Phase, ...]:
        return dist_schedule()

    # -- engine protocol -----------------------------------------------------

    def begin_step(self, ctx) -> None:
        if not self.tracer:
            self.runtime.start_step(ctx.step, ctx.pool)
            return
        start = time.perf_counter()
        self.runtime.start_step(ctx.step, ctx.pool)
        self.tracer.emit_span(
            "step_start", start, time.perf_counter() - start,
            cat="barrier", step=ctx.step,
        )

    def exchange(self, phase, ctx):
        # Exchanges happen inside the workers, sequenced by phase barriers.
        return False

    def phase_reduce(self, ctx) -> None:
        """Step-end barrier, then the coordinator-side reduction."""
        if self.tracer:
            start = time.perf_counter()
            self.runtime.finish_step()
            # Unlike the workers' step_end (between phases), this wait
            # runs inside the coordinator's reduce phase span; in_phase
            # tells the report to subtract it from busy time.
            self.tracer.emit_span(
                "step_end", start, time.perf_counter() - start,
                cat="barrier", step=ctx.step, in_phase=True,
            )
        else:
            self.runtime.finish_step()
        res = self.runtime.ctrl.results
        ctx.extravasations = int(res[:, RES_EXTRAVASATIONS].sum())
        ctx.moves = int(res[:, RES_MOVES].sum())
        ctx.binds = int(res[:, RES_BINDS].sum())
        self._active_counts = [int(v) for v in res[:, RES_ACTIVE]]
        sb = self._stats_block
        for rank, block in enumerate(self.blocks):
            src = self.exchanger.owned_slices(rank)
            dst = self.decomp.boxes[rank].slices_from(sb.origin)
            for name in _STATS_FIELDS:
                getattr(sb, name)[dst] = getattr(block, name)[src]
        ctx.reduced = stats_vector(sb)
        self._observe_step(ctx.step)
        if self.tracer:
            self._drain_telemetry(ctx.step)

    def _observe_step(self, step: int) -> None:
        """Fold this step's shm counter deltas into the registry and the
        imbalance monitor.  Runs in the quiescent window after the
        step-end barrier (every worker parked), so the reads are stable;
        numpy sums over nranks-sized tables cost microseconds."""
        ctrl = self.runtime.ctrl
        phase_seconds = np.asarray(
            ctrl.metrics_seconds, dtype=np.float64
        ).sum(axis=1)
        # metrics_wait columns = phase names (in-phase barrier waits)
        # then the two step barriers; busy excludes only the in-phase
        # portion — the step barriers sit outside any phase.
        wait = np.asarray(ctrl.metrics_wait, dtype=np.float64)
        phase_wait = wait[:, : self._nphases].sum(axis=1)
        wait_total = float(wait.sum())

        busy_delta = (phase_seconds - self._prev_phase_seconds) - (
            phase_wait - self._prev_phase_wait
        )
        self._prev_phase_seconds = phase_seconds
        self._prev_phase_wait = phase_wait
        for counter, delta in zip(self._obs_rank_busy, busy_delta):
            counter.inc(max(0.0, float(delta)))
        index = self.imbalance.observe(step, busy_delta)
        self._obs_imbalance.set(index)

        self._obs_barrier_wait.inc(max(0.0, wait_total - self._prev_wait_total))
        self._prev_wait_total = wait_total

        pulled, skipped = self.runtime.strip_counts()
        self._obs_strips_pulled.inc(pulled - self._prev_strips[0])
        self._obs_strips_skipped.inc(skipped - self._prev_strips[1])
        self._prev_strips = (pulled, skipped)

        dropped = self.runtime.telemetry_dropped()
        self._obs_dropped.set(sum(dropped))

        if self.tracer:
            # The report's imbalance-over-time panel reads this gauge
            # series off the coordinator (rank -1) lane.
            self.tracer.gauge(
                "imbalance_index", index, cat="obs", step=step
            )

    def _drain_telemetry(self, step: int) -> None:
        """Forward this step's worker events; sample liveness gauges.

        Runs in the quiescent window :meth:`phase_reduce` opened — every
        worker is parked at the next step-start barrier, so the ring
        count resets race with nothing.
        """
        for ev in self.runtime.drain_telemetry():
            self.tracer.emit(ev)
        now = time.monotonic()
        for rank, age in enumerate(self.runtime.heartbeat_ages(now)):
            self.tracer.emit(
                Event(
                    GAUGE, "heartbeat_age", now, value=age, cat="liveness",
                    rank=rank, step=step,
                )
            )
        # Ring overflow means the trace is *incomplete* — record that in
        # the trace itself so `trace report` can warn loudly instead of
        # silently presenting partial data.
        for rank, count in enumerate(self.runtime.telemetry_dropped()):
            if count != self._last_dropped[rank]:
                self._last_dropped[rank] = count
                self.tracer.emit(
                    Event(
                        GAUGE, "telemetry_dropped", now, value=count,
                        cat="telemetry", rank=rank, step=step,
                    )
                )

    def step_record(self, ctx) -> dict:
        return {"active_per_rank": list(self._active_counts)}

    # -- inspection ----------------------------------------------------------

    def gather_field(self, name: str) -> np.ndarray:
        return self.exchanger.gather_global(
            [getattr(b, name) for b in self.blocks]
        )

    def worker_phase_metrics(self):
        """Merged per-phase wall-time counters from every worker."""
        return self.runtime.worker_metrics()

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        self.runtime.close()

    def __enter__(self) -> "DistBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
