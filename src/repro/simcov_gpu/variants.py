"""The four SIMCoV-GPU optimization prototypes profiled in Fig 4 (§3.4)."""

from __future__ import annotations

import enum


class GpuVariant(enum.Enum):
    """Which GPU optimizations are enabled.

    - ``UNOPTIMIZED``: iterates the entire simulation space every step and
      accumulates statistics with atomics inside the update sweep;
    - ``FAST_REDUCTION``: tree reduction only;
    - ``MEMORY_TILING``: active-tile tracking only;
    - ``COMBINED``: both (the production configuration).
    """

    UNOPTIMIZED = "unoptimized"
    FAST_REDUCTION = "fast_reduction"
    MEMORY_TILING = "memory_tiling"
    COMBINED = "combined"

    @property
    def use_tiling(self) -> bool:
        return self in (GpuVariant.MEMORY_TILING, GpuVariant.COMBINED)

    @property
    def use_tree_reduction(self) -> bool:
        return self in (GpuVariant.FAST_REDUCTION, GpuVariant.COMBINED)

    @property
    def label(self) -> str:
        """Fig 4 y-axis label."""
        return {
            GpuVariant.UNOPTIMIZED: "Unoptimized",
            GpuVariant.FAST_REDUCTION: "Fast Reduction",
            GpuVariant.MEMORY_TILING: "Memory Tiling",
            GpuVariant.COMBINED: "Combined",
        }[self]
