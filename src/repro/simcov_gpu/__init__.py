"""SIMCoV-GPU: the paper's multinode, multi-GPU implementation (§3).

The domain is decomposed over simulated GPU devices
(:mod:`repro.gpusim`); each step is a fixed sequence of kernels separated
by halo-copy waves (Fig 2):

- the T-cell tiebreak is the **single-exchange** bid protocol of §3.1:
  every T cell stores a random bid at its own voxel and (atomic-max) at its
  target; one max-merge halo wave makes every device agree on every
  winner, with deterministic erase-at-source / instantiate-at-target;
- **memory tiling** (§3.2): kernels run only over active tiles; a periodic
  sweep (period <= tile side, one-tile activation buffer, ghost tiles
  pinned) re-derives activity;
- **fast reduction** (§3.3): per-step statistics are computed by a
  shared-memory tree reduction over every voxel instead of atomics
  scattered through the update kernels.

:class:`~repro.simcov_gpu.variants.GpuVariant` selects which of the two
optimizations are enabled — the four prototypes profiled in Fig 4.
"""

from repro.simcov_gpu.variants import GpuVariant
from repro.simcov_gpu.simulation import SimCovGPU

__all__ = ["SimCovGPU", "GpuVariant"]
