"""The SIMCoV-GPU simulation driver.

Per-step kernel/copy schedule (Fig 2, with the §4.1 staging):

1. replicated vascular-pool update; aging + extravasation kernels;
2. **halo wave A** (boundary state): epi_state, T-cell occupancy + payload,
   concentrations — every device's ghost halo now mirrors its neighbors;
3. choose-direction/bid kernels over active tiles;
4. **halo wave B** (the single tiebreak exchange): intent fields REPLACE,
   bid fields MAX-merged — after this every copy of every voxel holds the
   winning bid;
5. assign-winners + move/bind kernels (purely local, deterministic:
   winners are instantiated by the target's owner and erased by the
   source's owner, Fig 2);
6. epithelial-update + production kernels;
7. **halo wave C** (concentrations) + diffusion kernels;
8. statistics reduction (atomics or tree, per variant) + cross-device
   reduce; periodic tile-activation sweep.

The schedule above is declared as data by
:class:`~repro.engine.gpu.GpuClusterBackend` and executed by the shared
:class:`~repro.engine.engine.StepEngine`; this class is a thin shim that
re-exports the backend's state under the historical public API.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SimCovParams
from repro.engine.driver import EngineDriver
from repro.grid.decomposition import DecompositionKind
from repro.simcov_gpu.variants import GpuVariant


class SimCovGPU(EngineDriver):
    """Device-parallel SIMCoV on the GPU cluster simulator.

    Parameters
    ----------
    params, seed:
        As for the other implementations; identical seeds give bitwise
        identical simulations.
    num_devices:
        GPUs (Perlmutter packs 4 per node).
    variant:
        Optimization prototype (Fig 4); default COMBINED.
    tile_shape:
        Memory-tile extents (§3.2); must be at most the per-device
        subdomain.  Default 8 per dimension.
    sweep_period:
        Steps between tile-activation sweeps; default (and maximum sound
        value) is the smallest tile side.
    """

    def __init__(
        self,
        params: SimCovParams,
        num_devices: int,
        seed: int = 0,
        variant: GpuVariant = GpuVariant.COMBINED,
        gpus_per_node: int = 4,
        tile_shape: tuple[int, ...] | None = None,
        sweep_period: int | None = None,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        capacity_bytes: int | None = None,
        tracer=None,
    ):
        # Deferred: repro.engine.gpu itself imports from this package.
        from repro.engine.gpu import GpuClusterBackend

        backend = GpuClusterBackend(
            params,
            num_devices,
            seed=seed,
            variant=variant,
            gpus_per_node=gpus_per_node,
            tile_shape=tile_shape,
            sweep_period=sweep_period,
            decomposition=decomposition,
            seed_gids=seed_gids,
            structure_gids=structure_gids,
            capacity_bytes=capacity_bytes,
        )
        self._init_engine(backend, tracer=tracer)
        self.variant = backend.variant
        self.decomp = backend.decomp
        self.cluster = backend.cluster
        self.exchanger = backend.exchanger
        self.blocks = backend.blocks
        self.intents = backend.intents
        self.tiles = backend.tiles
        self.sweep_period = backend.sweep_period

    # -- inspection ------------------------------------------------------------------

    def active_fraction(self) -> float:
        return self.backend.active_fraction()
