"""The SIMCoV-GPU simulation driver.

Per-step kernel/copy schedule (Fig 2, with the §4.1 staging):

1. replicated vascular-pool update; aging + extravasation kernels;
2. **halo wave A** (boundary state): epi_state, T-cell occupancy + payload,
   concentrations — every device's ghost halo now mirrors its neighbors;
3. choose-direction/bid kernels over active tiles;
4. **halo wave B** (the single tiebreak exchange): intent fields REPLACE,
   bid fields MAX-merged — after this every copy of every voxel holds the
   winning bid;
5. assign-winners + move/bind kernels (purely local, deterministic:
   winners are instantiated by the target's owner and erased by the
   source's owner, Fig 2);
6. epithelial-update + production kernels;
7. **halo wave C** (concentrations) + diffusion kernels;
8. statistics reduction (atomics or tree, per variant) + cross-device
   reduce; periodic tile-activation sweep.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.seeding import apply_seeds, seed_infections
from repro.core.state import EpiState, VoxelBlock
from repro.core.stats import REDUCED_FIELDS, StepStats, TimeSeries
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.spec import GridSpec
from repro.grid.tiling import TileGrid
from repro.gpusim.cluster import GpuCluster
from repro.gpusim.ledger import KernelCategory
from repro.gpusim.reduction import atomic_reduce, tree_reduce_device
from repro.rng.streams import VoxelRNG
from repro.simcov_gpu.variants import GpuVariant

#: Halo wave A fields (boundary state; payload rides along so arrivals can
#: be instantiated from ghost copies).
_WAVE_A = ("epi_state", "tcell", "tcell_tissue_time", "tcell_bound_time")
#: Halo wave C fields (post-production concentrations).
_WAVE_C = ("virions", "chemokine")


class SimCovGPU:
    """Device-parallel SIMCoV on the GPU cluster simulator.

    Parameters
    ----------
    params, seed:
        As for the other implementations; identical seeds give bitwise
        identical simulations.
    num_devices:
        GPUs (Perlmutter packs 4 per node).
    variant:
        Optimization prototype (Fig 4); default COMBINED.
    tile_shape:
        Memory-tile extents (§3.2); must be at most the per-device
        subdomain.  Default 8 per dimension.
    sweep_period:
        Steps between tile-activation sweeps; default (and maximum sound
        value) is the smallest tile side.
    """

    def __init__(
        self,
        params: SimCovParams,
        num_devices: int,
        seed: int = 0,
        variant: GpuVariant = GpuVariant.COMBINED,
        gpus_per_node: int = 4,
        tile_shape: tuple[int, ...] | None = None,
        sweep_period: int | None = None,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        capacity_bytes: int | None = None,
    ):
        self.params = params
        self.variant = variant
        self.rng = VoxelRNG(seed)
        self.spec = GridSpec(params.dim)
        self.decomp = Decomposition.make(self.spec, num_devices, decomposition)
        from repro.gpusim.device import A100_BYTES

        self.cluster = GpuCluster(
            num_devices,
            gpus_per_node=gpus_per_node,
            capacity_bytes=capacity_bytes or A100_BYTES,
        )
        self.exchanger = HaloExchanger(
            self.decomp, on_message=self.cluster.halo_message_hook()
        )
        self.blocks = [
            VoxelBlock(self.spec, self.decomp.boxes[d]) for d in range(num_devices)
        ]
        self.intents = [kernels.IntentArrays(b.shape) for b in self.blocks]
        self._scratch = [
            (np.zeros_like(b.virions), np.zeros_like(b.chemokine))
            for b in self.blocks
        ]
        # Register every buffer against the device's memory capacity — the
        # §4.2 sizing constraint ("approximately the number of voxels that
        # fit into the A100s' available memory") enforced for real.
        for d, (block, intents, scratch) in enumerate(
            zip(self.blocks, self.intents, self._scratch)
        ):
            device = self.cluster.devices[d]
            for name in VoxelBlock.STATE_FIELDS + ("epi_timer", "gid"):
                device.adopt(name, getattr(block, name))
            for name in (
                kernels.IntentArrays.REPLACE_FIELDS
                + kernels.IntentArrays.MAX_FIELDS
            ):
                device.adopt(f"intent_{name}", getattr(intents, name))
            device.adopt("scratch_virions", scratch[0])
            device.adopt("scratch_chemokine", scratch[1])
        if tile_shape is None:
            tile_shape = tuple(
                min(8, s) for s in self.decomp.boxes[0].shape
            )
        domain = self.spec.domain
        self.tiles = []
        for d in range(num_devices):
            box = self.decomp.boxes[d]
            # Only sides facing another device carry ghost traffic and need
            # their tile shell pinned (§3.2).
            pin = [
                (box.lo[a] > domain.lo[a], box.hi[a] < domain.hi[a])
                for a in range(self.spec.ndim)
            ]
            self.tiles.append(
                TileGrid(
                    box.shape,
                    tuple(min(t, s) for t, s in zip(tile_shape, box.shape)),
                    ghost=1,
                    pin_sides=pin,
                )
            )
        if variant.use_tiling:
            max_period = min(tg.max_sweep_period() for tg in self.tiles)
            self.sweep_period = (
                min(sweep_period, max_period) if sweep_period else max_period
            )
        else:
            # No tiling: every tile is permanently active, no sweeps.
            for tg in self.tiles:
                tg.activate_all()
            self.sweep_period = 0
        if structure_gids is not None:
            from repro.core.structure import apply_structure

            for b in self.blocks:
                apply_structure(b, structure_gids)
        if seed_gids is None:
            seed_gids = seed_infections(params, self.rng)
        self.seed_gids = np.asarray(seed_gids, dtype=np.int64)
        for b in self.blocks:
            apply_seeds(b, self.seed_gids)
        self.pool = 0.0
        self.step_num = 0
        self.series = TimeSeries()
        #: Per-step ledger deltas for the performance model.
        self.step_work: list[dict] = []

    # -- tiled kernel launching --------------------------------------------------

    def _regions(self, d: int) -> list[tuple[slice, ...]]:
        """Padded-array regions of device ``d``'s active tiles."""
        g = self.blocks[d].ghost
        return [
            tuple(slice(s.start + g, s.stop + g) for s in sl)
            for sl in self.tiles[d].active_tile_slices()
        ]

    def _active_voxels(self, d: int) -> int:
        return self.tiles[d].active_voxel_count()

    def _launch_tiled(self, d: int, category: KernelCategory, fn) -> None:
        """One kernel launch covering the active tiles of device ``d``.

        The real code launches a single grid over the active-tile list; we
        run ``fn(region)`` per tile but count one launch with the active
        voxel total.
        """
        device = self.cluster.devices[d]

        def body():
            for region in self._regions(d):
                fn(region)

        device.launch(category, self._active_voxels(d), body)

    # -- halo waves -------------------------------------------------------------

    def _exchange(self, fields: tuple[str, ...], mode: MergeMode) -> None:
        for name in fields:
            self.exchanger.exchange(
                [getattr(b, name) for b in self.blocks], mode
            )

    def _exchange_intents(self) -> None:
        """Halo wave B: the single tiebreak exchange of §3.1."""
        for name in kernels.IntentArrays.REPLACE_FIELDS:
            self.exchanger.exchange(
                [getattr(i, name) for i in self.intents], MergeMode.REPLACE
            )
        for name in kernels.IntentArrays.MAX_FIELDS:
            self.exchanger.exchange(
                [getattr(i, name) for i in self.intents], MergeMode.MAX
            )

    # -- statistics ------------------------------------------------------------------

    def _device_stats(self, d: int) -> np.ndarray:
        """One device's stats partials, via the variant's reduction scheme.

        Both schemes sweep *every* owned voxel (§3.3: reducing over the full
        space beats scattering atomics through the update kernels); they
        differ in how values are accumulated.
        """
        block = self.blocks[d]
        device = self.cluster.devices[d]
        sl = block.interior
        state = block.epi_state[sl]
        fields = [
            (state == EpiState.HEALTHY),
            (state == EpiState.INCUBATING),
            (state == EpiState.EXPRESSING),
            (state == EpiState.APOPTOTIC),
            (state == EpiState.DEAD),
            (block.tcell[sl] != 0),
            block.virions[sl],
            block.chemokine[sl],
        ]
        n = state.size
        out = np.empty(len(fields), dtype=np.float64)

        def body():
            for i, f in enumerate(fields):
                arr = np.asarray(f, dtype=np.float64)
                if self.variant.use_tree_reduction:
                    out[i] = tree_reduce_device(device, arr)
                else:
                    out[i] = atomic_reduce(device, arr)

        device.launch(
            KernelCategory.REDUCE_STATS, n * len(fields), body, bytes_per_voxel=8
        )
        return out

    # -- the step ------------------------------------------------------------------------

    def step(self) -> StepStats:
        p = self.params
        t = self.step_num
        nd = self.cluster.num_devices
        ledger_before = self.cluster.ledger.snapshot()

        # Replicated pool update + global attempt schedule.
        if t >= p.tcell_initial_delay:
            self.pool += p.tcell_generation_rate
        self.pool -= self.pool / p.tcell_vascular_period
        attempts = kernels.extravasation_attempts(p, self.rng, t, self.pool)

        # Kernels: age + extravasate.
        extr_local = [0] * nd
        moves_local = [0] * nd
        binds_local = [0] * nd
        for d in range(nd):
            self._launch_tiled(
                d, KernelCategory.UPDATE_AGENTS,
                lambda region, d=d: kernels.tcell_age(self.blocks[d], region),
            )
            device = self.cluster.devices[d]
            extr_local[d] = device.launch(
                KernelCategory.UPDATE_AGENTS,
                attempts["gid"].size,
                lambda d=d: kernels.apply_extravasation(p, self.blocks[d], attempts),
            )

        # Halo wave A: boundary state.
        self._exchange(_WAVE_A, MergeMode.REPLACE)

        # Kernels: choose direction + bids.
        for d in range(nd):
            self.intents[d].clear()
            self._launch_tiled(
                d, KernelCategory.UPDATE_AGENTS,
                lambda region, d=d: kernels.tcell_intents(
                    p, self.rng, t, self.blocks[d], self.intents[d], region
                ),
            )

        # Halo wave B: the single tiebreak exchange.
        self._exchange_intents()

        # Kernels: assign winners ("set flips"), then move agents (Fig 2).
        # Two separate launches so every tile's winners are computed against
        # pristine state before any tile commits — on hardware, the kernel
        # boundary is the synchronization point.
        for d in range(nd):
            movesets: list[kernels.MoveSet] = []
            self._launch_tiled(
                d, KernelCategory.UPDATE_AGENTS,
                lambda region, d=d, ms=movesets: ms.append(
                    kernels.compute_moves(self.blocks[d], self.intents[d], region)
                ),
            )

            def move_and_bind(region, d=d, ms=movesets):
                for m in ms:
                    if m.region == region:
                        moves_local[d] += kernels.commit_moves(self.blocks[d], m)
                binds_local[d] += kernels.resolve_binds(
                    p, self.rng, t, self.blocks[d], self.intents[d], region
                )

            self._launch_tiled(d, KernelCategory.UPDATE_AGENTS, move_and_bind)

        # Kernels: epithelial update + production.
        for d in range(nd):
            def epi(region, d=d):
                kernels.epithelial_update(p, self.rng, t, self.blocks[d], region)
                kernels.production_update(p, self.blocks[d], region, step=t)

            self._launch_tiled(d, KernelCategory.UPDATE_AGENTS, epi)

        # Halo wave C: concentrations; diffusion kernels.
        self._exchange(_WAVE_C, MergeMode.REPLACE)
        for d in range(nd):
            kernels.mirror_fields(self.blocks[d])
            sv, sc = self._scratch[d]
            regions = self._regions(d)

            def diffuse(region, d=d, sv=sv, sc=sc):
                kernels.concentration_update(p, self.blocks[d], region, sv, sc)

            self._launch_tiled(d, KernelCategory.UPDATE_AGENTS, diffuse)
            kernels.concentration_commit(p, self.blocks[d], regions, sv, sc, step=t)

        # Statistics: per-device reduction, then cross-device reduce.
        partials = [self._device_stats(d) for d in range(nd)]
        reduced = np.zeros(len(REDUCED_FIELDS), dtype=np.float64)
        for i in range(len(REDUCED_FIELDS)):
            reduced[i] = self.cluster.reduce_scalar([v[i] for v in partials])
        extr = int(self.cluster.reduce_scalar([float(e) for e in extr_local]))
        binds = int(self.cluster.reduce_scalar([float(b) for b in binds_local]))
        moves = int(self.cluster.reduce_scalar([float(m) for m in moves_local]))
        self.pool = max(0.0, self.pool - extr)

        # Periodic tile-activation sweep (§3.2).  Boundary tiles are pinned
        # and buffered inside TileGrid.sweep, so activity arriving from
        # neighbor devices is always covered.
        if self.variant.use_tiling and (t + 1) % self.sweep_period == 0:
            for d in range(nd):
                device = self.cluster.devices[d]
                block = self.blocks[d]
                device.launch(
                    KernelCategory.TILE_SWEEP,
                    block.owned.size,
                    lambda d=d, block=block: self.tiles[d].sweep(
                        block.activity_mask_padded(p.min_chemokine), padded=True
                    ),
                )

        stats = StepStats.from_vector(
            t, reduced, pool=self.pool,
            extravasations=extr, binds=binds, moves=moves,
        )
        self.series.append(stats)
        self.step_work.append(
            {
                "step": t,
                "active_per_device": [self._active_voxels(d) for d in range(nd)],
                "ledger": self.cluster.ledger.minus(ledger_before),
            }
        )
        self.step_num += 1
        return stats

    def run(self, num_steps: int | None = None) -> TimeSeries:
        n = num_steps if num_steps is not None else self.params.num_steps
        for _ in range(n):
            self.step()
        return self.series

    # -- inspection ------------------------------------------------------------------

    def gather_field(self, name: str) -> np.ndarray:
        return self.exchanger.gather_global([getattr(b, name) for b in self.blocks])

    def active_fraction(self) -> float:
        total = sum(b.owned.size for b in self.blocks)
        active = sum(self._active_voxels(d) for d in range(len(self.blocks)))
        return active / total
