"""Helpers shared by the test and benchmark harnesses.

The repo is run from a clean checkout without installation: harness code
that launches subprocesses (example smoke tests, the benchmark entry
point) must propagate ``src/`` on ``PYTHONPATH`` so the child can import
:mod:`repro` from any cwd.  That logic lives here once, used by
``tests/integration/test_examples.py`` and ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import os
import pathlib


def repo_root() -> pathlib.Path:
    """The repository checkout root (parent of ``src/``)."""
    return pathlib.Path(__file__).resolve().parents[2]


def src_dir() -> pathlib.Path:
    """The importable source directory (``<repo>/src``)."""
    return repo_root() / "src"


def subprocess_env(base: dict[str, str] | None = None) -> dict[str, str]:
    """A copy of the environment with ``src/`` prepended to ``PYTHONPATH``.

    Pass the result as ``env=`` to :func:`subprocess.run` so the child
    interpreter can ``import repro`` from a clean checkout, regardless of
    its working directory.  An existing ``PYTHONPATH`` is preserved after
    ``src/``.
    """
    env = dict(os.environ if base is None else base)
    src = str(src_dir())
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = os.pathsep.join([src, existing] if existing else [src])
    return env
