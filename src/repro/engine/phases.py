"""The declarative per-step schedule shared by every implementation.

The paper's core claim (§3, §4.1) is that one staged step schedule runs
identically on sequential, PGAS-CPU and multi-GPU substrates.  This module
encodes that schedule as *data* — an ordered list of :class:`Phase`
objects — instead of prose in three driver docstrings.  The canonical
phase order is:

==================== ======== ==============================================
phase                kind     semantics
==================== ======== ==============================================
open_exchange        exchange start-of-step ghost refresh (PGAS active-region
                              input; no-op elsewhere)
age_extravasate      kernel   T-cell aging + vascular extravasation
boundary_exchange    exchange post-extravasation boundary state / occupancy
                              halo (GPU wave A; PGAS occupancy strips)
intents              kernel   T-cell bind/move target choice + bids
tiebreak_exchange    exchange the single tiebreak exchange of §3.1 (GPU:
                              REPLACE intents + MAX bids; PGAS: intent-RPC
                              delivery, wave 1 of the two-wave tiebreak)
resolve              kernel   assign winners, execute moves and binds
result_exchange      exchange PGAS result-RPC delivery (wave 2); no-op on
                              the single-wave GPU path
apply_results        kernel   PGAS sources apply wave-2 results
epithelial           kernel   infection, state-timer transitions, production
concentration_exchange exchange post-production concentration halo (wave C)
diffuse              kernel   stencil diffusion + decay
reduce               kernel   statistics reduction (allreduce / atomics /
                              tree + cross-device reduce)
tile_sweep           kernel   periodic tile-activation sweep (§3.2, GPU only)
==================== ======== ==============================================

A backend declares its own schedule from this vocabulary — field sets and
merge modes for the exchange barriers differ per substrate — and the
:class:`~repro.engine.engine.StepEngine` executes it with per-phase
timing/counter hooks.  Phases a backend cannot express are kept in the
schedule as explicit no-ops (skips), so the mapping between substrates
stays visible in the metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.grid.halo import MergeMode


class PhaseKind(enum.Enum):
    """What a phase does: local kernel work or a communication barrier."""

    KERNEL = "kernel"
    EXCHANGE = "exchange"


@dataclass(frozen=True)
class FieldSet:
    """One group of arrays shipped by an exchange barrier.

    ``scope`` names the holder: ``"state"`` for
    :class:`~repro.core.state.VoxelBlock` fields, ``"intent"`` for
    :class:`~repro.core.kernels.IntentArrays` fields.  ``merge`` is the
    ghost-merge semantics (REPLACE for per-source data, MAX for the
    bid-max tiebreak).
    """

    scope: str
    fields: tuple[str, ...]
    merge: MergeMode

    def __post_init__(self):
        if self.scope not in ("state", "intent"):
            raise ValueError(f"unknown field scope {self.scope!r}")


@dataclass(frozen=True)
class Phase:
    """One entry of the per-step schedule."""

    name: str
    kind: PhaseKind
    #: For EXCHANGE phases: what is shipped and how ghosts merge.  Empty
    #: tuples mark barriers the backend maps to a non-halo primitive (RPC
    #: delivery) or to a no-op.
    exchanges: tuple[FieldSet, ...] = ()
    #: One-line description shown in schedule dumps.
    doc: str = ""

    def __post_init__(self):
        if self.exchanges and self.kind is not PhaseKind.EXCHANGE:
            raise ValueError(f"kernel phase {self.name!r} cannot carry field sets")


def kernel(name: str, doc: str = "") -> Phase:
    """A local-compute phase."""
    return Phase(name, PhaseKind.KERNEL, doc=doc)


def exchange(name: str, *field_sets: FieldSet, doc: str = "") -> Phase:
    """A communication barrier shipping ``field_sets`` (possibly none)."""
    return Phase(name, PhaseKind.EXCHANGE, exchanges=tuple(field_sets), doc=doc)


#: Canonical phase names in canonical order (see module docstring).
PHASE_ORDER = (
    "open_exchange",
    "age_extravasate",
    "boundary_exchange",
    "intents",
    "tiebreak_exchange",
    "resolve",
    "result_exchange",
    "apply_results",
    "epithelial",
    "concentration_exchange",
    "diffuse",
    "reduce",
    "tile_sweep",
)

#: Canonical kind per phase name.
PHASE_KINDS = {
    name: (PhaseKind.EXCHANGE if name.endswith("_exchange") else PhaseKind.KERNEL)
    for name in PHASE_ORDER
}

#: Phases every schedule must carry (the model cannot run without them).
REQUIRED_PHASES = frozenset(
    {"age_extravasate", "intents", "resolve", "epithelial", "diffuse", "reduce"}
)


def validate_schedule(schedule: tuple[Phase, ...] | list[Phase]) -> None:
    """Reject schedules that are not a subsequence of the canonical order.

    Raises ``ValueError`` on unknown names, duplicates, kind mismatches,
    missing required phases, or phases out of canonical order.
    """
    names = [p.name for p in schedule]
    unknown = [n for n in names if n not in PHASE_KINDS]
    if unknown:
        raise ValueError(f"unknown phase(s) {unknown}; canonical set: {PHASE_ORDER}")
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"duplicate phase(s) {dupes}")
    for p in schedule:
        if p.kind is not PHASE_KINDS[p.name]:
            raise ValueError(
                f"phase {p.name!r} declared {p.kind.value}, canonical kind is "
                f"{PHASE_KINDS[p.name].value}"
            )
    missing = REQUIRED_PHASES - set(names)
    if missing:
        raise ValueError(f"schedule missing required phase(s) {sorted(missing)}")
    order = [PHASE_ORDER.index(n) for n in names]
    if order != sorted(order):
        raise ValueError(
            f"schedule order {names} violates canonical order {PHASE_ORDER}"
        )


def describe_schedule(schedule: tuple[Phase, ...] | list[Phase]) -> str:
    """Human-readable schedule table (debugging/docs helper)."""
    lines = []
    for p in schedule:
        detail = ""
        if p.kind is PhaseKind.EXCHANGE and p.exchanges:
            detail = "; ".join(
                f"{fs.scope}[{','.join(fs.fields)}]:{fs.merge.name}"
                for fs in p.exchanges
            )
        lines.append(f"{p.name:<24}{p.kind.value:<10}{detail or p.doc}")
    return "\n".join(lines)
