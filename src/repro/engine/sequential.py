"""The sequential execution backend: one undivided block, no communication.

This is the ground-truth substrate — every exchange barrier in the
canonical schedule maps to a no-op because a single
:class:`~repro.core.state.VoxelBlock` covers the whole domain and its
ghosts only ever mirror the no-flux boundary.  Both parallel backends
must reproduce its per-step state exactly (see tests/integration),
because all randomness is keyed by global voxel id.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.core.stats import stats_vector
from repro.engine.backend import ExecutionBackend
from repro.engine.phases import Phase, exchange, kernel


class SequentialBackend(ExecutionBackend):
    """Whole-domain updates in canonical phase order."""

    name = "sequential"

    def __init__(
        self,
        params: SimCovParams,
        seed: int = 0,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
    ):
        self._init_common(params, seed)
        self.block = VoxelBlock(self.spec, self.spec.domain)
        self._seed_blocks([self.block], seed_gids, structure_gids)
        self.intents = kernels.IntentArrays(self.block.shape)
        self._scratch_v = np.zeros_like(self.block.virions)
        self._scratch_c = np.zeros_like(self.block.chemokine)

    # -- schedule ------------------------------------------------------------

    def schedule(self) -> tuple[Phase, ...]:
        """The full canonical schedule; every barrier is a no-op here."""
        return (
            exchange("open_exchange", doc="no-op: single block"),
            kernel("age_extravasate"),
            exchange("boundary_exchange", doc="no-op: single block"),
            kernel("intents"),
            exchange("tiebreak_exchange", doc="no-op: single block"),
            kernel("resolve"),
            exchange("result_exchange", doc="no-op: single block"),
            kernel("apply_results", doc="no-op: nothing crosses a boundary"),
            kernel("epithelial"),
            exchange("concentration_exchange", doc="no-op: single block"),
            kernel("diffuse"),
            kernel("reduce"),
            kernel("tile_sweep", doc="no-op: no tiling"),
        )

    # -- kernel phases -------------------------------------------------------

    def phase_age_extravasate(self, ctx) -> None:
        kernels.tcell_age(self.block, self.block.interior)
        ctx.extravasations = kernels.apply_extravasation(
            self.params, self.block, ctx.attempts
        )

    def phase_intents(self, ctx) -> None:
        self.intents.clear()
        kernels.tcell_intents(
            self.params, self.rng, ctx.step, self.block, self.intents,
            self.block.interior,
        )

    def phase_resolve(self, ctx) -> None:
        interior = self.block.interior
        ctx.moves = kernels.resolve_moves(self.block, self.intents, interior)
        ctx.binds = kernels.resolve_binds(
            self.params, self.rng, ctx.step, self.block, self.intents, interior
        )

    def phase_apply_results(self, ctx):
        return False

    def phase_epithelial(self, ctx) -> None:
        interior = self.block.interior
        kernels.epithelial_update(
            self.params, self.rng, ctx.step, self.block, interior
        )
        kernels.production_update(self.params, self.block, interior, step=ctx.step)

    def phase_diffuse(self, ctx) -> None:
        interior = self.block.interior
        kernels.mirror_fields(self.block)
        kernels.concentration_update(
            self.params, self.block, interior, self._scratch_v, self._scratch_c
        )
        kernels.concentration_commit(
            self.params, self.block, [interior], self._scratch_v,
            self._scratch_c, step=ctx.step,
        )

    def phase_reduce(self, ctx) -> None:
        ctx.reduced = stats_vector(self.block)

    def phase_tile_sweep(self, ctx):
        return False

    # -- inspection ----------------------------------------------------------

    def gather_field(self, name: str) -> np.ndarray:
        return getattr(self.block, name)[self.block.interior].copy()

    def activity_fraction(self) -> float:
        """Fraction of voxels active now (perf-model workload input)."""
        mask = self.block.activity_mask(self.params.min_chemokine)
        return float(mask.mean())
