"""The sequential execution backend: one undivided block, no communication.

This is the ground-truth substrate — every exchange barrier in the
canonical schedule maps to a no-op because a single
:class:`~repro.core.state.VoxelBlock` covers the whole domain and its
ghosts only ever mirror the no-flux boundary.  Both parallel backends
must reproduce its per-step state exactly (see tests/integration),
because all randomness is keyed by global voxel id.

Kernel phases run over the :class:`~repro.engine.activity.ActivityGate`
region — the active bounding box re-derived by a periodic ``tile_sweep``
(§3.2) — instead of the whole domain.  Gating is bitwise-invisible (the
gate's contract); construct with ``active_gating=False`` to force the
whole-domain baseline the benchmark harness compares against.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.core.stats import stats_vector
from repro.engine.activity import ActivityGate
from repro.engine.backend import ExecutionBackend
from repro.engine.phases import Phase, exchange, kernel


class SequentialBackend(ExecutionBackend):
    """Whole-domain semantics, active-region execution, canonical order.

    Parameters
    ----------
    params, seed, seed_gids, structure_gids:
        As before.
    active_gating:
        Skip quiescent space via the §3.2 periodic sweep (default).
        ``False`` processes the whole domain every step (the reference
        baseline; results are bitwise identical either way).
    tile_shape, sweep_period:
        Activity-gate tuning, as for the GPU backend: tile extents
        (default 8 per dimension) and steps between sweeps (default and
        maximum sound value: the smallest tile side).
    """

    name = "sequential"

    def __init__(
        self,
        params: SimCovParams,
        seed: int = 0,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        active_gating: bool = True,
        tile_shape: tuple[int, ...] | None = None,
        sweep_period: int | None = None,
    ):
        self._init_common(params, seed)
        self.block = VoxelBlock(self.spec, self.spec.domain)
        self._seed_blocks([self.block], seed_gids, structure_gids)
        self.intents = kernels.IntentArrays(self.block.shape)
        self._scratch_v = np.zeros_like(self.block.virions)
        self._scratch_c = np.zeros_like(self.block.chemokine)
        self.gate = ActivityGate(
            self.block,
            params.min_chemokine,
            sweep_period=sweep_period,
            tile_shape=tile_shape,
            enabled=active_gating,
        )

    # -- schedule ------------------------------------------------------------

    def schedule(self) -> tuple[Phase, ...]:
        """The full canonical schedule; every barrier is a no-op here."""
        return (
            exchange("open_exchange", doc="no-op: single block"),
            kernel("age_extravasate"),
            exchange("boundary_exchange", doc="no-op: single block"),
            kernel("intents"),
            exchange("tiebreak_exchange", doc="no-op: single block"),
            kernel("resolve"),
            exchange("result_exchange", doc="no-op: single block"),
            kernel("apply_results", doc="no-op: nothing crosses a boundary"),
            kernel("epithelial"),
            exchange("concentration_exchange", doc="no-op: single block"),
            kernel("diffuse"),
            kernel("reduce"),
            kernel("tile_sweep", doc="periodic active-region sweep (§3.2)"),
        )

    # -- kernel phases -------------------------------------------------------

    def phase_age_extravasate(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        kernels.tcell_age(self.block, region)
        ctx.extravasations = kernels.apply_extravasation(
            self.params, self.block, ctx.attempts, region
        )

    def phase_intents(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        self.intents.clear(region)
        kernels.tcell_intents(
            self.params, self.rng, ctx.step, self.block, self.intents, region
        )

    def phase_resolve(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        ctx.moves = kernels.resolve_moves(self.block, self.intents, region)
        ctx.binds = kernels.resolve_binds(
            self.params, self.rng, ctx.step, self.block, self.intents, region
        )

    def phase_apply_results(self, ctx):
        return False

    def phase_epithelial(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        kernels.epithelial_update(
            self.params, self.rng, ctx.step, self.block, region
        )
        kernels.production_update(self.params, self.block, region, step=ctx.step)

    def phase_diffuse(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        kernels.mirror_fields(self.block)
        kernels.concentration_update(
            self.params, self.block, region, self._scratch_v, self._scratch_c
        )
        kernels.concentration_commit(
            self.params, self.block, [region], self._scratch_v,
            self._scratch_c, step=ctx.step,
        )

    def phase_reduce(self, ctx) -> None:
        # Statistics sweep the full space regardless of gating (§3.3).
        ctx.reduced = stats_vector(self.block)

    def phase_tile_sweep(self, ctx):
        if not self.gate.due(ctx.step):
            return False
        self.gate.sweep()

    def step_record(self, ctx) -> dict:
        if self.tracer:
            self.tracer.gauge(
                "active_voxels", self.gate.count, cat="gating",
                step=ctx.step, gated=self.gate.enabled,
            )
        return {"active_voxels": self.gate.count}

    # -- inspection ----------------------------------------------------------

    def gather_field(self, name: str) -> np.ndarray:
        return getattr(self.block, name)[self.block.interior].copy()

    def activity_fraction(self) -> float:
        """Fraction of voxels active now (perf-model workload input)."""
        mask = self.block.activity_mask(self.params.min_chemokine)
        return float(mask.mean())
