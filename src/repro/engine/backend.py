"""The execution-backend protocol the StepEngine drives.

A backend owns the substrate state (blocks, runtimes, clusters, tiles)
and implements the kernel phases of its declared schedule as
``phase_<name>`` methods plus one :meth:`ExecutionBackend.exchange`
method that maps exchange barriers onto its communication primitive —
RPC waves (PGAS), halo copies (GPU cluster), or a no-op (sequential).

A phase handler returns ``False`` to report "reached but skipped" (a
barrier with nothing to ship, a periodic phase that is not due); any
other return value counts as an execution in the engine's metrics.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.params import SimCovParams
from repro.core.seeding import apply_seeds, seed_infections
from repro.core.state import VoxelBlock
from repro.engine.phases import Phase, PhaseKind
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG
from repro.telemetry.tracer import NULL_TRACER


class ExecutionBackend(abc.ABC):
    """Substrate adapter: state + phase implementations for one platform."""

    #: Short identifier used in logs/records.
    name: str = "backend"

    #: Telemetry spigot; the engine installs its tracer here when tracing
    #: is on, so backends can emit gating/comm counters and sub-op spans.
    #: The class default is the shared no-op tracer — ``if self.tracer:``
    #: is the whole cost when telemetry is off.
    tracer = NULL_TRACER

    params: SimCovParams
    rng: VoxelRNG
    spec: GridSpec
    seed_gids: np.ndarray

    # -- construction helpers ------------------------------------------------

    def _init_common(self, params: SimCovParams, seed: int) -> None:
        """Shared constructor prologue: params, RNG, grid spec."""
        self.params = params
        self.rng = VoxelRNG(seed)
        self.spec = GridSpec(params.dim)

    def _seed_blocks(
        self,
        blocks: list[VoxelBlock],
        seed_gids: np.ndarray | None,
        structure_gids: np.ndarray | None,
    ) -> None:
        """Apply structure + FOI seeds identically to every block."""
        if structure_gids is not None:
            from repro.core.structure import apply_structure

            for b in blocks:
                apply_structure(b, structure_gids)
        if seed_gids is None:
            seed_gids = seed_infections(self.params, self.rng)
        self.seed_gids = np.asarray(seed_gids, dtype=np.int64)
        for b in blocks:
            apply_seeds(b, self.seed_gids)

    # -- the protocol --------------------------------------------------------

    @abc.abstractmethod
    def schedule(self) -> tuple[Phase, ...]:
        """This backend's per-step schedule (validated by the engine)."""

    def begin_step(self, ctx) -> None:
        """Reset per-step scratch state / take accounting snapshots."""

    def execute(self, phase: Phase, ctx):
        """Dispatch one phase; ``False`` means skipped."""
        if phase.kind is PhaseKind.EXCHANGE:
            return self.exchange(phase, ctx)
        handler = getattr(self, f"phase_{phase.name}", None)
        if handler is None:
            return False
        return handler(ctx)

    def exchange(self, phase: Phase, ctx):
        """Map an exchange barrier to this substrate's primitive.

        Default: no communication (the sequential substrate)."""
        return False

    def step_record(self, ctx) -> dict:
        """Backend-specific extras merged into the engine's per-step
        ``step_work`` record (ledger deltas, comm counters, ...)."""
        return {}

    # -- inspection ----------------------------------------------------------

    @abc.abstractmethod
    def gather_field(self, name: str) -> np.ndarray:
        """Assembled global interior view of one voxel field."""
