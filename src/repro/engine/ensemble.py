"""Batched ensemble execution: N simulations as one vectorized program.

The paper's headline studies are ensembles (the Fig 8 FOI sweep runs 1024
replicas), yet a Python loop over solo runs pays the full interpreter +
numpy dispatch overhead N times per step.  Following DeepABM's design,
:class:`EnsembleBackend` stacks N same-shape replicas along a leading
batch axis (:class:`~repro.core.state.EnsembleBlock`) and executes every
StepEngine phase **once** for the whole batch — per-call overhead is paid
once and the arrays are large enough for numpy (or any injected ``xp``
module) to stream.

Exactness contract: under numpy, member ``b`` of a batched run is
**bitwise identical** to the solo sequential run with that member's
(params, seed) — the same guarantee the activity gate and the distributed
runtime already carry.  The argument (DESIGN.md §4d):

- every kernel is elementwise over voxels, and elementwise double/int ops
  are batch-invariant;
- randomness is keyed ``(member_seed, stream, step, voxel)`` and hashed
  per element (:class:`~repro.rng.streams.EnsembleRNG`), so draws match
  the member's solo :class:`~repro.rng.streams.VoxelRNG` exactly;
- the gate region is the **union** bounding box of the members' active
  sets — a superset of each member's own region, which the gate contract
  makes bitwise-invisible;
- per-member scalar state (vascular pools) evolves by elementwise vector
  ops that reproduce each solo run's float sequence, and genuinely ragged
  work (extravasation attempt schedules, FOI seeding) runs in short
  per-member loops over solo-layout member views;
- the stats reduction is probe-guarded
  (:func:`repro.core.stats._batched_sum_exact`): the vectorized sum is
  used only on layouts where it is provably bitwise-equal to per-member
  sums.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core import kernels
from repro.core.params import ParamsStack, SimCovParams
from repro.core.seeding import apply_seeds, seed_infections
from repro.core.state import EnsembleBlock
from repro.core.stats import REDUCED_FIELDS, StepStats, stats_vectors
from repro.core.xp import get_array_module
from repro.engine.backend import ExecutionBackend
from repro.engine.driver import EngineDriver
from repro.engine.engine import StepContext, StepEngine
from repro.engine.phases import Phase, exchange, kernel
from repro.grid.spec import GridSpec
from repro.grid.tiling import TileGrid
from repro.rng.streams import EnsembleRNG


def _dilate_spatial(mask: np.ndarray) -> np.ndarray:
    """:func:`repro.grid.tiling._dilate` over the spatial axes only — the
    leading batch axis must never leak activity between members.  Per
    member this is exactly ``_dilate(mask[b])`` (same axis order, same
    shape-<2 skip rule)."""
    out = mask.copy()
    for d in range(1, mask.ndim):
        if mask.shape[d] < 2:
            continue
        prev = out.copy()
        lo = [slice(None)] * mask.ndim
        hi = [slice(None)] * mask.ndim
        lo[d], hi[d] = slice(None, -1), slice(1, None)
        out[tuple(hi)] |= prev[tuple(lo)]
        out[tuple(lo)] |= prev[tuple(hi)]
    return out


def _tile_any_spatial(mask, tile_shape, tiles_per_dim) -> np.ndarray:
    """Batched :func:`repro.grid.tiling._tile_any`: per-tile ``any`` over
    each member's owned-shape slice (ragged edge tiles padded False)."""
    n_members = mask.shape[0]
    full_shape = tuple(n * t for n, t in zip(tiles_per_dim, tile_shape))
    if full_shape != mask.shape[1:]:
        full = np.zeros((n_members,) + full_shape, dtype=bool)
        full[(slice(None),) + tuple(slice(0, s) for s in mask.shape[1:])] = mask
        mask = full
    blocked = [n_members]
    for n, t in zip(tiles_per_dim, tile_shape):
        blocked += [n, t]
    axes = tuple(range(2, 2 * len(tile_shape) + 1, 2))
    return mask.reshape(blocked).any(axis=axes)


class EnsembleActivityGate:
    """Per-member activity tracking with a shared union execution region.

    Each member gets its own §3.2 tile sweep — computed for the whole
    batch at once with spatial-axis dilation/tiling — so telemetry sees
    the true per-member active set.  Kernels, however, execute over one
    region: the union bounding box across members (with the full batch
    axis in front) — a bitwise-invisible superset for every member.
    """

    def __init__(
        self,
        block: EnsembleBlock,
        min_chemokine,
        sweep_period: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        enabled: bool = True,
    ):
        self.block = block
        self.min_chemokine = min_chemokine
        self.enabled = bool(enabled)
        owned = block.owned.shape
        n_members = block.batch
        if tile_shape is None:
            tile_shape = tuple(min(8, s) for s in owned)
        else:
            tile_shape = tuple(min(int(t), s) for t, s in zip(tile_shape, owned))
        #: Geometry reference (validates tile args; per-member masks are
        #: swept batched, matching a no-pin TileGrid per member bitwise).
        self.tile_geometry = TileGrid(
            owned, tile_shape, ghost=block.ghost,
            pin_sides=np.zeros((len(owned), 2), dtype=bool),
        )
        self.tile_shape = self.tile_geometry.tile_shape
        max_period = self.tile_geometry.max_sweep_period()
        if sweep_period is None:
            sweep_period = max_period
        sweep_period = int(sweep_period)
        if not 1 <= sweep_period <= max_period:
            raise ValueError(
                f"sweep_period {sweep_period} outside sound range "
                f"[1, {max_period}] for tiles {tile_shape}"
            )
        self.sweep_period = sweep_period
        g = block.ghost
        self._full_region = (slice(0, n_members),) + tuple(
            slice(g, s - g) for s in block.spatial_shape
        )
        #: Everything starts active, like the solo gate.
        self._masks = np.ones((n_members,) + owned, dtype=bool)
        self.member_counts = np.full(
            n_members, int(np.prod(owned)), dtype=np.int64
        )
        self._region: tuple[slice, ...] | None = self._full_region

    # -- the sweep rule -----------------------------------------------------

    def due(self, step: int) -> bool:
        """Same cadence as the solo gate (the sweep at the end of step
        ``s`` covers steps ``s+1 .. s+sweep_period``)."""
        return self.enabled and (step + 1) % self.sweep_period == 0

    def sweep(self) -> int:
        """Re-derive each member's active set from its batch slice.

        One batched pass replicates per member what a no-pin
        :meth:`TileGrid.sweep` on its padded mask would do: dilate the
        padded mask, crop to owned, reduce per tile, dilate the tile
        flags, expand back to voxels.
        """
        if not self.enabled:
            return 0
        raw = self.block.xp.asnumpy(
            self.block.activity_mask_padded(self.min_chemokine)
        )
        g = self.block.ghost
        owned = self.block.owned.shape
        n_members = raw.shape[0]
        crop = (slice(None),) + tuple(slice(g, g + s) for s in owned)
        mask = _dilate_spatial(raw)[crop]
        if self.sweep_period > 1:
            geo = self.tile_geometry
            active = _dilate_spatial(
                _tile_any_spatial(mask, geo.tile_shape, geo.tiles_per_dim)
            )
            for d, t in enumerate(geo.tile_shape):
                active = active.repeat(t, axis=d + 1)
            self._masks = active[
                (slice(None),) + tuple(slice(0, s) for s in owned)
            ].copy()
        else:
            self._masks = np.ascontiguousarray(mask)
        self.member_counts = self._masks.reshape(n_members, -1).sum(axis=1)
        self._region = self._bbox()
        return int(np.prod(owned)) * n_members

    def _bbox(self) -> tuple[slice, ...] | None:
        """Union bounding box across members (None if every member idles)."""
        union = self._masks.any(axis=0)
        if not union.any():
            return None
        g = self.block.ghost
        sls = []
        for axis in range(union.ndim):
            other = tuple(a for a in range(union.ndim) if a != axis)
            proj = union.any(axis=other)
            idx = np.nonzero(proj)[0]
            sls.append(slice(int(idx[0]) + g, int(idx[-1]) + 1 + g))
        return (slice(0, self._masks.shape[0]),) + tuple(sls)

    # -- consumers ----------------------------------------------------------

    def region(self) -> tuple[slice, ...] | None:
        """Batched padded-array slices kernels process (None if all idle)."""
        if not self.enabled:
            return self._full_region
        return self._region

    @property
    def count(self) -> int:
        """Total active voxels summed over members (the work gauge)."""
        if not self.enabled:
            return int(np.prod(self.block.owned.shape)) * self._masks.shape[0]
        return int(self.member_counts.sum())

    def member_mask(self, b: int) -> np.ndarray:
        """Member ``b``'s own owned-shape active mask."""
        return self._masks[b]


class EnsembleBackend(ExecutionBackend):
    """Batched execution of N same-grid simulations.

    Parameters
    ----------
    members:
        A :class:`~repro.core.params.ParamsStack`, or a sequence of
        :class:`~repro.core.params.SimCovParams` (one per member; all
        sharing ``dim``/``num_steps``), or a single params object with
        ``batch`` copies.
    seeds:
        One trial seed per member.  Member ``b`` reproduces the solo run
        ``SequentialSimCov(members[b], seed=seeds[b])`` bitwise.
    batch:
        Member count when ``members`` is a single params object.
    seed_gids:
        Optional explicit per-member FOI lists; default draws each
        member's FOI from its own seed, exactly as its solo run would.
    array_module:
        ``xp`` namespace name or adapter (default numpy — the only module
        with the bitwise guarantee; see :mod:`repro.core.xp`).
    """

    name = "ensemble"

    def __init__(
        self,
        members,
        seeds,
        batch: int | None = None,
        seed_gids=None,
        structure_gids: np.ndarray | None = None,
        active_gating: bool = True,
        tile_shape: tuple[int, ...] | None = None,
        sweep_period: int | None = None,
        array_module=None,
    ):
        if isinstance(members, SimCovParams):
            members = [members] * (batch if batch is not None else len(seeds))
        stack = members if isinstance(members, ParamsStack) else ParamsStack(members)
        seeds = np.asarray(seeds, dtype=np.int64)
        if seeds.size != stack.batch:
            raise ValueError(
                f"got {seeds.size} seeds for {stack.batch} ensemble members"
            )
        xp = get_array_module(array_module)
        self.params = stack
        self.spec = GridSpec(stack.members[0].dim)
        self.rng = EnsembleRNG(seeds, xp=xp)
        self.block = EnsembleBlock(
            self.spec, self.spec.domain, stack.batch, xp=xp
        )
        #: Solo-layout views over each member's storage (numpy: writable
        #: views created once — per-step per-member code paths reuse them).
        self.member_views = [
            self.block.member_view(b) for b in range(stack.batch)
        ]
        if structure_gids is not None:
            from repro.core.structure import apply_structure

            for mv in self.member_views:
                apply_structure(mv, structure_gids)
        #: Per-member FOI gid arrays (possibly ragged across members).
        self.member_seed_gids: list[np.ndarray] = []
        for b, mv in enumerate(self.member_views):
            if seed_gids is not None:
                gids = np.asarray(seed_gids[b], dtype=np.int64)
            else:
                gids = seed_infections(stack.member(b), self.rng.member_rng(b))
            self.member_seed_gids.append(gids)
            apply_seeds(mv, gids)
        self.seed_gids = self.member_seed_gids[0]
        self.intents = kernels.IntentArrays(self.block.shape, xp=xp)
        self._scratch_v = xp.zeros_like(self.block.virions)
        self._scratch_c = xp.zeros_like(self.block.chemokine)
        self.gate = EnsembleActivityGate(
            self.block,
            stack.min_chemokine,
            sweep_period=sweep_period,
            tile_shape=tile_shape,
            enabled=active_gating,
        )

    @property
    def batch(self) -> int:
        return self.params.batch

    # -- schedule ------------------------------------------------------------

    def schedule(self) -> tuple[Phase, ...]:
        """The sequential schedule, batched: barriers remain no-ops."""
        return (
            exchange("open_exchange", doc="no-op: single batched block"),
            kernel("age_extravasate"),
            exchange("boundary_exchange", doc="no-op: single batched block"),
            kernel("intents"),
            exchange("tiebreak_exchange", doc="no-op: single batched block"),
            kernel("resolve"),
            exchange("result_exchange", doc="no-op: single batched block"),
            kernel("apply_results", doc="no-op: nothing crosses a boundary"),
            kernel("epithelial"),
            exchange("concentration_exchange", doc="no-op: single batched block"),
            kernel("diffuse"),
            kernel("reduce"),
            kernel("tile_sweep", doc="per-member §3.2 sweep, union region"),
        )

    # -- kernel phases -------------------------------------------------------

    def phase_age_extravasate(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        kernels.tcell_age(self.block, region)
        ctx.extravasations = kernels.ensemble_apply_extravasation(
            self.params, self.block, ctx.attempts
        )

    def _tcell_subregion(
        self, region: tuple[slice, ...], pad: int
    ) -> tuple[slice, ...] | None:
        """Tight batched box around present T cells, or None if there are
        none anywhere.

        The union gate region covers every member's *chemokine* footprint,
        which is typically far wider than the T-cell cloud — and the
        T-cell phases cost O(stencil) passes over their region, multiplied
        by the batch.  Restricting them to the T-cell bounding box
        (``pad=0`` for intents; ``pad=1``, clamped to the region, for
        resolution — bids and arrivals scatter one voxel outward) is
        bitwise-neutral: every voxel outside it provably produces no
        intent, no move and no bind.
        """
        mask = self.block.xp.asnumpy(self.block.tcell[region]) != 0
        if not mask.any():
            return None
        sls = [region[0]]
        for axis in range(1, mask.ndim):
            other = tuple(a for a in range(mask.ndim) if a != axis)
            idx = np.nonzero(mask.any(axis=other))[0]
            base = region[axis]
            sls.append(
                slice(
                    max(base.start + int(idx[0]) - pad, base.start),
                    min(base.start + int(idx[-1]) + 1 + pad, base.stop),
                )
            )
        return tuple(sls)

    def phase_intents(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        self.intents.clear(region)
        sub = self._tcell_subregion(region, pad=0)
        ctx.extras["tcell_box"] = sub
        if sub is None:
            return None
        kernels.tcell_intents(
            self.params, self.rng, ctx.step, self.block, self.intents, sub
        )

    def phase_resolve(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        sub = ctx.extras.get("tcell_box")
        if sub is None:
            # No T cells anywhere -> no intents were written, so moves and
            # binds are provably zero for every member.
            zeros = np.zeros(self.batch, dtype=np.int64)
            ctx.moves = zeros
            ctx.binds = zeros
            return None
        sub = tuple(
            slice(max(s.start - 1, base.start), min(s.stop + 1, base.stop))
            for s, base in zip(sub, region)
        )
        moves = kernels.compute_moves(self.block, self.intents, sub)
        ctx.moves = kernels.commit_moves(self.block, moves, member_counts=True)
        ctx.binds = kernels.resolve_binds(
            self.params, self.rng, ctx.step, self.block, self.intents,
            sub, member_counts=True,
        )

    def phase_apply_results(self, ctx):
        return False

    def phase_epithelial(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        kernels.epithelial_update(
            self.params, self.rng, ctx.step, self.block, region
        )
        kernels.production_update(self.params, self.block, region, step=ctx.step)

    def phase_diffuse(self, ctx):
        region = self.gate.region()
        if region is None:
            return False
        kernels.mirror_fields(self.block)
        kernels.concentration_update(
            self.params, self.block, region, self._scratch_v, self._scratch_c
        )
        kernels.concentration_commit(
            self.params, self.block, [region], self._scratch_v,
            self._scratch_c, step=ctx.step,
        )

    def phase_reduce(self, ctx) -> None:
        # Statistics sweep the full space regardless of gating (§3.3).
        ctx.reduced = stats_vectors(self.block)

    def phase_tile_sweep(self, ctx):
        if not self.gate.due(ctx.step):
            return False
        self.gate.sweep()

    def step_record(self, ctx) -> dict:
        if self.tracer:
            self.tracer.gauge(
                "ensemble_batch", self.batch, cat="ensemble", step=ctx.step,
            )
            self.tracer.gauge(
                "active_voxels", self.gate.count, cat="gating",
                step=ctx.step, gated=self.gate.enabled, ensemble=self.batch,
            )
        return {
            "active_voxels": self.gate.count,
            "ensemble_batch": self.batch,
        }

    # -- inspection ----------------------------------------------------------

    def gather_field(self, name: str, member: int | None = None) -> np.ndarray:
        """Interior of one field: all members ``(B, *owned)``, or one
        member's solo-shaped interior."""
        if member is None:
            arr = getattr(self.block, name)[self.block.interior]
            return self.block.xp.asnumpy(arr).copy()
        mv = self.member_views[member]
        return getattr(mv, name)[mv.interior].copy()


#: Column index of each reduced stats field, for MemberSeries.field.
_STATS_COLUMNS = {name: i for i, name in enumerate(REDUCED_FIELDS)}


class EnsembleSeries:
    """Column store of every member's per-step statistics.

    Materializing ``B`` :class:`StepStats` objects per step is pure
    Python overhead in the hot loop; the engine instead appends the
    already-computed per-step arrays here, and :class:`MemberSeries`
    views materialize a member's StepStats lazily — bitwise identical to
    the objects the eager fan-out would have built, because the stored
    values *are* the solo-run values.
    """

    def __init__(self, batch: int):
        self.batch = int(batch)
        self.steps_list: list[int] = []
        self.reduced: list[np.ndarray] = []  # (B, 8) float64 per step
        self.pools: list[np.ndarray] = []  # (B,) float64 per step
        self.extravasations: list[np.ndarray] = []
        self.binds: list[np.ndarray] = []
        self.moves: list[np.ndarray] = []

    def append_step(self, step, reduced, pools, ext, binds, moves) -> None:
        self.steps_list.append(int(step))
        self.reduced.append(reduced)
        self.pools.append(pools)
        self.extravasations.append(ext)
        self.binds.append(binds)
        self.moves.append(moves)

    def __len__(self) -> int:
        return len(self.steps_list)

    def truncate(self, length: int) -> None:
        """Drop entries at index >= ``length`` for every member."""
        if length < 0:
            raise ValueError("length must be >= 0")
        for col in (self.steps_list, self.reduced, self.pools,
                    self.extravasations, self.binds, self.moves):
            del col[length:]

    def member(self, b: int) -> "MemberSeries":
        return MemberSeries(self, b)


class MemberSeries:
    """:class:`~repro.core.stats.TimeSeries`-compatible view of one
    member's rows in an :class:`EnsembleSeries` (read API: ``field``,
    ``steps``, ``peak``, ``to_rows``, indexing)."""

    def __init__(self, log: EnsembleSeries, member: int):
        self._log = log
        self.member = int(member)

    def __len__(self) -> int:
        return len(self._log)

    def __getitem__(self, i: int) -> StepStats:
        log, b = self._log, self.member
        return StepStats.from_vector(
            log.steps_list[i],
            log.reduced[i][b],
            pool=float(log.pools[i][b]),
            extravasations=int(log.extravasations[i][b]),
            binds=int(log.binds[i][b]),
            moves=int(log.moves[i][b]),
        )

    def field(self, name: str) -> np.ndarray:
        log, b = self._log, self.member
        if name in _STATS_COLUMNS:
            col = _STATS_COLUMNS[name]
            return np.array([r[b, col] for r in log.reduced], dtype=np.float64)
        if name == "infected":
            # Same left-to-right float adds as StepStats.infected.
            red = self.field("incubating") + self.field("expressing")
            return red + self.field("apoptotic")
        if name == "tcells_vasculature":
            return np.array([p[b] for p in log.pools], dtype=np.float64)
        if name in ("extravasations", "binds", "moves"):
            rows = getattr(log, name)
            return np.array([r[b] for r in rows], dtype=np.float64)
        if name == "step":
            return np.array(log.steps_list, dtype=np.float64)
        raise AttributeError(f"unknown stats field {name!r}")

    def steps(self) -> np.ndarray:
        return np.array(self._log.steps_list, dtype=np.int64)

    def peak(self, name: str) -> tuple[int, float]:
        vals = self.field(name)
        if vals.size == 0:
            raise ValueError("empty time series")
        i = int(np.argmax(vals))
        return int(self._log.steps_list[i]), float(vals[i])

    def to_rows(self) -> list[dict]:
        from dataclasses import fields as dc_fields

        return [
            {f.name: getattr(s, f.name) for f in dc_fields(s)}
            for s in (self[i] for i in range(len(self)))
        ]


class EnsembleEngine(StepEngine):
    """StepEngine with per-member replicated scalar state.

    The vascular pool, the extravasation-attempt schedules and the
    per-step statistics all fan out per member; each member's series
    (a lazy :class:`MemberSeries` view) is bitwise identical to its solo
    run's :class:`~repro.core.stats.TimeSeries`.  ``series`` (the base
    attribute) tracks member 0.
    """

    def __init__(
        self, backend: EnsembleBackend, schedule=None, tracer=None,
        registry=None,
    ):
        super().__init__(backend, schedule, tracer=tracer, registry=registry)
        self.batch = backend.batch
        self.registry.gauge(
            "simcov_ensemble_batch", "Members in the batched ensemble"
        ).set(backend.batch)
        self._obs_member_rate = self.registry.gauge(
            "simcov_ensemble_member_steps_per_sec",
            "Ensemble throughput: member-steps per wall second",
        )
        self._obs_t0 = None
        stack = backend.params
        self.pools = np.zeros(self.batch, dtype=np.float64)
        self.log = EnsembleSeries(self.batch)
        self.member_series = [self.log.member(b) for b in range(self.batch)]
        #: Base-class attribute: member 0's view (duck-typed TimeSeries).
        self.series = self.member_series[0]
        self._delays = np.array(
            [p.tcell_initial_delay for p in stack.members], dtype=np.int64
        )
        self._gen_rates = np.array(
            [p.tcell_generation_rate for p in stack.members], dtype=np.float64
        )
        self._vascular = np.array(
            [p.tcell_vascular_period for p in stack.members], dtype=np.float64
        )

    def _vector(self, value, dtype=np.int64) -> np.ndarray:
        """Phase outputs arrive as per-member vectors, or as the scalar 0
        when every phase skipped (an idle step) — normalize to a vector."""
        if np.ndim(value):
            return np.asarray(value)
        return np.full(self.batch, value, dtype=dtype)

    def step(self) -> StepStats:
        """Advance all members one timestep; returns member 0's stats."""
        t = self.step_num
        n = self.batch

        # Per-member vascular pools: elementwise ops replicate each solo
        # run's float sequence exactly (x + 0 careers are avoided by the
        # where; x / period and the max-debit below are elementwise).
        self.pools = np.where(
            t >= self._delays, self.pools + self._gen_rates, self.pools
        )
        self.pools = self.pools - self.pools / self._vascular
        attempts = kernels.ensemble_extravasation_attempts(
            self.params, self.backend.rng, t, self.pools
        )

        ctx = StepContext(step=t, attempts=attempts, pool=0.0)
        ctx.extras["pools"] = self.pools
        self.backend.begin_step(ctx)

        tracer = self.tracer
        step_start = perf_counter()
        phase_seconds: dict[str, float] = {}
        obs_phases = self._obs_phases
        for phase in self.schedule:
            start = perf_counter()
            ran = self.backend.execute(phase, ctx)
            elapsed = perf_counter() - start
            skipped = ran is False
            hist, skips = obs_phases[phase.name]
            hist.observe(elapsed)
            if skipped:
                skips.inc()
            if tracer.enabled:
                tracer.emit_span(
                    phase.name, start, elapsed, cat="phase", step=t,
                    skipped=skipped, ensemble=n,
                )
            else:
                self.metrics.record(phase.name, elapsed, skipped=skipped)
            if not skipped:
                phase_seconds[phase.name] = elapsed
        step_elapsed = perf_counter() - step_start
        self._obs_step_seconds.observe(step_elapsed)
        self._obs_steps.inc()
        # Ensemble throughput: member-steps/sec over the engine's
        # lifetime so far (batch members advance together, so one engine
        # step is `batch` member-steps).
        if self._obs_t0 is None:
            self._obs_t0 = step_start
        wall = perf_counter() - self._obs_t0
        if wall > 0:
            self._obs_member_rate.set((self.step_num + 1) * n / wall)
        if tracer.enabled:
            tracer.emit_span(
                "step", step_start, step_elapsed,
                cat="step", step=t, ensemble=n,
            )

        if ctx.reduced is None:
            raise RuntimeError(
                f"backend {self.backend.name!r} reduce phase did not set "
                "ctx.reduced"
            )
        reduced = np.asarray(ctx.reduced)
        if reduced.shape[0] != n:
            raise RuntimeError(
                f"ensemble reduce returned shape {reduced.shape}, "
                f"expected leading batch axis {n}"
            )

        ext = self._vector(ctx.extravasations)
        binds = self._vector(ctx.binds)
        moves = self._vector(ctx.moves)
        # `pools` is rebound (not mutated), so the appended reference is a
        # stable snapshot of this step's post-debit pools.
        self.pools = np.maximum(0.0, self.pools - ext)
        self.log.append_step(t, reduced, self.pools, ext, binds, moves)
        first = self.member_series[0][-1]
        record = {"step": t, "phase_seconds": phase_seconds}
        record.update(self.backend.step_record(ctx))
        if "active_voxels" in record:
            self._obs_active_voxels.set(record["active_voxels"])
        self.step_work.append(record)
        self.step_num += 1
        return first


class EnsembleMemberView:
    """Solo-simulation facade over one ensemble member.

    Duck-types the attributes :mod:`repro.io.checkpoint` reads
    (``params``, ``block``, ``step_num``, ``pool``, ``rng``,
    ``seed_gids``, ``gather_field``), so ``save_checkpoint(path,
    sim.member(b))`` writes a checkpoint that restores — on any
    implementation — into the continuation of member ``b``'s solo run.
    """

    def __init__(self, sim: "EnsembleSimCov", member: int):
        self._sim = sim
        self.member = int(member)
        self.params = sim.params.member(member)
        self.block = sim.backend.member_views[member]
        self.rng = sim.backend.rng.member_rng(member)
        self.seed_gids = sim.backend.member_seed_gids[member]

    @property
    def step_num(self) -> int:
        return self._sim.step_num

    @property
    def pool(self) -> float:
        return float(self._sim.engine.pools[self.member])

    @property
    def series(self) -> MemberSeries:
        return self._sim.member_series[self.member]

    def gather_field(self, name: str) -> np.ndarray:
        return self._sim.backend.gather_field(name, member=self.member)


class EnsembleSimCov(EngineDriver):
    """Driver: N simulations stacked into one vectorized step loop.

    Parameters
    ----------
    members:
        One :class:`SimCovParams` (replicated ``batch`` times — an
        initial-condition ensemble over seeds), a sequence of params (a
        parameter sweep), or a ready :class:`ParamsStack`.
    seeds:
        Per-member trial seeds; default ``base_seed + arange(B)``.
    batch:
        Member count when ``members`` is a single params object and
        ``seeds`` is not given.
    array_module:
        ``xp`` plug-in selector (see :mod:`repro.core.xp`).
    """

    def __init__(
        self,
        members,
        seeds=None,
        batch: int | None = None,
        base_seed: int = 0,
        seed_gids=None,
        structure_gids: np.ndarray | None = None,
        active_gating: bool = True,
        tile_shape: tuple[int, ...] | None = None,
        sweep_period: int | None = None,
        array_module=None,
        tracer=None,
    ):
        if seeds is None:
            if batch is None:
                batch = 1 if isinstance(members, SimCovParams) else len(members)
            seeds = base_seed + np.arange(batch, dtype=np.int64)
        backend = EnsembleBackend(
            members, seeds, batch=batch, seed_gids=seed_gids,
            structure_gids=structure_gids, active_gating=active_gating,
            tile_shape=tile_shape, sweep_period=sweep_period,
            array_module=array_module,
        )
        self.backend = backend
        self.engine = EnsembleEngine(backend, tracer=tracer)
        self.params = backend.params
        self.rng = backend.rng
        self.spec = backend.spec
        self.seed_gids = backend.seed_gids
        self.block = backend.block
        self.gate = backend.gate

    @property
    def batch(self) -> int:
        return self.backend.batch

    @property
    def member_series(self) -> list[MemberSeries]:
        """Per-member time series views, index-aligned with the seeds."""
        return self.engine.member_series

    @property
    def pools(self) -> np.ndarray:
        """Per-member vascular pools."""
        return self.engine.pools

    def member(self, b: int) -> EnsembleMemberView:
        """Checkpointable solo-sim facade over member ``b``."""
        return EnsembleMemberView(self, b)

    def gather_field(self, name: str, member: int | None = None) -> np.ndarray:
        return self.backend.gather_field(name, member=member)


def expand_sweep(params: SimCovParams, key: str, values) -> list[SimCovParams]:
    """One params object per sweep value — the Fig 8 pattern.

    ``key`` must be a SimCovParams field; integer fields get rounded
    values.  Raises ``ValueError`` naming the valid fields for typos.
    """
    if not hasattr(params, key):
        from dataclasses import fields

        valid = ", ".join(sorted(f.name for f in fields(params)))
        raise ValueError(f"unknown sweep parameter {key!r}; valid: {valid}")
    current = getattr(params, key)
    out = []
    for v in values:
        if isinstance(current, int) and not isinstance(current, bool):
            v = int(round(float(v)))
        else:
            v = float(v)
        out.append(params.with_(**{key: v}))
    return out
