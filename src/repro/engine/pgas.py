"""The PGAS execution backend (SIMCoV-CPU substrate).

Wraps :class:`~repro.pgas.runtime.PgasRuntime`,
:class:`~repro.grid.halo.HaloExchanger` routes and the two-wave RPC
tiebreak of §2.2/§3.1 behind the engine protocol:

- ``open_exchange`` / ``boundary_exchange`` / ``concentration_exchange``
  map to batched boundary-strip RPC waves;
- ``tiebreak_exchange`` and ``result_exchange`` map to RPC progress
  points — wave 1 delivers intent RPCs to owners, wave 2 delivers result
  RPCs back to sources;
- every kernel phase runs rank-by-rank over the per-rank active region
  via :meth:`PgasRuntime.phase`.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.core.stats import REDUCED_FIELDS, stats_vector
from repro.engine.backend import ExecutionBackend
from repro.engine.phases import FieldSet, Phase, exchange, kernel
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.spec import moore_offsets
from repro.engine.activity import ActivityGate
from repro.pgas.reductions import ReduceOp
from repro.pgas.runtime import PgasRuntime


class PgasBackend(ExecutionBackend):
    """Rank-parallel SIMCoV on the PGAS runtime.

    Parameters
    ----------
    params, seed:
        As for the other backends; the same seed produces bitwise
        identical simulations across substrates.
    nranks:
        CPU ranks (the paper's per-node count is 128).
    decomposition:
        Block (default) or linear, Fig 1B.
    ranks_per_node:
        For inter- vs intra-node RPC accounting.
    active_gating:
        Skip quiescent space via per-rank activity gates refreshed each
        step after the start-of-step ghost exchange (the CPU active-list
        of §2.2).  ``False`` forces whole-interior processing; results
        are bitwise identical either way.
    """

    name = "pgas"

    def __init__(
        self,
        params: SimCovParams,
        nranks: int,
        seed: int = 0,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        ranks_per_node: int = 128,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        active_gating: bool = True,
    ):
        self._init_common(params, seed)
        self.decomp = Decomposition.make(self.spec, nranks, decomposition)
        self.runtime = PgasRuntime(nranks, ranks_per_node=ranks_per_node)
        self.exchanger = HaloExchanger(self.decomp)
        self.blocks = [
            VoxelBlock(self.spec, self.decomp.boxes[r]) for r in range(nranks)
        ]
        self.intents = [kernels.IntentArrays(b.shape) for b in self.blocks]
        self.active = [
            ActivityGate(b, params.min_chemokine, sweep_period=1,
                         enabled=active_gating)
            for b in self.blocks
        ]
        self._scratch = [
            (np.zeros_like(b.virions), np.zeros_like(b.chemokine))
            for b in self.blocks
        ]
        # Per-rank buffers filled by RPC handlers during progress.
        self._incoming_moves: list[list[dict]] = [[] for _ in range(nranks)]
        self._incoming_binds: list[list[dict]] = [[] for _ in range(nranks)]
        self._won_moves: list[list[np.ndarray]] = [[] for _ in range(nranks)]
        self._won_binds: list[list[np.ndarray]] = [[] for _ in range(nranks)]
        self._register_handlers()
        self._seed_blocks(self.blocks, seed_gids, structure_gids)
        # Per-step scratch (reset by begin_step).
        self._active_counts: list[int] = []
        self._extr_local: list[int] = []
        self._moves_local: list[int] = []
        self._binds_local: list[int] = []
        self._pending_moves: list[dict | None] = []
        self._pending_binds: list[dict | None] = []
        self._comm_before = None

    # -- schedule ------------------------------------------------------------

    def schedule(self) -> tuple[Phase, ...]:
        """RPC waves for every barrier; two-wave tiebreak (§2.2/§4.1)."""
        return (
            exchange(
                "open_exchange",
                FieldSet(
                    "state",
                    ("epi_state", "virions", "chemokine", "tcell"),
                    MergeMode.REPLACE,
                ),
                doc="start-of-step strips: active-region + bind-stencil input",
            ),
            kernel("age_extravasate"),
            exchange(
                "boundary_exchange",
                FieldSet("state", ("tcell",), MergeMode.REPLACE),
                doc="post-extravasation occupancy snapshot",
            ),
            kernel("intents", doc="intents + intent RPCs (tiebreak wave 1)"),
            exchange("tiebreak_exchange", doc="RPC progress: deliver intent RPCs"),
            kernel("resolve", doc="merge remote bids, resolve, result RPCs"),
            exchange("result_exchange", doc="RPC progress: deliver result RPCs"),
            kernel("apply_results", doc="sources apply wave-2 results"),
            kernel("epithelial"),
            exchange(
                "concentration_exchange",
                FieldSet("state", ("virions", "chemokine"), MergeMode.REPLACE),
                doc="post-production concentration strips",
            ),
            kernel("diffuse"),
            kernel("reduce", doc="tree allreduce of statistics"),
        )

    # -- RPC handlers ----------------------------------------------------------

    def _register_handlers(self) -> None:
        rt = self.runtime

        def recv_boundary(rc, lo, hi, _src_rank, **fields):
            from repro.grid.box import Box

            region = Box(tuple(int(x) for x in lo), tuple(int(x) for x in hi))
            block = self.blocks[rc.rank]
            sl = region.slices_from(block.origin)
            for name, data in fields.items():
                getattr(block, name)[sl] = data

        def recv_move_intents(rc, src_gid, tgt_gid, bid, life, _src_rank):
            self._incoming_moves[rc.rank].append(
                {
                    "src_rank": _src_rank,
                    "src_gid": src_gid,
                    "tgt_gid": tgt_gid,
                    "bid": bid,
                    "life": life,
                }
            )

        def recv_bind_intents(rc, src_gid, tgt_gid, bid, _src_rank):
            self._incoming_binds[rc.rank].append(
                {
                    "src_rank": _src_rank,
                    "src_gid": src_gid,
                    "tgt_gid": tgt_gid,
                    "bid": bid,
                }
            )

        def recv_move_results(rc, won_src_gid, _src_rank):
            self._won_moves[rc.rank].append(won_src_gid)

        def recv_bind_results(rc, won_src_gid, _src_rank):
            self._won_binds[rc.rank].append(won_src_gid)

        rt.register_handler("recv_boundary", recv_boundary)
        rt.register_handler("recv_move_intents", recv_move_intents)
        rt.register_handler("recv_bind_intents", recv_bind_intents)
        rt.register_handler("recv_move_results", recv_move_results)
        rt.register_handler("recv_bind_results", recv_bind_results)

    # -- boundary waves ---------------------------------------------------------

    def _send_boundary_wave(self, fields: tuple[str, ...]) -> None:
        """Each rank ships the strips neighbors' ghosts need (batched per
        route, like a tuned UPC++ code)."""
        for src, dst, region in self.exchanger.replace_routes:
            block = self.blocks[src]
            sl = region.slices_from(block.origin)
            payload = {name: getattr(block, name)[sl].copy() for name in fields}
            self.runtime.ranks[src].rpc(
                dst,
                "recv_boundary",
                lo=np.array(region.lo),
                hi=np.array(region.hi),
                **payload,
            )
        self.runtime.progress()

    # -- local <-> global index helpers ----------------------------------------------

    def _locate(self, rank: int, gids: np.ndarray) -> tuple[tuple, np.ndarray]:
        """Padded-array indices for global ids owned by ``rank``."""
        block = self.blocks[rank]
        coords = self.spec.unravel(gids)
        local = coords - np.array(block.origin)
        return tuple(local.T), coords

    # -- engine protocol ---------------------------------------------------------

    def begin_step(self, ctx) -> None:
        nranks = self.runtime.nranks
        self._comm_before = self.runtime.comm.snapshot()
        self._active_counts = []
        self._extr_local = [0] * nranks
        self._moves_local = [0] * nranks
        self._binds_local = [0] * nranks
        self._pending_moves = [None] * nranks
        self._pending_binds = [None] * nranks

    def exchange(self, phase, ctx):
        if phase.name in ("tiebreak_exchange", "result_exchange"):
            # The RPC waves of the two-wave tiebreak: payloads were
            # enqueued by the preceding kernel phase; progress delivers.
            self.runtime.progress()
            return None
        fields = tuple(
            f for fs in phase.exchanges if fs.scope == "state" for f in fs.fields
        )
        if not fields:
            return False
        self._send_boundary_wave(fields)

    def step_record(self, ctx) -> dict:
        rt = self.runtime
        comm = rt.comm.delta(rt.comm.snapshot(), self._comm_before)
        if self.tracer:
            self.tracer.counter(
                "halo_bytes", comm.get("rpc_bytes", 0), cat="comm",
                step=ctx.step,
            )
            self.tracer.counter(
                "rpcs", comm.get("rpcs", 0), cat="comm", step=ctx.step
            )
            self.tracer.gauge(
                "active_voxels", sum(self._active_counts), cat="gating",
                step=ctx.step, per_rank=list(self._active_counts),
            )
        return {
            "active_per_rank": list(self._active_counts),
            "comm": comm,
        }

    # -- kernel phases -----------------------------------------------------------

    def phase_age_extravasate(self, ctx) -> None:
        """Refresh active regions, age, extravasate (all rank-local)."""

        def fn(rc):
            r = rc.rank
            self.active[r].refresh()
            self._active_counts.append(self.active[r].count)
            region = self.active[r].region()
            if region is not None:
                kernels.tcell_age(self.blocks[r], region)
                # Attempts only succeed where signal >= min_chemokine,
                # which the freshly-refreshed region covers — restricting
                # the gid lookup is bitwise-invisible.
                self._extr_local[r] = kernels.apply_extravasation(
                    self.params, self.blocks[r], ctx.attempts, region
                )

        self.runtime.phase(fn, progress=False)

    def phase_intents(self, ctx) -> None:
        """Intents + intent RPCs (tiebreak wave 1) — delivery happens at
        the following ``tiebreak_exchange`` barrier."""

        def fn(rc):
            r = rc.rank
            block = self.blocks[r]
            intents = self.intents[r]
            region = self.active[r].region()
            # An idle rank passes () so only the previous step's slab is
            # wiped — full-interior readers must never see stale intents.
            intents.clear(region if region is not None else ())
            if region is not None:
                kernels.tcell_intents(
                    self.params, self.rng, ctx.step, block, intents, region
                )
                self._pending_moves[r] = self._extract_remote_intents(
                    r, kind="move", region=region
                )
                self._pending_binds[r] = self._extract_remote_intents(
                    r, kind="bind", region=region
                )
            else:
                empty = {"src_gid": np.array([], dtype=np.int64)}
                self._pending_moves[r] = empty
                self._pending_binds[r] = dict(empty)

        self.runtime.phase(fn, progress=False)

    def phase_resolve(self, ctx) -> None:
        """Merge remote bids, resolve all competition, apply arrivals,
        enqueue result RPCs (tiebreak wave 2)."""

        def fn(rc):
            r = rc.rank
            block = self.blocks[r]
            intents = self.intents[r]
            region = self.active[r].region()
            self._merge_remote_bids(r)
            if region is not None:
                self._moves_local[r] += kernels.resolve_moves(
                    block, intents, region
                )
                self._binds_local[r] += kernels.resolve_binds(
                    self.params, self.rng, ctx.step, block, intents, region
                )
            self._moves_local[r] += self._apply_remote_moves(rc)
            self._apply_remote_binds(rc)

        self.runtime.phase(fn, progress=False)

    def phase_apply_results(self, ctx) -> None:
        """Source side of tiebreak wave 2."""

        def fn(rc):
            self._apply_results(
                rc.rank, self._pending_moves[rc.rank], self._pending_binds[rc.rank]
            )

        self.runtime.phase(fn, progress=False)

    def phase_epithelial(self, ctx) -> None:
        def fn(rc):
            r = rc.rank
            region = self.active[r].region()
            if region is not None:
                kernels.epithelial_update(
                    self.params, self.rng, ctx.step, self.blocks[r], region
                )
                kernels.production_update(
                    self.params, self.blocks[r], region, step=ctx.step
                )

        self.runtime.phase(fn, progress=False)

    def phase_diffuse(self, ctx) -> None:
        def fn(rc):
            r = rc.rank
            block = self.blocks[r]
            region = self.active[r].region()
            if region is None:
                return
            kernels.mirror_fields(block)
            sv, sc = self._scratch[r]
            kernels.concentration_update(self.params, block, region, sv, sc)
            kernels.concentration_commit(
                self.params, block, [region], sv, sc, step=ctx.step
            )

        self.runtime.phase(fn, progress=False)

    def phase_reduce(self, ctx) -> None:
        """Tree allreduce of statistics + per-step totals."""
        rt = self.runtime
        vectors = [
            np.concatenate(
                [
                    stats_vector(self.blocks[r]),
                    [
                        self._extr_local[r],
                        self._binds_local[r],
                        self._moves_local[r],
                    ],
                ]
            )
            for r in range(rt.nranks)
        ]
        reduced = rt.allreduce(vectors, ReduceOp.SUM)
        n = len(REDUCED_FIELDS)
        ctx.reduced = reduced[:n]
        ctx.extravasations = int(reduced[n])
        ctx.binds = int(reduced[n + 1])
        ctx.moves = int(reduced[n + 2])

    # -- tiebreak plumbing ----------------------------------------------------------

    def _extract_remote_intents(
        self, rank: int, kind: str, region: tuple[slice, ...] | None = None
    ) -> dict:
        """Find owned T cells targeting ghost voxels; ship them to owners and
        withhold them from local resolution.  Returns the pending record.

        ``region`` restricts the scan to this step's active box (intents
        are only ever written inside it); ``None`` scans the interior.
        """
        block = self.blocks[rank]
        intents = self.intents[rank]
        if region is None:
            region = block.interior
        g = block.ghost
        # Owned-relative coordinate of the scanned window's [0, 0, ...].
        window_lo = np.array([s.start - g for s in region])
        if kind == "move":
            dirs = intents.move_dir[region]
            stencil = moore_offsets(self.spec.ndim)
            base = 0
        else:
            dirs = intents.bind_dir[region]
            stencil = kernels.bind_stencil(self.spec.ndim)
            base = 0
        owned_box = block.owned
        src_list, tgt_list, bid_list, life_list = [], [], [], []
        pend_local = []
        for k, off in enumerate(stencil):
            mask = dirs == (k + base)
            if not mask.any():
                continue
            src_local = np.argwhere(mask) + window_lo  # owned-relative coords
            src_global = src_local + np.array(owned_box.lo)
            tgt_global = src_global + off
            outside = ~owned_box.contains(tgt_global)
            if not outside.any():
                continue
            src_g = src_global[outside]
            tgt_g = tgt_global[outside]
            src_pad = tuple((src_g - np.array(block.origin)).T)
            src_list.append(self.spec.ravel(src_g))
            tgt_list.append(self.spec.ravel(tgt_g))
            bid_list.append(intents.bid_self[src_pad])
            if kind == "move":
                life_list.append(block.tcell_tissue_time[src_pad])
            pend_local.append(src_pad)
            # Withhold from local resolution.
            if kind == "move":
                intents.move_dir[src_pad] = -1
            else:
                intents.bind_dir[src_pad] = -1
        if not src_list:
            return {"src_gid": np.array([], dtype=np.int64)}
        src_gid = np.concatenate(src_list)
        tgt_gid = np.concatenate(tgt_list)
        bid = np.concatenate(bid_list)
        owners = self.decomp.owner_of(self.spec.unravel(tgt_gid))
        life = np.concatenate(life_list) if kind == "move" else None
        for dst in np.unique(owners):
            sel = owners == dst
            payload = {
                "src_gid": src_gid[sel],
                "tgt_gid": tgt_gid[sel],
                "bid": bid[sel],
            }
            if kind == "move":
                payload["life"] = life[sel]
                self.runtime.ranks[rank].rpc(
                    int(dst), "recv_move_intents", **payload
                )
            else:
                self.runtime.ranks[rank].rpc(
                    int(dst), "recv_bind_intents", **payload
                )
        return {"src_gid": src_gid, "bid": bid, "kind": kind}

    def _merge_remote_bids(self, rank: int) -> None:
        """Max-merge buffered remote bids into this rank's bid arrays."""
        intents = self.intents[rank]
        for rec in self._incoming_moves[rank]:
            idx, _ = self._locate(rank, rec["tgt_gid"])
            arr = intents.move_bid
            np.maximum.at(arr, idx, rec["bid"])
        for rec in self._incoming_binds[rank]:
            idx, _ = self._locate(rank, rec["tgt_gid"])
            np.maximum.at(intents.bind_bid, idx, rec["bid"])

    def _apply_remote_moves(self, rc) -> int:
        """Instantiate remote movers that won bids on owned voxels; notify
        their source ranks (tiebreak wave 2)."""
        r = rc.rank
        block = self.blocks[r]
        intents = self.intents[r]
        arrivals = 0
        winners_by_src: dict[int, list[int]] = {}
        for rec in self._incoming_moves[r]:
            idx, _ = self._locate(r, rec["tgt_gid"])
            won = intents.move_bid[idx] == rec["bid"]
            for i in np.nonzero(won)[0]:
                cell = tuple(int(x[i]) for x in idx)
                block.tcell[cell] = 1
                block.tcell_tissue_time[cell] = rec["life"][i]
                block.tcell_bound_time[cell] = 0
                arrivals += 1
                winners_by_src.setdefault(rec["src_rank"], []).append(
                    int(rec["src_gid"][i])
                )
        self._incoming_moves[r] = []
        for src_rank, gids in winners_by_src.items():
            rc.rpc(
                src_rank,
                "recv_move_results",
                won_src_gid=np.array(gids, dtype=np.int64),
            )
        return arrivals

    def _apply_remote_binds(self, rc) -> None:
        """Apply remote bind winners to owned epithelial cells; notify the
        winning T cells' owners."""
        r = rc.rank
        intents = self.intents[r]
        winners_by_src: dict[int, list[int]] = {}
        for rec in self._incoming_binds[r]:
            idx, _ = self._locate(r, rec["tgt_gid"])
            won = intents.bind_bid[idx] == rec["bid"]
            for i in np.nonzero(won)[0]:
                winners_by_src.setdefault(rec["src_rank"], []).append(
                    int(rec["src_gid"][i])
                )
        self._incoming_binds[r] = []
        for src_rank, gids in winners_by_src.items():
            rc.rpc(
                src_rank,
                "recv_bind_results",
                won_src_gid=np.array(gids, dtype=np.int64),
            )

    def _apply_results(self, rank: int, pending_moves, pending_binds) -> None:
        """Source side of tiebreak wave 2: erase movers that won a ghost
        voxel; hold binders that won a ghost epithelial cell."""
        block = self.blocks[rank]
        for gids in self._won_moves[rank]:
            idx, _ = self._locate(rank, gids)
            block.tcell[idx] = 0
            block.tcell_tissue_time[idx] = 0
            block.tcell_bound_time[idx] = 0
        self._won_moves[rank] = []
        for gids in self._won_binds[rank]:
            idx, _ = self._locate(rank, gids)
            block.tcell_bound_time[idx] = self.params.tcell_binding_period
        self._won_binds[rank] = []

    # -- inspection ----------------------------------------------------------

    def gather_epi_state(self) -> np.ndarray:
        """Assembled global epithelial state (test/IO helper)."""
        return self.exchanger.gather_global([b.epi_state for b in self.blocks])

    def gather_field(self, name: str) -> np.ndarray:
        return self.exchanger.gather_global(
            [getattr(b, name) for b in self.blocks]
        )
