"""The phase-pipeline StepEngine.

One step loop for all three implementations: the engine owns the
replicated scalar logic every driver used to duplicate (vascular-pool
dynamics, the global extravasation-attempt schedule, the pool debit,
StepStats assembly, the time series and per-step work records) and runs
the backend's declared schedule phase by phase, timing each one.

Drivers (`SequentialSimCov`, `SimCovCPU`, `SimCovGPU`) are thin
configuration shims: they build a backend, hand it to a StepEngine, and
re-export the engine's state under their historical public API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from repro.core import kernels
from repro.core.stats import StepStats, TimeSeries
from repro.engine.backend import ExecutionBackend
from repro.engine.metrics import PhaseMetrics
from repro.engine.phases import Phase, validate_schedule
from repro.obs.registry import get_registry
from repro.telemetry.sinks import PhaseMetricsSink
from repro.telemetry.tracer import NULL_TRACER


@dataclass
class StepContext:
    """Per-step scratch shared between the engine and the backend."""

    #: Step number being executed.
    step: int
    #: The global, decomposition-independent extravasation-attempt schedule.
    attempts: dict
    #: The vascular-pool value the attempt schedule was computed from
    #: (post-update, pre-debit).  Remote backends publish it so detached
    #: workers can recompute the identical schedule locally.
    pool: float = 0.0
    #: Set by the ``reduce`` phase: the REDUCED_FIELDS vector.
    reduced: np.ndarray | None = None
    #: Set by the ``reduce`` phase (or locally on one block): step totals.
    extravasations: int = 0
    binds: int = 0
    moves: int = 0
    #: Free-form backend scratch (cleared every step).
    extras: dict = field(default_factory=dict)


class StepEngine:
    """Executes a declarative phase schedule against an ExecutionBackend."""

    def __init__(
        self,
        backend: ExecutionBackend,
        schedule: tuple[Phase, ...] | None = None,
        tracer=None,
        registry=None,
    ):
        self.backend = backend
        self.params = backend.params
        self.rng = backend.rng
        self.schedule = tuple(schedule if schedule is not None else backend.schedule())
        validate_schedule(self.schedule)
        #: Cumulative per-phase wall-time and invocation counters.
        self.metrics = PhaseMetrics()
        #: Structured-telemetry spigot; the no-op tracer unless a caller
        #: installs a real one.  With tracing on, phase timings flow
        #: through the tracer and ``metrics`` becomes a sink view of the
        #: same span stream; the backend sees the tracer too, for
        #: gating/comm counters.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.tracer.enabled:
            # Filter by the tracer's own rank so merged-in events from
            # other ranks (dist workers) don't double-count here.
            self.tracer.add_sink(
                PhaseMetricsSink(self.metrics, rank=self.tracer.rank)
            )
            backend.tracer = self.tracer
        #: Always-on metrics (:mod:`repro.obs`): instrument handles are
        #: resolved once here so the step loop pays only bound-method
        #: calls.  Unlike the tracer these never record per-event
        #: timelines — just counters/gauges/histograms — which is why
        #: they can afford to be on by default.
        self.registry = registry if registry is not None else get_registry()
        reg = self.registry
        self._obs_steps = reg.counter(
            "simcov_steps_total", "Engine steps executed"
        )
        self._obs_step_seconds = reg.histogram(
            "simcov_step_seconds", "Wall seconds per engine step"
        )
        self._obs_phases = {
            name: (
                reg.histogram(
                    "simcov_phase_seconds",
                    "Wall seconds per engine phase",
                    phase=name,
                ),
                reg.counter(
                    "simcov_phase_skips_total",
                    "Phase executions skipped by the activity gate",
                    phase=name,
                ),
            )
            for name in {ph.name for ph in self.schedule}
        }
        self._obs_active_voxels = reg.gauge(
            "simcov_active_voxels", "Voxels the activity gate considers live"
        )
        self.pool = 0.0
        self.step_num = 0
        self.series = TimeSeries()
        #: Per-step records: phase timings + backend extras (ledger deltas,
        #: comm counters, active counts) for the performance model.
        self.step_work: list[dict] = []
        #: Callables invoked with each step's StepStats from :meth:`run`
        #: (streaming consumers: the serving layer's SSE publisher).
        self.step_listeners: list = []
        #: Step-boundary preemption handshake (see :meth:`request_preempt`).
        self._preempt_requested = False
        self.preempted = False

    # -- driver --------------------------------------------------------------

    def step(self) -> StepStats:
        """Advance one timestep; returns (and records) the step's stats."""
        p = self.params
        t = self.step_num

        # Vascular pool dynamics (replicated scalar state) + the global
        # attempt schedule every backend applies to the voxels it owns.
        if t >= p.tcell_initial_delay:
            self.pool += p.tcell_generation_rate
        self.pool -= self.pool / p.tcell_vascular_period
        attempts = kernels.extravasation_attempts(p, self.rng, t, self.pool)

        ctx = StepContext(step=t, attempts=attempts, pool=self.pool)
        self.backend.begin_step(ctx)

        tracer = self.tracer
        step_start = perf_counter()
        phase_seconds: dict[str, float] = {}
        obs_phases = self._obs_phases
        for phase in self.schedule:
            start = perf_counter()
            ran = self.backend.execute(phase, ctx)
            elapsed = perf_counter() - start
            skipped = ran is False
            hist, skips = obs_phases[phase.name]
            hist.observe(elapsed)
            if skipped:
                skips.inc()
            if tracer.enabled:
                # Metrics update via the PhaseMetricsSink attached at
                # construction — one span stream feeds both surfaces.
                tracer.emit_span(
                    phase.name, start, elapsed, cat="phase", step=t,
                    skipped=skipped,
                )
            else:
                self.metrics.record(phase.name, elapsed, skipped=skipped)
            if not skipped:
                phase_seconds[phase.name] = elapsed
        step_elapsed = perf_counter() - step_start
        self._obs_step_seconds.observe(step_elapsed)
        self._obs_steps.inc()
        if tracer.enabled:
            tracer.emit_span(
                "step", step_start, step_elapsed, cat="step", step=t,
            )

        if ctx.reduced is None:
            raise RuntimeError(
                f"backend {self.backend.name!r} reduce phase did not set "
                "ctx.reduced"
            )

        # Pool debit + statistics assembly (identical on every substrate).
        self.pool = max(0.0, self.pool - ctx.extravasations)
        stats = StepStats.from_vector(
            t,
            ctx.reduced,
            pool=self.pool,
            extravasations=ctx.extravasations,
            binds=ctx.binds,
            moves=ctx.moves,
        )
        self.series.append(stats)
        record = {"step": t, "phase_seconds": phase_seconds}
        record.update(self.backend.step_record(ctx))
        if "active_voxels" in record:
            self._obs_active_voxels.set(record["active_voxels"])
        self.step_work.append(record)
        self.step_num += 1
        return stats

    # -- step-boundary preemption ---------------------------------------------

    def request_preempt(self) -> None:
        """Ask :meth:`run` to stop before its next step.

        Safe to call from another thread (a bare bool write under the
        GIL): the serving layer's scheduler preempts a long job this way,
        snapshots its state at the quiescent step boundary
        (:func:`repro.io.checkpoint.snapshot_state`) and resumes it later
        — bitwise identically, because no step is ever torn mid-phase.
        """
        self._preempt_requested = True

    def run(self, num_steps: int | None = None) -> TimeSeries:
        """Run ``num_steps`` (default ``params.num_steps``); return the
        accumulated time series.

        Stops early at a step boundary when :meth:`request_preempt` was
        called; ``preempted`` reports whether the last :meth:`run` exited
        that way (the request is consumed either by the break or, when it
        lands after the final step, on return).
        """
        n = num_steps if num_steps is not None else self.params.num_steps
        self.preempted = False
        for _ in range(n):
            if self._preempt_requested:
                self._preempt_requested = False
                self.preempted = True
                break
            stats = self.step()
            for listener in self.step_listeners:
                listener(stats)
        self._preempt_requested = False
        return self.series
