"""Built-in per-phase timing/counter hooks.

Every :class:`~repro.engine.engine.StepEngine` owns a
:class:`PhaseMetrics`; each executed phase contributes host wall-time and
an invocation count, and each skipped phase (a barrier a backend maps to
a no-op, or a periodic phase that is not due) contributes a skip count.
Drivers expose the object as ``sim.phase_metrics``; the Fig 4 ablation
benchmarks and ``repro.perf`` consume it instead of reaching into
variant-specific ledger plumbing.
"""

from __future__ import annotations


class PhaseMetrics:
    """Cumulative wall-time and invocation counters, keyed by phase name."""

    def __init__(self):
        #: Total host seconds spent executing each phase.
        self.seconds: dict[str, float] = {}
        #: Times each phase actually executed.
        self.calls: dict[str, int] = {}
        #: Times each phase was reached but skipped (no-op mapping or
        #: periodic phase not due).
        self.skips: dict[str, int] = {}

    def record(self, name: str, seconds: float, skipped: bool = False) -> None:
        if skipped:
            self.skips[name] = self.skips.get(name, 0) + 1
            return
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.calls[name] = self.calls.get(name, 0) + 1

    def merge(self, other: "PhaseMetrics") -> "PhaseMetrics":
        """Accumulate another instance's counters into this one.

        The aggregation primitive for multi-rank runs: each rank times its
        own phases, and the coordinator merges the per-rank objects into
        one metrics surface (seconds and counts sum per phase).  After a
        merge every counter dict is re-keyed in sorted phase order, so the
        result is deterministic even when ranks saw different phase sets
        in different orders (an idle rank skips phases a busy one ran).
        Returns ``self`` so merges chain.
        """
        for name, sec in other.seconds.items():
            self.seconds[name] = self.seconds.get(name, 0.0) + float(sec)
        for name, n in other.calls.items():
            self.calls[name] = self.calls.get(name, 0) + int(n)
        for name, n in other.skips.items():
            self.skips[name] = self.skips.get(name, 0) + int(n)
        self.seconds = dict(sorted(self.seconds.items()))
        self.calls = dict(sorted(self.calls.items()))
        self.skips = dict(sorted(self.skips.items()))
        return self

    # -- inspection ---------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def phase_names(self) -> tuple[str, ...]:
        """Every phase seen, executed or skipped."""
        return tuple(dict.fromkeys([*self.calls, *self.skips]))

    def summary(self) -> dict[str, dict]:
        """``{phase: {seconds, calls, skips, mean_seconds}}`` rows."""
        out = {}
        for name in self.phase_names():
            calls = self.calls.get(name, 0)
            secs = self.seconds.get(name, 0.0)
            out[name] = {
                "seconds": secs,
                "calls": calls,
                "skips": self.skips.get(name, 0),
                "mean_seconds": secs / calls if calls else 0.0,
            }
        return out

    def format(self) -> str:
        """Aligned text table of :meth:`summary` (debugging helper)."""
        rows = self.summary()
        lines = [
            f"{'phase':<24}{'calls':>7}{'skips':>7}{'seconds':>12}"
            f"{'mean_seconds':>14}"
        ]
        for name, r in rows.items():
            lines.append(
                f"{name:<24}{r['calls']:>7}{r['skips']:>7}"
                f"{r['seconds']:>12.4f}{r['mean_seconds']:>14.6f}"
            )
        return "\n".join(lines)
