"""Base class for the driver shims.

`SequentialSimCov`, `SimCovCPU` and `SimCovGPU` keep their historical
constructor signatures and public attributes, but all of them now build
an :class:`~repro.engine.backend.ExecutionBackend` and delegate the
entire step loop to a shared :class:`~repro.engine.engine.StepEngine`.
This base class wires that delegation: stepping, the time series, the
per-step work records, the per-phase metrics, and the checkpoint state
(``pool`` / ``step_num`` are settable so restore works unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.core.stats import StepStats, TimeSeries
from repro.engine.backend import ExecutionBackend
from repro.engine.engine import StepEngine
from repro.engine.metrics import PhaseMetrics
from repro.engine.phases import Phase


class EngineDriver:
    """Thin facade over a StepEngine + backend pair."""

    backend: ExecutionBackend
    engine: StepEngine

    def _init_engine(
        self,
        backend: ExecutionBackend,
        schedule: tuple[Phase, ...] | None = None,
        tracer=None,
    ) -> None:
        self.backend = backend
        self.engine = StepEngine(backend, schedule, tracer=tracer)
        self.params = backend.params
        self.rng = backend.rng
        self.spec = backend.spec
        self.seed_gids = backend.seed_gids

    # -- stepping ------------------------------------------------------------

    def step(self) -> StepStats:
        return self.engine.step()

    def run(self, num_steps: int | None = None) -> TimeSeries:
        return self.engine.run(num_steps)

    # -- streaming / preemption (serving-layer surface) ------------------------

    def add_step_listener(self, listener) -> None:
        """Call ``listener(stats)`` after every step executed by
        :meth:`run` (per-step streaming: SSE, progress reporting)."""
        self.engine.step_listeners.append(listener)

    def request_preempt(self) -> None:
        """Stop the in-flight :meth:`run` at the next step boundary
        (thread-safe; see :meth:`StepEngine.request_preempt`)."""
        self.engine.request_preempt()

    @property
    def preempted(self) -> bool:
        """Whether the last :meth:`run` exited on a preemption request."""
        return self.engine.preempted

    # -- engine state (checkpointable scalars have setters) -------------------

    @property
    def pool(self) -> float:
        return self.engine.pool

    @pool.setter
    def pool(self, value: float) -> None:
        self.engine.pool = value

    @property
    def step_num(self) -> int:
        return self.engine.step_num

    @step_num.setter
    def step_num(self, value: int) -> None:
        self.engine.step_num = value

    @property
    def series(self) -> TimeSeries:
        return self.engine.series

    @property
    def step_work(self) -> list[dict]:
        return self.engine.step_work

    @property
    def phase_metrics(self) -> PhaseMetrics:
        """Cumulative per-phase wall-time / call / skip counters."""
        return self.engine.metrics

    @property
    def schedule(self) -> tuple[Phase, ...]:
        """The declarative phase schedule this driver executes."""
        return self.engine.schedule

    @property
    def tracer(self):
        """The engine's telemetry tracer (the no-op tracer by default)."""
        return self.engine.tracer

    # -- inspection ----------------------------------------------------------

    def gather_field(self, name: str) -> np.ndarray:
        return self.backend.gather_field(name)
