"""Phase-pipeline execution engine.

The per-step schedule of the simulation is data: an ordered tuple of
:class:`Phase` objects (kernel phases and exchange barriers, drawn from
the canonical :data:`PHASE_ORDER` vocabulary).  A :class:`StepEngine`
executes a schedule against an :class:`ExecutionBackend` — sequential,
PGAS or GPU-cluster — timing every phase.  The historical drivers are
thin shims over this machinery (see :mod:`repro.engine.driver`).
"""

from repro.engine.activity import ActivityGate
from repro.engine.backend import ExecutionBackend
from repro.engine.driver import EngineDriver
from repro.engine.engine import StepContext, StepEngine
from repro.engine.ensemble import (
    EnsembleActivityGate,
    EnsembleBackend,
    EnsembleEngine,
    EnsembleMemberView,
    EnsembleSeries,
    EnsembleSimCov,
    MemberSeries,
    expand_sweep,
)
from repro.engine.gpu import GpuClusterBackend
from repro.engine.metrics import PhaseMetrics
from repro.engine.pgas import PgasBackend
from repro.engine.phases import (
    PHASE_KINDS,
    PHASE_ORDER,
    REQUIRED_PHASES,
    FieldSet,
    Phase,
    PhaseKind,
    describe_schedule,
    exchange,
    kernel,
    validate_schedule,
)
from repro.engine.sequential import SequentialBackend

__all__ = [
    "PHASE_KINDS",
    "PHASE_ORDER",
    "REQUIRED_PHASES",
    "ActivityGate",
    "EngineDriver",
    "EnsembleActivityGate",
    "EnsembleBackend",
    "EnsembleEngine",
    "EnsembleMemberView",
    "EnsembleSeries",
    "EnsembleSimCov",
    "ExecutionBackend",
    "FieldSet",
    "GpuClusterBackend",
    "MemberSeries",
    "PgasBackend",
    "Phase",
    "PhaseKind",
    "PhaseMetrics",
    "SequentialBackend",
    "StepContext",
    "StepEngine",
    "describe_schedule",
    "exchange",
    "expand_sweep",
    "kernel",
    "validate_schedule",
]
