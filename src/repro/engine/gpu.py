"""The GPU-cluster execution backend (SIMCoV-GPU substrate).

Wraps :class:`~repro.gpusim.cluster.GpuCluster`, tile activation and the
single-wave bid-max tiebreak (§3.1, Fig 2) behind the engine protocol:

- ``boundary_exchange`` maps to halo wave A (boundary state + T-cell
  payload, REPLACE);
- ``tiebreak_exchange`` maps to halo wave B — intent fields REPLACE, bid
  fields MAX-merged — the paper's single communication round;
- ``concentration_exchange`` maps to halo wave C;
- kernel phases launch over the active tiles of every device, with work
  recorded to the device ledgers, and ``tile_sweep`` runs the periodic
  §3.2 activation sweep.

The Fig 4 optimization variants (:class:`~repro.simcov_gpu.variants.GpuVariant`)
select tiling and the reduction scheme.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.core.stats import REDUCED_FIELDS
from repro.engine.backend import ExecutionBackend
from repro.engine.phases import FieldSet, Phase, exchange, kernel
from repro.grid.decomposition import Decomposition, DecompositionKind
from repro.grid.halo import HaloExchanger, MergeMode
from repro.grid.tiling import TileGrid
from repro.gpusim.cluster import GpuCluster
from repro.gpusim.ledger import KernelCategory
from repro.gpusim.reduction import atomic_reduce, tree_reduce_device
from repro.simcov_gpu.variants import GpuVariant

#: Halo wave A fields (boundary state; payload rides along so arrivals can
#: be instantiated from ghost copies).
_WAVE_A = ("epi_state", "tcell", "tcell_tissue_time", "tcell_bound_time")
#: Halo wave C fields (post-production concentrations).
_WAVE_C = ("virions", "chemokine")


class GpuClusterBackend(ExecutionBackend):
    """Device-parallel SIMCoV on the GPU cluster simulator.

    Parameters
    ----------
    params, seed:
        As for the other backends; identical seeds give bitwise identical
        simulations.
    num_devices:
        GPUs (Perlmutter packs 4 per node).
    variant:
        Optimization prototype (Fig 4); default COMBINED.
    tile_shape:
        Memory-tile extents (§3.2); must be at most the per-device
        subdomain.  Default 8 per dimension.
    sweep_period:
        Steps between tile-activation sweeps; default (and maximum sound
        value) is the smallest tile side.
    """

    name = "gpu_cluster"

    def __init__(
        self,
        params: SimCovParams,
        num_devices: int,
        seed: int = 0,
        variant: GpuVariant = GpuVariant.COMBINED,
        gpus_per_node: int = 4,
        tile_shape: tuple[int, ...] | None = None,
        sweep_period: int | None = None,
        decomposition: DecompositionKind = DecompositionKind.BLOCK,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        capacity_bytes: int | None = None,
    ):
        self._init_common(params, seed)
        self.variant = variant
        self.decomp = Decomposition.make(self.spec, num_devices, decomposition)
        from repro.gpusim.device import A100_BYTES

        self.cluster = GpuCluster(
            num_devices,
            gpus_per_node=gpus_per_node,
            capacity_bytes=capacity_bytes or A100_BYTES,
        )
        self.exchanger = HaloExchanger(
            self.decomp, on_message=self.cluster.halo_message_hook()
        )
        self.blocks = [
            VoxelBlock(self.spec, self.decomp.boxes[d]) for d in range(num_devices)
        ]
        self.intents = [kernels.IntentArrays(b.shape) for b in self.blocks]
        self._scratch = [
            (np.zeros_like(b.virions), np.zeros_like(b.chemokine))
            for b in self.blocks
        ]
        # Register every buffer against the device's memory capacity — the
        # §4.2 sizing constraint ("approximately the number of voxels that
        # fit into the A100s' available memory") enforced for real.
        for d, (block, intents, scratch) in enumerate(
            zip(self.blocks, self.intents, self._scratch)
        ):
            device = self.cluster.devices[d]
            for name in VoxelBlock.STATE_FIELDS + ("epi_timer", "gid"):
                device.adopt(name, getattr(block, name))
            for name in (
                kernels.IntentArrays.REPLACE_FIELDS
                + kernels.IntentArrays.MAX_FIELDS
            ):
                device.adopt(f"intent_{name}", getattr(intents, name))
            device.adopt("scratch_virions", scratch[0])
            device.adopt("scratch_chemokine", scratch[1])
        if tile_shape is None:
            tile_shape = tuple(
                min(8, s) for s in self.decomp.boxes[0].shape
            )
        domain = self.spec.domain
        self.tiles = []
        for d in range(num_devices):
            box = self.decomp.boxes[d]
            # Only sides facing another device carry ghost traffic and need
            # their tile shell pinned (§3.2).
            pin = [
                (box.lo[a] > domain.lo[a], box.hi[a] < domain.hi[a])
                for a in range(self.spec.ndim)
            ]
            self.tiles.append(
                TileGrid(
                    box.shape,
                    tuple(min(t, s) for t, s in zip(tile_shape, box.shape)),
                    ghost=1,
                    pin_sides=pin,
                )
            )
        if variant.use_tiling:
            max_period = min(tg.max_sweep_period() for tg in self.tiles)
            self.sweep_period = (
                min(sweep_period, max_period) if sweep_period else max_period
            )
        else:
            # No tiling: every tile is permanently active, no sweeps.
            for tg in self.tiles:
                tg.activate_all()
            self.sweep_period = 0
        self._seed_blocks(self.blocks, seed_gids, structure_gids)
        # Per-step scratch (reset by begin_step).
        self._extr_local: list[int] = []
        self._moves_local: list[int] = []
        self._binds_local: list[int] = []
        self._ledger_before = None

    # -- schedule ------------------------------------------------------------

    def schedule(self) -> tuple[Phase, ...]:
        """Halo waves A/B/C + the single-wave bid-max tiebreak (Fig 2)."""
        return (
            exchange("open_exchange", doc="no-op: ghosts refresh in wave A"),
            kernel("age_extravasate"),
            exchange(
                "boundary_exchange",
                FieldSet("state", _WAVE_A, MergeMode.REPLACE),
                doc="halo wave A: boundary state + T-cell payload",
            ),
            kernel("intents", doc="choose-direction/bid kernels"),
            exchange(
                "tiebreak_exchange",
                FieldSet(
                    "intent", kernels.IntentArrays.REPLACE_FIELDS,
                    MergeMode.REPLACE,
                ),
                FieldSet(
                    "intent", kernels.IntentArrays.MAX_FIELDS, MergeMode.MAX
                ),
                doc="halo wave B: the single tiebreak exchange of §3.1",
            ),
            kernel("resolve", doc="assign winners + move/bind kernels"),
            exchange("result_exchange", doc="no-op: single-wave tiebreak"),
            kernel("apply_results", doc="no-op: winners resolved locally"),
            kernel("epithelial"),
            exchange(
                "concentration_exchange",
                FieldSet("state", _WAVE_C, MergeMode.REPLACE),
                doc="halo wave C: concentrations",
            ),
            kernel("diffuse"),
            kernel("reduce", doc="per-device reduction + cross-device reduce"),
            kernel("tile_sweep", doc="periodic tile-activation sweep (§3.2)"),
        )

    # -- tiled kernel launching --------------------------------------------------

    def _regions(self, d: int) -> list[tuple[slice, ...]]:
        """Padded-array regions of device ``d``'s active tiles."""
        g = self.blocks[d].ghost
        return [
            tuple(slice(s.start + g, s.stop + g) for s in sl)
            for sl in self.tiles[d].active_tile_slices()
        ]

    def _active_voxels(self, d: int) -> int:
        return self.tiles[d].active_voxel_count()

    def _launch_tiled(self, d: int, category: KernelCategory, fn) -> None:
        """One kernel launch covering the active tiles of device ``d``.

        The real code launches a single grid over the active-tile list; we
        run ``fn(region)`` per tile but count one launch with the active
        voxel total.
        """
        device = self.cluster.devices[d]

        def body():
            for region in self._regions(d):
                fn(region)

        device.launch(category, self._active_voxels(d), body)

    # -- engine protocol ---------------------------------------------------------

    def begin_step(self, ctx) -> None:
        nd = self.cluster.num_devices
        self._ledger_before = self.cluster.ledger.snapshot()
        self._extr_local = [0] * nd
        self._moves_local = [0] * nd
        self._binds_local = [0] * nd

    def exchange(self, phase, ctx):
        if not phase.exchanges:
            return False
        for fs in phase.exchanges:
            holders = self.blocks if fs.scope == "state" else self.intents
            for name in fs.fields:
                self.exchanger.exchange(
                    [getattr(h, name) for h in holders], fs.merge
                )

    def step_record(self, ctx) -> dict:
        active = [
            self._active_voxels(d) for d in range(self.cluster.num_devices)
        ]
        if self.tracer:
            self.tracer.gauge(
                "active_voxels", sum(active), cat="gating", step=ctx.step,
                per_device=active, tiling=self.variant.use_tiling,
            )
        return {
            "active_per_device": active,
            "ledger": self.cluster.ledger.minus(self._ledger_before),
        }

    # -- kernel phases -----------------------------------------------------------

    def phase_age_extravasate(self, ctx) -> None:
        p = self.params
        for d in range(self.cluster.num_devices):
            self._launch_tiled(
                d, KernelCategory.UPDATE_AGENTS,
                lambda region, d=d: kernels.tcell_age(self.blocks[d], region),
            )
            device = self.cluster.devices[d]
            self._extr_local[d] = device.launch(
                KernelCategory.UPDATE_AGENTS,
                ctx.attempts["gid"].size,
                lambda d=d: kernels.apply_extravasation(
                    p, self.blocks[d], ctx.attempts
                ),
            )

    def phase_intents(self, ctx) -> None:
        p = self.params
        for d in range(self.cluster.num_devices):
            self.intents[d].clear()
            self._launch_tiled(
                d, KernelCategory.UPDATE_AGENTS,
                lambda region, d=d: kernels.tcell_intents(
                    p, self.rng, ctx.step, self.blocks[d], self.intents[d],
                    region,
                ),
            )

    def phase_resolve(self, ctx) -> None:
        """Assign winners ("set flips"), then move agents (Fig 2).

        Two separate launches so every tile's winners are computed against
        pristine state before any tile commits — on hardware, the kernel
        boundary is the synchronization point.
        """
        p = self.params
        for d in range(self.cluster.num_devices):
            movesets: list[kernels.MoveSet] = []
            self._launch_tiled(
                d, KernelCategory.UPDATE_AGENTS,
                lambda region, d=d, ms=movesets: ms.append(
                    kernels.compute_moves(self.blocks[d], self.intents[d], region)
                ),
            )

            def move_and_bind(region, d=d, ms=movesets):
                for m in ms:
                    if m.region == region:
                        self._moves_local[d] += kernels.commit_moves(
                            self.blocks[d], m
                        )
                self._binds_local[d] += kernels.resolve_binds(
                    p, self.rng, ctx.step, self.blocks[d], self.intents[d],
                    region,
                )

            self._launch_tiled(d, KernelCategory.UPDATE_AGENTS, move_and_bind)

    def phase_epithelial(self, ctx) -> None:
        p = self.params
        for d in range(self.cluster.num_devices):
            def epi(region, d=d):
                kernels.epithelial_update(
                    p, self.rng, ctx.step, self.blocks[d], region
                )
                kernels.production_update(p, self.blocks[d], region, step=ctx.step)

            self._launch_tiled(d, KernelCategory.UPDATE_AGENTS, epi)

    def phase_diffuse(self, ctx) -> None:
        p = self.params
        for d in range(self.cluster.num_devices):
            kernels.mirror_fields(self.blocks[d])
            sv, sc = self._scratch[d]
            regions = self._regions(d)

            def diffuse(region, d=d, sv=sv, sc=sc):
                kernels.concentration_update(p, self.blocks[d], region, sv, sc)

            self._launch_tiled(d, KernelCategory.UPDATE_AGENTS, diffuse)
            kernels.concentration_commit(
                p, self.blocks[d], regions, sv, sc, step=ctx.step
            )

    def phase_reduce(self, ctx) -> None:
        """Per-device reduction (atomics or tree, per variant), then
        cross-device reduce."""
        nd = self.cluster.num_devices
        partials = [self._device_stats(d) for d in range(nd)]
        reduced = np.zeros(len(REDUCED_FIELDS), dtype=np.float64)
        for i in range(len(REDUCED_FIELDS)):
            reduced[i] = self.cluster.reduce_scalar([v[i] for v in partials])
        ctx.reduced = reduced
        ctx.extravasations = int(
            self.cluster.reduce_scalar([float(e) for e in self._extr_local])
        )
        ctx.binds = int(
            self.cluster.reduce_scalar([float(b) for b in self._binds_local])
        )
        ctx.moves = int(
            self.cluster.reduce_scalar([float(m) for m in self._moves_local])
        )

    def phase_tile_sweep(self, ctx):
        """Periodic tile-activation sweep (§3.2).  Boundary tiles are pinned
        and buffered inside TileGrid.sweep, so activity arriving from
        neighbor devices is always covered."""
        if not self.variant.use_tiling:
            return False
        if (ctx.step + 1) % self.sweep_period != 0:
            return False
        p = self.params
        for d in range(self.cluster.num_devices):
            device = self.cluster.devices[d]
            block = self.blocks[d]
            device.launch(
                KernelCategory.TILE_SWEEP,
                block.owned.size,
                lambda d=d, block=block: self.tiles[d].sweep(
                    block.activity_mask_padded(p.min_chemokine), padded=True
                ),
            )

    # -- statistics ------------------------------------------------------------------

    def _device_stats(self, d: int) -> np.ndarray:
        """One device's stats partials, via the variant's reduction scheme.

        Both schemes sweep *every* owned voxel (§3.3: reducing over the full
        space beats scattering atomics through the update kernels); they
        differ in how values are accumulated.
        """
        block = self.blocks[d]
        device = self.cluster.devices[d]
        sl = block.interior
        state = block.epi_state[sl]
        fields = [
            (state == EpiState.HEALTHY),
            (state == EpiState.INCUBATING),
            (state == EpiState.EXPRESSING),
            (state == EpiState.APOPTOTIC),
            (state == EpiState.DEAD),
            (block.tcell[sl] != 0),
            block.virions[sl],
            block.chemokine[sl],
        ]
        n = state.size
        out = np.empty(len(fields), dtype=np.float64)

        def body():
            for i, f in enumerate(fields):
                arr = np.asarray(f, dtype=np.float64)
                if self.variant.use_tree_reduction:
                    out[i] = tree_reduce_device(device, arr)
                else:
                    out[i] = atomic_reduce(device, arr)

        device.launch(
            KernelCategory.REDUCE_STATS, n * len(fields), body, bytes_per_voxel=8
        )
        return out

    # -- inspection ------------------------------------------------------------------

    def gather_field(self, name: str) -> np.ndarray:
        return self.exchanger.gather_global(
            [getattr(b, name) for b in self.blocks]
        )

    def active_fraction(self) -> float:
        total = sum(b.owned.size for b in self.blocks)
        active = sum(self._active_voxels(d) for d in range(len(self.blocks)))
        return active / total
