"""Activity gating: the shared active-region layer for CPU-side backends.

The paper's memory-tiling insight (§3.2) is that early- and late-infection
steps touch only a tiny fraction of the domain, so kernels should skip
inactive space.  :class:`ActivityGate` packages that rule once, for every
backend that runs numpy kernels over region slices:

- **periodic-sweep mode** (``sweep_period > 1``): a coarse
  :class:`~repro.grid.tiling.TileGrid` mask is re-derived every
  ``sweep_period`` steps from the block's per-voxel activity mask, exactly
  the GPU backend's §3.2 rule — the sweep may run as rarely as once per
  ``min(tile_shape)`` steps provided activating a tile also activates a
  one-tile buffer around it and ghost-facing tiles stay pinned active,
  because nothing in SIMCoV moves faster than one voxel per step;
- **refresh mode** (``sweep_period == 1``): the per-voxel mask is
  recomputed every step and dilated by one voxel — the CPU active-list of
  §2.2, which the PGAS backend runs after its start-of-step ghost
  exchange so activity arriving from a neighbor rank is seen in time.

Either way the gate exposes one *bounding region* (padded-array slices)
that kernels execute over.  Voxels inside the region but outside the raw
activity mask are provably no-ops, and all randomness is keyed by global
voxel id (counter-based, stateless per draw), so gated runs are **bitwise
identical** to ungated runs — the contract enforced by
tests/properties/test_gating_equivalence.py and the golden traces.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import VoxelBlock
from repro.grid.tiling import TileGrid, _dilate


class ActivityGate:
    """Tracks the region of a block that kernels must process.

    Parameters
    ----------
    block:
        The ghost-padded block whose activity is tracked.
    min_chemokine:
        Signal threshold of the activity definition (sub-threshold signal
        is zeroed at commit time, so it cannot seed future activity).
    sweep_period:
        Steps between sweeps.  ``1`` selects refresh mode (every-step
        mask recompute, one-voxel dilation); ``> 1`` selects periodic
        tile sweeps.  Default: the largest sound period,
        ``min(tile_shape)`` (refresh mode when that is 1).
    tile_shape:
        Tile extents for periodic-sweep mode; default 8 per dimension
        (clipped to the block).  Ignored in refresh mode.
    pin_sides:
        (ndim, 2) booleans: pin the (low, high) tile shell of each axis
        permanently active (§3.2: tiles containing ghost voxels stay
        active, so activity arriving from a neighbor block between sweeps
        is always covered).  Only meaningful with ``sweep_period > 1``;
        default pins nothing (a single block has no neighbors).
    enabled:
        ``False`` forces the ungated path: the region is always the full
        interior and sweeps never run (the benchmark/testing baseline).
    """

    def __init__(
        self,
        block: VoxelBlock,
        min_chemokine: float,
        sweep_period: int | None = None,
        tile_shape: tuple[int, ...] | None = None,
        pin_sides=None,
        enabled: bool = True,
    ):
        self.block = block
        self.min_chemokine = float(min_chemokine)
        self.enabled = bool(enabled)
        owned = block.owned.shape
        if tile_shape is None:
            tile_shape = tuple(min(8, s) for s in owned)
        else:
            tile_shape = tuple(min(int(t), s) for t, s in zip(tile_shape, owned))
        if pin_sides is None:
            pin_sides = np.zeros((len(owned), 2), dtype=bool)
        self.tiles = TileGrid(owned, tile_shape, ghost=block.ghost,
                              pin_sides=pin_sides)
        max_period = self.tiles.max_sweep_period()
        if sweep_period is None:
            sweep_period = max_period
        sweep_period = int(sweep_period)
        if not 1 <= sweep_period <= max_period:
            raise ValueError(
                f"sweep_period {sweep_period} outside sound range "
                f"[1, {max_period}] for tiles {tile_shape}"
            )
        self.sweep_period = sweep_period
        #: Everything starts active (like the GPU tile grid): correct for
        #: fresh runs *and* for checkpoints resumed mid-run, where the
        #: first due sweep re-derives the true active set.
        self._mask = np.ones(owned, dtype=bool)
        self._count = int(np.prod(owned))
        self._region: tuple[slice, ...] | None = block.interior

    # -- the sweep rule -------------------------------------------------------

    def due(self, step: int) -> bool:
        """Whether the end-of-step sweep is due after ``step`` (mirrors the
        GPU backend: the sweep at the end of step ``s`` covers steps
        ``s+1 .. s+sweep_period``)."""
        return self.enabled and (step + 1) % self.sweep_period == 0

    def sweep(self) -> int:
        """Re-derive the active region from current block state.

        Refresh mode scans the padded activity mask and dilates by one
        voxel; periodic mode runs the §3.2 tile sweep (tile-granular raw
        activation + one-tile dilation + boundary pinning).  Returns the
        number of voxels scanned (the sweep kernel's cost).
        """
        if not self.enabled:
            return 0
        raw = self.block.activity_mask_padded(self.min_chemokine)
        g = self.block.ghost
        if self._use_tiles:
            self.tiles.sweep(raw, padded=True)
            self._mask = self.tiles.voxel_mask()
        else:
            dilated = _dilate(raw)
            crop = tuple(slice(g, s - g) for s in dilated.shape)
            self._mask = dilated[crop]
        self._count = int(self._mask.sum())
        self._region = self._bbox()
        return int(np.prod(self.block.owned.shape))

    #: Alias used by every-step callers (the historical ActiveRegion API).
    refresh = sweep

    @property
    def _use_tiles(self) -> bool:
        return self.sweep_period > 1 or bool(self.tiles.pin_sides.any())

    def _bbox(self) -> tuple[slice, ...] | None:
        """Padded-array slices of the active bounding box (None if idle)."""
        if not self._mask.any():
            return None
        g = self.block.ghost
        sls = []
        for axis in range(self._mask.ndim):
            other = tuple(a for a in range(self._mask.ndim) if a != axis)
            proj = self._mask.any(axis=other)
            idx = np.nonzero(proj)[0]
            sls.append(slice(int(idx[0]) + g, int(idx[-1]) + 1 + g))
        return tuple(sls)

    # -- consumers ------------------------------------------------------------

    def region(self) -> tuple[slice, ...] | None:
        """Padded-array slices kernels must process (None if idle).

        The full interior when gating is disabled or no sweep ran yet.
        """
        if not self.enabled:
            return self.block.interior
        return self._region

    def region_box(self):
        """The current region as a global-coordinate :class:`Box`, or None
        when idle — the value a dist worker publishes into the control
        segment's strip-liveness row (every kernel's writes this step are
        confined to this box, so peers may skip pulls it cannot touch)."""
        region = self.region()
        if region is None:
            return None
        from repro.grid.box import Box

        origin = self.block.origin
        return Box(
            tuple(o + s.start for o, s in zip(origin, region)),
            tuple(o + s.stop for o, s in zip(origin, region)),
        )

    @property
    def count(self) -> int:
        """Active voxels (the perf model's work unit)."""
        if not self.enabled:
            return int(np.prod(self.block.owned.shape))
        return self._count

    @property
    def mask(self) -> np.ndarray:
        """Owned-shape boolean mask of the tracked active set."""
        return self._mask

    def fraction(self) -> float:
        """Active fraction of the owned region."""
        return self.count / int(np.prod(self.block.owned.shape))
