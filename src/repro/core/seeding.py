"""Initial-condition generators: foci of infection (FOI).

The paper's experiments seed 16–1024 point FOI uniformly at random (Table
1); the Discussion motivates *patchy lesion* initializations derived from
patient CT scans, which we synthesize as random disks (DESIGN.md §2
substitution: synthetic patchy lesions exercise the same many-FOI code
path as CT-derived initializations).
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock
from repro.grid.spec import GridSpec
from repro.rng.streams import Stream, VoxelRNG


def seed_infections(params: SimCovParams, rng: VoxelRNG) -> np.ndarray:
    """``num_infections`` distinct uniformly random voxel gids.

    Deterministic in (seed, params): collisions are resolved by redrawing
    with an incremented round counter, identically on every rank/device.
    """
    n = params.num_infections
    chosen: list[int] = []
    seen: set[int] = set()
    round_ = 0
    while len(chosen) < n:
        need = n - len(chosen)
        draws = rng.randint(
            Stream.SEEDING, round_, np.arange(need, dtype=np.int64),
            params.num_voxels,
        )
        for g in draws:
            g = int(g)
            if g not in seen:
                seen.add(g)
                chosen.append(g)
        round_ += 1
        if round_ > 10_000:  # pragma: no cover - defensive
            raise RuntimeError("seeding failed to find distinct voxels")
    return np.array(chosen[:n], dtype=np.int64)


def patchy_lesions(
    params: SimCovParams,
    rng: VoxelRNG,
    num_lesions: int,
    mean_radius: float,
) -> np.ndarray:
    """CT-like initialization: disk-shaped lesions of Poisson radii.

    Returns the (distinct) gids of all voxels inside any lesion.  Lesion
    centers are uniform; radii are ``max(1, Poisson(mean_radius))``.
    """
    spec = GridSpec(params.dim)
    idx = np.arange(num_lesions, dtype=np.int64)
    center_gids = rng.randint(Stream.LESION, 0, idx, params.num_voxels)
    radii = np.maximum(1, rng.poisson(Stream.LESION, 1, idx, mean_radius))
    centers = spec.unravel(center_gids)
    out: set[int] = set()
    for c, r in zip(centers, radii):
        r = int(r)
        axes = [
            np.arange(max(0, c[d] - r), min(spec.shape[d], c[d] + r + 1))
            for d in range(spec.ndim)
        ]
        mesh = np.stack(np.meshgrid(*axes, indexing="ij"), axis=-1).reshape(
            -1, spec.ndim
        )
        dist2 = ((mesh - c) ** 2).sum(axis=1)
        inside = mesh[dist2 <= r * r]
        out.update(int(g) for g in spec.ravel(inside))
    return np.array(sorted(out), dtype=np.int64)


def apply_seeds(block: VoxelBlock, gids: np.ndarray) -> int:
    """Deposit a unit virion concentration at each seeded voxel this block
    owns; returns the number applied locally."""
    if gids.size == 0:
        return 0
    sl = block.interior
    gid_interior = block.gid[sl]
    shape = gid_interior.shape
    flat_gid = gid_interior.reshape(-1)
    order = np.argsort(flat_gid, kind="stable")
    pos = np.clip(np.searchsorted(flat_gid, gids, sorter=order), 0, flat_gid.size - 1)
    local_flat = order[pos]
    mine = flat_gid[local_flat] == gids
    virions = block.virions[sl]
    count = 0
    for j in local_flat[mine]:
        virions[np.unravel_index(int(j), shape)] = 1.0
        count += 1
    return count
