"""The SIMCoV biological model (paper §2.2).

This package owns everything the three implementations share: the
parameter set (:mod:`~repro.core.params`), the voxel state arrays
(:mod:`~repro.core.state`), the vectorized update kernels
(:mod:`~repro.core.kernels`), FOI seeding (:mod:`~repro.core.seeding`),
statistics (:mod:`~repro.core.stats`) and the sequential reference
implementation (:mod:`~repro.core.model`), which defines ground-truth
semantics that SIMCoV-CPU and SIMCoV-GPU must (and, in this reproduction,
bitwise do) match.
"""

from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.core.stats import StepStats, TimeSeries
from repro.core.model import SequentialSimCov

__all__ = [
    "SimCovParams",
    "EpiState",
    "VoxelBlock",
    "StepStats",
    "TimeSeries",
    "SequentialSimCov",
]
