"""The SIMCoV biological model (paper §2.2).

This package owns everything the three implementations share: the
parameter set (:mod:`~repro.core.params`), the voxel state arrays
(:mod:`~repro.core.state`), the vectorized update kernels
(:mod:`~repro.core.kernels`), FOI seeding (:mod:`~repro.core.seeding`),
statistics (:mod:`~repro.core.stats`) and the sequential reference
implementation (:mod:`~repro.core.model`), which defines ground-truth
semantics that SIMCoV-CPU and SIMCoV-GPU must (and, in this reproduction,
bitwise do) match.
"""

from repro.core.params import SimCovParams
from repro.core.state import EpiState, VoxelBlock
from repro.core.stats import StepStats, TimeSeries

# SequentialSimCov is imported lazily: model.py pulls in the execution
# engine, whose backends import repro.core.* in turn — an eager import
# here makes `import repro.engine` from a fresh interpreter impossible
# (the packages initialize mid-way through each other).
_LAZY = {
    "SequentialSimCov": ("repro.core.model", "SequentialSimCov"),
}

__all__ = [
    "SimCovParams",
    "EpiState",
    "VoxelBlock",
    "StepStats",
    "TimeSeries",
    "SequentialSimCov",
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.core' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
