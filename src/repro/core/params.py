"""SIMCoV parameters.

Defaults follow the COVID-19 parameterization of Moses et al. [25] used by
the paper's evaluation (§4.2: "The default COVID-19 parameters from Moses
et al. were used"): one timestep is one simulated minute (33,120 steps ≈
23 days), concentrations are per-voxel fractions clamped to [0, 1], and
period parameters are Poisson means in steps.

``fast_test`` provides a time-compressed parameterization whose infection
dynamics complete in a few hundred steps on small grids — used by the test
suite, the examples and the scaled-down benchmark harness (see DESIGN.md §2
on resolution scaling).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

#: Simulated minutes per timestep (Moses et al.: 33,120 steps ≈ 23 days).
MINUTES_PER_STEP = 1.0


@dataclass(frozen=True)
class SimCovParams:
    """Full parameter set for one SIMCoV simulation."""

    #: Grid extents in voxels: (x, y) for 2D, (x, y, z) for 3D.
    dim: tuple[int, ...] = (100, 100)
    #: Number of initial foci of infection (FOI), the Fig 8 variable.
    num_infections: int = 1
    #: Simulation length in timesteps.
    num_steps: int = 33_120

    # -- epithelial cells ---------------------------------------------------
    #: Mean steps from infection to the expressing state (Poisson).
    incubation_period: int = 480
    #: Mean steps an expressing cell survives unbound (Poisson).
    expressing_period: int = 900
    #: Mean steps from T-cell-induced apoptosis to death (Poisson).
    apoptosis_period: int = 180
    #: Probability per step that a unit virion concentration infects.
    infectivity: float = 0.001
    #: Virion concentration added per step by an infected cell.
    virion_production: float = 1.1
    #: Fraction of virion concentration cleared per step.
    virion_clearance: float = 0.004
    #: Virion diffusion coefficient in [0, 1].
    virion_diffusion: float = 0.15

    # -- inflammatory signal ---------------------------------------------------
    #: Concentration added per step by expressing/apoptotic cells.
    chemokine_production: float = 1.0
    #: Fraction of signal cleared per step.
    chemokine_decay: float = 0.01
    #: Signal diffusion coefficient in [0, 1].
    chemokine_diffusion: float = 1.0
    #: Concentrations below this threshold are zeroed (bounds activity).
    min_chemokine: float = 1e-6

    # -- T cells -----------------------------------------------------------------
    #: New T cells entering the vasculature pool per step (already scaled
    #: to the simulated tissue fraction).
    tcell_generation_rate: float = 105_000.0
    #: Steps before the adaptive response begins generating T cells.
    tcell_initial_delay: int = 10_080
    #: Mean steps a T cell survives in the vasculature (exponential decay).
    tcell_vascular_period: int = 5_760
    #: Mean steps a T cell survives in tissue (Poisson).
    tcell_tissue_period: int = 1_440
    #: Steps a T cell stays bound to the cell it is killing.
    tcell_binding_period: int = 10
    #: Per-step probability that a vascular T cell attempts extravasation.
    extravasate_fraction: float = 0.05

    # -- interventions (optional model features of Moses et al. [25]) -----
    #: Step at which an antiviral treatment begins (None = never).  From
    #: that step on, virion production is multiplied by
    #: ``antiviral_factor`` — modeling replication inhibitors.
    antiviral_start: int | None = None
    antiviral_factor: float = 0.1
    #: Step at which neutralizing antibodies appear (None = never).  From
    #: that step on, virion clearance is multiplied by
    #: ``antibody_factor`` (> 1 clears faster).
    antibody_start: int | None = None
    antibody_factor: float = 4.0

    def __post_init__(self):
        dim = tuple(int(d) for d in self.dim)
        if len(dim) not in (2, 3):
            raise ValueError(f"dim must be 2D or 3D, got {dim}")
        if any(d <= 0 for d in dim):
            raise ValueError(f"dim extents must be positive: {dim}")
        object.__setattr__(self, "dim", dim)
        if self.num_infections < 0:
            raise ValueError("num_infections must be >= 0")
        if self.num_infections > self.num_voxels:
            raise ValueError(
                f"{self.num_infections} FOI do not fit in {self.num_voxels} voxels"
            )
        for name in ("infectivity", "virion_clearance", "chemokine_decay",
                     "extravasate_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        for name in ("virion_diffusion", "chemokine_diffusion"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        for name in ("incubation_period", "expressing_period", "apoptosis_period",
                     "tcell_tissue_period", "tcell_binding_period"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.tcell_vascular_period < 1:
            raise ValueError("tcell_vascular_period must be >= 1")
        if self.antiviral_factor < 0:
            raise ValueError("antiviral_factor must be >= 0")
        if self.antibody_factor < 0:
            raise ValueError("antibody_factor must be >= 0")
        if (
            self.antibody_start is not None
            and min(1.0, self.virion_clearance * self.antibody_factor) < 0
        ):  # pragma: no cover - arithmetic guard
            raise ValueError("invalid antibody configuration")

    # -- intervention helpers -------------------------------------------------

    def virion_production_at(self, step: int) -> float:
        """Effective per-step virion production, antiviral-adjusted."""
        if self.antiviral_start is not None and step >= self.antiviral_start:
            return self.virion_production * self.antiviral_factor
        return self.virion_production

    def virion_clearance_at(self, step: int) -> float:
        """Effective per-step virion clearance, antibody-adjusted
        (clamped to [0, 1] — clearance is a fraction)."""
        if self.antibody_start is not None and step >= self.antibody_start:
            return min(1.0, self.virion_clearance * self.antibody_factor)
        return self.virion_clearance

    # -- derived -------------------------------------------------------------

    @property
    def ndim(self) -> int:
        return len(self.dim)

    @property
    def num_voxels(self) -> int:
        n = 1
        for d in self.dim:
            n *= d
        return n

    @property
    def simulated_days(self) -> float:
        return self.num_steps * MINUTES_PER_STEP / (24 * 60)

    def with_(self, **kwargs) -> "SimCovParams":
        """A copy with fields replaced (dataclasses.replace wrapper)."""
        return replace(self, **kwargs)

    # -- canned parameterizations ------------------------------------------------

    @classmethod
    def default_covid(
        cls, dim=(10_000, 10_000), num_infections=16, num_steps=33_120
    ) -> "SimCovParams":
        """The paper's base experimental configuration (Table 1 rows)."""
        return cls(dim=dim, num_infections=num_infections, num_steps=num_steps)

    @classmethod
    def fast_test(
        cls, dim=(64, 64), num_infections=4, num_steps=400
    ) -> "SimCovParams":
        """Time-compressed dynamics (~60x) for small grids.

        Produces the Fig 5 curve shape — viral growth, delayed T-cell
        response, clearance — within a few hundred steps.
        """
        return cls(
            dim=dim,
            num_infections=num_infections,
            num_steps=num_steps,
            incubation_period=10,
            expressing_period=40,
            apoptosis_period=8,
            infectivity=0.08,
            virion_production=0.25,
            virion_clearance=0.01,
            virion_diffusion=0.2,
            chemokine_production=1.0,
            chemokine_decay=0.02,
            chemokine_diffusion=0.8,
            min_chemokine=1e-5,
            tcell_generation_rate=25.0,
            tcell_initial_delay=60,
            tcell_vascular_period=200,
            tcell_tissue_period=150,
            tcell_binding_period=3,
            extravasate_fraction=0.2,
        )


class ParamsStack:
    """Read-only facade over one :class:`SimCovParams` per ensemble member.

    Attribute access returns the plain scalar when every member agrees
    (so uniform ensembles run the exact solo code paths), or a float64
    array shaped ``(B, 1, ..., 1)`` — broadcastable against batched
    ``(B, *spatial)`` fields — when members differ (a parameter sweep).
    Per-member broadcasting performs the same elementwise double
    operations as each member's solo scalar, so sweeps keep the bitwise
    guarantee.

    Geometry and schedule parameters (``dim``, ``num_steps``) must be
    uniform: members share one grid allocation and one step loop.
    """

    def __init__(self, members):
        members = tuple(members)
        if not members:
            raise ValueError("ParamsStack needs at least one member")
        first = members[0]
        for i, p in enumerate(members[1:], start=1):
            if p.dim != first.dim:
                raise ValueError(
                    f"ensemble members must share dim: member 0 has "
                    f"{first.dim}, member {i} has {p.dim}"
                )
            if p.num_steps != first.num_steps:
                raise ValueError(
                    f"ensemble members must share num_steps: member 0 has "
                    f"{first.num_steps}, member {i} has {p.num_steps}"
                )
        self.members = members
        self._spatial_ndim = first.ndim
        # Members are frozen dataclasses, so reduced attribute values never
        # change; cache them (the per-access listcomp over B members is
        # measurable in the ensemble hot loop).
        self._attr_cache: dict[str, object] = {}

    @property
    def batch(self) -> int:
        return len(self.members)

    def member(self, b: int) -> SimCovParams:
        return self.members[b]

    def _reduce(self, values):
        """Scalar when uniform, else a ``(B, 1, ..., 1)`` float64 array."""
        first = values[0]
        if all(v == first for v in values[1:]):
            return first
        if any(v is None for v in values):
            raise ValueError("cannot batch a parameter that is None for "
                             "some members and set for others")
        return np.asarray(values, dtype=np.float64).reshape(
            (len(values),) + (1,) * self._spatial_ndim
        )

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        cache = self.__dict__["_attr_cache"]
        try:
            return cache[name]
        except KeyError:
            value = self._reduce([getattr(p, name) for p in self.members])
            cache[name] = value
            return value

    # -- intervention helpers (mirror SimCovParams) -------------------------

    def virion_production_at(self, step: int):
        return self._reduce([p.virion_production_at(step) for p in self.members])

    def virion_clearance_at(self, step: int):
        return self._reduce([p.virion_clearance_at(step) for p in self.members])

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<ParamsStack batch={self.batch} dim={self.members[0].dim}>"
