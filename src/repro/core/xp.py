"""Array-module plug-in point: the ``xp`` injection layer.

Every numeric kernel in :mod:`repro.core.kernels` is written against an
injected array namespace (``xp``) instead of a hard-coded ``numpy``, the
BioDynaMo-style backend abstraction that makes the same kernel source run
on NumPy today and CuPy/Torch tomorrow.  A namespace is a thin adapter
object exposing the numpy-compatible function surface the kernels use,
plus the few operations whose spelling differs between libraries
(``astype``, ``copy``, host transfer).

Selection:

- ``get_array_module()`` / ``get_array_module("numpy")`` — the NumPy
  adapter, always available; this is the default everywhere and the only
  module the bitwise-exactness guarantees are stated against.
- ``get_array_module("cupy")`` / ``get_array_module("torch")`` — GPU
  modules, auto-detected; requesting one that is not importable raises a
  clean error naming what *is* available (callers and tests skip).
- ``get_array_module("auto")`` — the first available of cupy, torch,
  numpy.

The RNG hash always runs on the host (counter-based splitmix64 needs
uint64 wraparound, which torch lacks); adapters transfer the resulting
draws with ``xp.asarray``.  For NumPy that transfer is a no-op view.
"""

from __future__ import annotations

import numpy as np

#: Module names probed by auto-detection, in preference order.
KNOWN_MODULES = ("cupy", "torch", "numpy")


class ArrayModule:
    """Thin numpy-compatible facade over one array library.

    Unknown attributes delegate to the wrapped module, so for NumPy and
    CuPy (whose APIs mirror NumPy) the adapter is mostly transparent; the
    explicit methods cover the spellings that differ across libraries.
    """

    name = "array"

    def __init__(self, mod):
        self._mod = mod

    def __getattr__(self, attr):
        return getattr(self._mod, attr)

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"<ArrayModule {self.name}>"

    # -- cross-library spellings -------------------------------------------

    def astype(self, arr, dtype):
        return arr.astype(dtype)

    def copy(self, arr):
        return arr.copy()

    def asnumpy(self, arr) -> np.ndarray:
        """Host (numpy) view or copy of ``arr``."""
        return np.asarray(arr)

    def is_native(self, arr) -> bool:
        """Whether ``arr`` already lives on this module's substrate."""
        return isinstance(arr, np.ndarray)


class NumpyModule(ArrayModule):
    name = "numpy"

    def __init__(self):
        super().__init__(np)


class CupyModule(ArrayModule):  # pragma: no cover - requires cupy
    name = "cupy"

    def __init__(self):
        import cupy

        super().__init__(cupy)

    def asnumpy(self, arr) -> np.ndarray:
        return self._mod.asnumpy(arr)

    def is_native(self, arr) -> bool:
        return isinstance(arr, self._mod.ndarray)


class TorchModule(ArrayModule):  # pragma: no cover - requires torch
    """numpy-spelling adapter over ``torch`` (CPU tensors by default).

    Torch mirrors enough of the numpy call surface (``axis=`` aliases,
    boolean masking, ``maximum``/``minimum``, ``nonzero`` via
    ``torch.where``) that the kernels run with only the translations
    below.  Exactness across modules is *statistical*, not bitwise — see
    DESIGN.md §4d.
    """

    name = "torch"

    def __init__(self, device: str = "cpu"):
        import torch

        super().__init__(torch)
        self.device = device
        self._dtype_map = {
            np.dtype(np.int8): torch.int8,
            np.dtype(np.int32): torch.int32,
            np.dtype(np.int64): torch.int64,
            # Torch has no usable uint64; bid words ride in int64.  Bid
            # comparisons only need a total order, which reinterpreting
            # uint64 as int64 changes — torch runs are therefore
            # statistical, never bitwise (DESIGN.md §4d).
            np.dtype(np.uint64): torch.int64,
            np.dtype(np.float32): torch.float32,
            np.dtype(np.float64): torch.float64,
            np.dtype(np.bool_): torch.bool,
        }

    def _dtype(self, dtype):
        if dtype is None or isinstance(dtype, self._mod.dtype):
            return dtype
        return self._dtype_map[np.dtype(dtype)]

    def zeros(self, shape, dtype=None):
        return self._mod.zeros(shape, dtype=self._dtype(dtype), device=self.device)

    def zeros_like(self, arr, dtype=None):
        return self._mod.zeros_like(arr, dtype=self._dtype(dtype))

    def full(self, shape, value, dtype=None):
        return self._mod.full(shape, value, dtype=self._dtype(dtype), device=self.device)

    def asarray(self, arr, dtype=None):
        return self._mod.as_tensor(
            np.ascontiguousarray(arr) if isinstance(arr, np.ndarray) else arr,
            dtype=self._dtype(dtype), device=self.device,
        )

    def astype(self, arr, dtype):
        return arr.to(self._dtype(dtype))

    def copy(self, arr):
        return arr.clone()

    def asnumpy(self, arr) -> np.ndarray:
        if isinstance(arr, self._mod.Tensor):
            return arr.detach().cpu().numpy()
        return np.asarray(arr)

    def is_native(self, arr) -> bool:
        return isinstance(arr, self._mod.Tensor)

    def nonzero(self, arr):
        return self._mod.where(arr)

    def array_equal(self, a, b) -> bool:
        return bool(self._mod.equal(a, b))

    def _pair(self, a, b):
        """Promote python scalars to tensors (torch.maximum needs two)."""
        T = self._mod.Tensor
        if isinstance(a, T) and not isinstance(b, T):
            b = self._mod.as_tensor(b, dtype=a.dtype, device=a.device)
        elif isinstance(b, T) and not isinstance(a, T):
            a = self._mod.as_tensor(a, dtype=b.dtype, device=b.device)
        return a, b

    def maximum(self, a, b):
        a, b = self._pair(a, b)
        return self._mod.maximum(a, b)

    def minimum(self, a, b):
        a, b = self._pair(a, b)
        return self._mod.minimum(a, b)

    def cumsum(self, arr, axis=-1):
        return self._mod.cumsum(arr, dim=axis)

    def argmax(self, arr, axis=None):
        return self._mod.argmax(arr, dim=axis)


_FACTORIES = {
    "numpy": NumpyModule,
    "cupy": CupyModule,
    "torch": TorchModule,
}

#: Singleton NumPy adapter — the default ``xp`` of every block/kernel.
NUMPY = NumpyModule()

_cache: dict[str, ArrayModule] = {"numpy": NUMPY}


def available_modules() -> tuple[str, ...]:
    """Names of array modules importable right now (numpy always)."""
    out = []
    for name in KNOWN_MODULES:
        if name == "numpy":
            out.append(name)
            continue
        try:
            __import__(name)
        except ImportError:
            continue
        out.append(name)
    return tuple(out)


def get_array_module(name: str | None = None) -> ArrayModule:
    """Resolve an array namespace by name.

    ``None``/``"numpy"`` → the NumPy adapter; ``"cupy"``/``"torch"`` →
    the GPU adapters when importable; ``"auto"`` → the first available of
    :data:`KNOWN_MODULES`.  Passing an :class:`ArrayModule` returns it
    unchanged.  Unknown or unavailable names raise with the list of
    modules that *are* available, so callers can degrade cleanly.
    """
    if isinstance(name, ArrayModule):
        return name
    if name is None:
        name = "numpy"
    if name == "auto":
        name = available_modules()[0]
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown array module {name!r}; known: {sorted(_FACTORIES)}"
        )
    if name not in _cache:
        try:
            _cache[name] = _FACTORIES[name]()
        except ImportError as err:  # pragma: no cover - absent optional dep
            raise ModuleNotFoundError(
                f"array module {name!r} is not installed "
                f"(available: {', '.join(available_modules())})"
            ) from err
    return _cache[name]
