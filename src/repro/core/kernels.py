"""Vectorized update kernels shared by all three implementations.

Each kernel is a pure function over ghost-padded arrays and a region
selector, so the same code runs as:

- whole-domain updates (sequential reference);
- per-rank updates between RPC waves (SIMCoV-CPU);
- per-active-tile kernel launches between halo waves (SIMCoV-GPU).

All randomness is keyed by global voxel id (or attempt index), so results
are identical regardless of how the domain is decomposed — see
:mod:`repro.rng`.

Step phase order (the staged semantics of paper §4.1):

1. T-cell aging (local);
2. extravasation (new T cells enter from the vasculature);
3. [parallel: boundary-state exchange]
4. T-cell intents: bind/move target choice + bids (local);
5. [parallel: the single tiebreak exchange of §3.1]
6. resolution: apply winning moves and binds (local, deterministic);
7. epithelial updates: infection, state-timer transitions, production;
8. [parallel: concentration-halo exchange]
9. diffusion + decay;
10. statistics reduction.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.params import SimCovParams
from repro.core.state import BINDABLE, CHEMOKINE_PRODUCERS, EpiState, VIRION_PRODUCERS, VoxelBlock
from repro.core.xp import NUMPY
from repro.diffusion.stencil import decay_field, diffuse_region, mirror_out_of_domain
from repro.grid.spec import moore_offsets
from repro.rng.streams import Stream, VoxelRNG


def _shift(region: tuple[slice, ...], offset) -> tuple[slice, ...]:
    """Shift a bounded slice tuple by an integer *spatial* offset vector.

    The offset is right-aligned against the region: leading axes beyond
    ``len(offset)`` (an ensemble batch axis) are left untouched, so the
    same kernel source shifts solo ``(ny, nx)`` and batched ``(B, ny, nx)``
    regions identically per member.
    """
    offs = (0,) * (len(region) - len(offset)) + tuple(int(o) for o in offset)
    return tuple(
        s if o == 0 else slice(s.start + o, s.stop + o)
        for s, o in zip(region, offs)
    )


def _rng_members(rng, mask, xp=NUMPY):
    """Batch indices of each True element of ``mask`` for member-keyed
    draws, or None for a solo (unbatched) rng.

    Fancy indexing like ``gid[mask]`` flattens the batch axis away; the
    returned vector re-identifies each element's member so EnsembleRNG can
    hash it with that member's seed.
    """
    if not getattr(rng, "batched", False):
        return None
    return xp.nonzero(mask)[0]


def _member_param(value, members):
    """Per-element parameter for a member-indexed (flattened) update.

    ``value`` is either a plain scalar (uniform ensemble / solo run —
    returned unchanged, so the solo code path is untouched) or a
    :class:`~repro.core.params.ParamsStack` broadcast array shaped
    ``(B, 1, ..., 1)``; ``members`` the batch index of each flattened
    element (from :func:`_rng_members`, or a mask's nonzero batch axis).
    """
    if members is None or not isinstance(value, np.ndarray):
        return value
    return value.reshape(-1)[np.asarray(members)]


def _mask_members(value, mask, block, xp):
    """Like :func:`_member_param` but keyed off the mask's extra axes:
    gathers per-member values for ``arr[mask]``-style updates when the
    block is batched and ``value`` varies across members."""
    if not isinstance(value, np.ndarray) or mask.ndim <= block.spec.ndim:
        return value
    return _member_param(value, xp.nonzero(mask)[0])


def _slab_union(
    a: tuple[slice, ...] | None, b: tuple[slice, ...] | None
) -> tuple[slice, ...] | None:
    """Bounding slab of two bounded slice tuples (None = the whole array)."""
    if a is None or b is None:
        return None
    return tuple(
        slice(min(x.start, y.start), max(x.stop, y.stop)) for x, y in zip(a, b)
    )


# ---------------------------------------------------------------------------
# Phase 1-2: T-cell aging and extravasation
# ---------------------------------------------------------------------------


def tcell_age(block: VoxelBlock, region: tuple[slice, ...]) -> None:
    """Decrement lifetimes; cells at end of tissue life die in place."""
    present = block.tcell[region] != 0
    tt = block.tcell_tissue_time[region]
    bt = block.tcell_bound_time[region]
    tt[present] -= 1
    bt[bt < 0] = 0
    bt[present & (bt > 0)] -= 1
    died = present & (tt <= 0)
    block.tcell[region][died] = 0
    tt[died] = 0
    bt[died] = 0


def extravasation_attempts(
    params: SimCovParams, rng: VoxelRNG, step: int, pool: float
) -> dict[str, np.ndarray]:
    """The global, decomposition-independent attempt schedule for one step.

    Every implementation computes the identical schedule and applies the
    attempts that land in voxels it owns.  Returns arrays indexed by
    attempt: target gid, acceptance roll, and tissue lifespan.
    """
    x = pool * params.extravasate_fraction
    n = int(math.floor(x))
    frac = x - n
    if rng.uniform(Stream.POOL_ROUND, step, np.array([0]))[0] < frac:
        n += 1
    idx = np.arange(n, dtype=np.int64)
    return {
        "gid": rng.randint(Stream.EXTRAVASATE_SITE, step, idx, params.num_voxels),
        "accept_u": rng.uniform(Stream.EXTRAVASATE_ACCEPT, step, idx),
        "life": np.maximum(
            1, rng.poisson(Stream.TCELL_TISSUE_LIFE, step, idx, params.tcell_tissue_period)
        ),
    }


def ensemble_extravasation_attempts(
    params, rng, step: int, pools: np.ndarray
) -> dict[str, np.ndarray]:
    """Every member's attempt schedule in one batched set of draws.

    Returns one *flat* dict: concatenated ``gid``/``accept_u``/``life``
    arrays plus the per-member ``counts`` and each attempt's ``member``
    index.  Slice ``b`` (see :func:`member_attempts`) is bitwise identical
    to ``extravasation_attempts(params.member(b), VoxelRNG(seeds[b]),
    step, float(pools[b]))`` — the pool-round uniforms come from one
    batched hash, and the (ragged) per-attempt draws from one gathered
    member-keyed hash, replacing ``4 * B`` tiny RNG calls per step with 4.
    """
    pools = np.asarray(pools, dtype=np.float64)
    n_members = pools.size
    frac_param = params.extravasate_fraction
    if isinstance(frac_param, np.ndarray):
        frac_param = frac_param.reshape(-1)
    x = pools * frac_param
    n = np.floor(x)
    frac = x - n
    u = rng.xp.asnumpy(
        rng.uniform(
            Stream.POOL_ROUND, step, np.zeros((n_members, 1), dtype=np.int64)
        )
    ).reshape(n_members)
    counts = n.astype(np.int64) + (u < frac)
    total = int(counts.sum())
    if total == 0:
        return {
            "counts": counts,
            "member": np.empty(0, dtype=np.int64),
            "gid": np.empty(0, dtype=np.int64),
            "accept_u": np.empty(0, dtype=np.float64),
            "life": np.empty(0, dtype=np.int64),
        }
    member = np.repeat(np.arange(n_members, dtype=np.int64), counts)
    # Within-member attempt indices 0..counts[b]-1, without a Python loop:
    # subtract each attempt's member-start offset from the global arange.
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    idx = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    mu = params.tcell_tissue_period
    if isinstance(mu, np.ndarray):
        mu = mu.reshape(-1)[member]
    xp = rng.xp
    gid = xp.asnumpy(
        rng.randint(
            Stream.EXTRAVASATE_SITE, step, idx, params.num_voxels, member=member
        )
    )
    accept_u = xp.asnumpy(
        rng.uniform(Stream.EXTRAVASATE_ACCEPT, step, idx, member=member)
    )
    life = np.maximum(
        1,
        xp.asnumpy(
            rng.poisson(Stream.TCELL_TISSUE_LIFE, step, idx, mu, member=member)
        ),
    )
    return {
        "counts": counts,
        "member": member,
        "gid": gid,
        "accept_u": accept_u,
        "life": life,
    }


def member_attempts(attempts: dict[str, np.ndarray], b: int) -> dict[str, np.ndarray]:
    """Member ``b``'s slice of a flat ensemble attempt schedule, in the
    solo :func:`extravasation_attempts` layout."""
    counts = attempts["counts"]
    lo = int(counts[:b].sum())
    hi = lo + int(counts[b])
    return {
        "gid": attempts["gid"][lo:hi],
        "accept_u": attempts["accept_u"][lo:hi],
        "life": attempts["life"][lo:hi],
    }


def apply_extravasation(
    params: SimCovParams,
    block: VoxelBlock,
    attempts: dict[str, np.ndarray],
    region: tuple[slice, ...] | None = None,
) -> int:
    """Apply the attempts landing in this block's owned region.

    A T cell enters at the chosen voxel with probability equal to the local
    inflammatory-signal concentration (paper §2.2), provided the voxel holds
    no T cell yet.  Attempts are processed in attempt order so that two
    attempts on one voxel resolve identically everywhere.  Returns the
    number of successful entries (for the pool debit).

    ``region`` (default: the whole interior) restricts the search to an
    active sub-box.  That is bitwise-equivalent provided the region covers
    every voxel with signal >= ``min_chemokine``: an attempt outside it
    would land where the signal is sub-threshold and be rejected anyway,
    and no randomness is consumed here.
    """
    gids = attempts["gid"]
    if gids.size == 0:
        return 0
    sl = block.interior if region is None else region
    gid_interior = block.gid[sl]
    shape = gid_interior.shape
    # Map attempt gids to owned-local flat positions (interior is a slab of
    # consecutive-per-row gids; a sorted lookup handles any block shape).
    flat_gid = gid_interior.reshape(-1)  # copy is fine: reads only
    order = np.argsort(flat_gid, kind="stable")
    pos = np.searchsorted(flat_gid, gids, sorter=order)
    pos = np.clip(pos, 0, flat_gid.size - 1)
    local_flat = order[pos]
    mine = flat_gid[local_flat] == gids
    successes = 0
    tcell = block.tcell[sl]
    chem = block.chemokine[sl]
    tt = block.tcell_tissue_time[sl]
    bt = block.tcell_bound_time[sl]
    for i in np.nonzero(mine)[0]:
        c_idx = np.unravel_index(int(local_flat[i]), shape)
        if tcell[c_idx] != 0:
            continue
        c = chem[c_idx]
        if c < params.min_chemokine:
            continue
        if attempts["accept_u"][i] < c:
            tcell[c_idx] = 1
            tt[c_idx] = attempts["life"][i]
            bt[c_idx] = 0
            successes += 1
    return successes


def ensemble_apply_extravasation(
    params, block, attempts: dict[str, np.ndarray]
) -> np.ndarray:
    """Apply every member's attempts in one vectorized pass (whole interior).

    ``attempts`` is the flat schedule from
    :func:`ensemble_extravasation_attempts`.  Bitwise-equivalent to looping
    :func:`apply_extravasation` over member views: chemokine is read-only
    here, so the only cross-attempt coupling is repeats on one
    (member, voxel) — resolved to the *first* accepting attempt in attempt
    order, exactly the sequential rule.  Returns the per-member success
    counts (the pool debits).
    """
    n_members = block.batch
    gids = attempts["gid"]
    out = np.zeros(n_members, dtype=np.int64)
    if gids.size == 0:
        return out
    if block.xp.name != "numpy":  # pragma: no cover - device fallback
        for b in range(n_members):
            out[b] = apply_extravasation(
                params.member(b), block.member_view(b),
                member_attempts(attempts, b),
            )
        return out
    accept_u = attempts["accept_u"]
    life = attempts["life"]
    member = attempts["member"]

    g = block.ghost
    spatial_sl = tuple(slice(g, s - g) for s in block.spatial_shape)
    gid_interior = block.gid_spatial[spatial_sl]
    shape = gid_interior.shape
    flat_gid = gid_interior.reshape(-1)
    order = np.argsort(flat_gid, kind="stable")
    pos = np.clip(np.searchsorted(flat_gid, gids, sorter=order), 0,
                  flat_gid.size - 1)
    local_flat = order[pos]
    mine = flat_gid[local_flat] == gids
    coords = np.unravel_index(local_flat, shape)
    idx = (member,) + coords

    sl = block.interior
    tcell = block.tcell[sl]
    chem_v = block.chemokine[sl][idx]
    mc = params.min_chemokine
    if isinstance(mc, np.ndarray):
        mc = mc.reshape(-1)[member]
    eligible = (
        mine & (tcell[idx] == 0) & (chem_v >= mc) & (accept_u < chem_v)
    )
    ei = np.nonzero(eligible)[0]
    if ei.size == 0:
        return out
    # First accepting attempt per (member, voxel) wins; later ones would
    # find the voxel occupied (np.unique returns first-occurrence indices).
    key = member[ei] * np.int64(flat_gid.size) + local_flat[ei]
    _, first = np.unique(key, return_index=True)
    win = ei[first]
    widx = (member[win],) + tuple(c[win] for c in coords)
    tcell[widx] = 1
    block.tcell_tissue_time[sl][widx] = life[win]
    block.tcell_bound_time[sl][widx] = 0
    return np.bincount(member[win], minlength=n_members).astype(np.int64)


# ---------------------------------------------------------------------------
# Phase 4: T-cell intents (choose + bid; paper §3.1 / Fig 2)
# ---------------------------------------------------------------------------


class IntentArrays:
    """Scratch arrays for one block's T-cell tiebreak round."""

    #: Dtype of every intent field; shared-memory arenas size segments
    #: from this.  Direction fields use -1 as the "no intent" sentinel.
    FIELD_DTYPES = {
        "move_dir": np.int8,
        "bind_dir": np.int8,
        "bid_self": np.uint64,
        "move_bid": np.uint64,
        "bind_bid": np.uint64,
    }

    def __init__(self, shape: tuple[int, ...], xp=None):
        xp = NUMPY if xp is None else xp
        self.xp = xp
        #: Chosen movement direction index into moore_offsets, -1 = none.
        self.move_dir = xp.full(shape, -1, dtype=np.int8)
        #: Chosen binding stencil index (0 = own voxel, 1.. = moore), -1 = none.
        self.bind_dir = xp.full(shape, -1, dtype=np.int8)
        #: The T cell's own bid (0 where no bid was placed).
        self.bid_self = xp.zeros(shape, dtype=np.uint64)
        #: Max bid placed on this voxel as a *move* target.
        self.move_bid = xp.zeros(shape, dtype=np.uint64)
        #: Max bid placed on this voxel's epithelial cell as a *bind* target.
        self.bind_bid = xp.zeros(shape, dtype=np.uint64)
        #: The slab holding every non-sentinel entry (None = whole array).
        self._dirty: tuple[slice, ...] | None = None

    @classmethod
    def from_arrays(
        cls, arrays: dict[str, np.ndarray], fresh: bool = True
    ) -> "IntentArrays":
        """Wrap caller-provided storage (e.g. shared-memory views).

        ``fresh=True`` resets every field to the no-intent sentinels (the
        buffers may arrive zero-filled, but the direction sentinel is -1);
        ``fresh=False`` adopts the contents as-is.
        """
        self = cls.__new__(cls)
        self.xp = NUMPY
        shape = None
        for name, dtype in cls.FIELD_DTYPES.items():
            arr = arrays[name]
            if shape is None:
                shape = arr.shape
            if arr.shape != shape or arr.dtype != np.dtype(dtype):
                raise ValueError(
                    f"intent field {name!r}: got {arr.dtype}{arr.shape}, "
                    f"need {np.dtype(dtype)}{shape}"
                )
            setattr(self, name, arr)
        self._dirty = None
        if fresh:
            self.clear()
        return self

    def clear(self, region: tuple[slice, ...] | None = None) -> None:
        """Reset to the no-intent state.

        With ``region`` (padded-array slices of this step's active box),
        only the slab that can hold stale data is cleared: the region
        grown by one voxel (intents scatter bids one voxel outward),
        unioned with the previous step's slab in case the active box
        shrank.  Readers outside the slab always see sentinels, so
        full-array scans (e.g. remote-intent extraction) stay correct.
        An empty tuple marks an idle step — nothing will be written, so
        only the previous slab is wiped.
        """
        shape = self.move_dir.shape
        if region is None:
            target = None
        elif len(region) == 0:
            target = tuple(slice(0, 0) for _ in shape)
        else:
            target = tuple(
                slice(max(0, s.start - 1), min(n, s.stop + 1))
                for s, n in zip(region, shape)
            )
        wipe = _slab_union(self._dirty, target)
        sl = tuple(slice(None) for _ in self.move_dir.shape) if wipe is None else wipe
        self.move_dir[sl] = -1
        self.bind_dir[sl] = -1
        self.bid_self[sl] = 0
        self.move_bid[sl] = 0
        self.bind_bid[sl] = 0
        self._dirty = target

    #: Fields exchanged with REPLACE semantics (per-source-voxel data).
    REPLACE_FIELDS = ("move_dir", "bind_dir", "bid_self")
    #: Fields exchanged with MAX-merge semantics (per-target-voxel data).
    MAX_FIELDS = ("move_bid", "bind_bid")


def bind_stencil(ndim: int) -> np.ndarray:
    """Binding candidates: own voxel first, then the Moore neighborhood."""
    return np.concatenate(
        [np.zeros((1, ndim), dtype=np.int64), moore_offsets(ndim)], axis=0
    )


def tcell_intents(
    params: SimCovParams,
    rng: VoxelRNG,
    step: int,
    block: VoxelBlock,
    intents: IntentArrays,
    region: tuple[slice, ...],
) -> None:
    """Compute bind/move choices and bids for unbound T cells in ``region``.

    A T cell with a bindable (expressing) epithelial cell in its own voxel
    or Moore neighborhood attempts to bind one of them (chosen uniformly);
    otherwise it attempts to move to a uniformly random Moore neighbor,
    unless that neighbor is outside the domain or already occupied at the
    start of the phase — T cells "can and do run into each other" (§3.1).

    Bids are written at the T cell's own voxel (``bid_self``) and
    max-merged at the target (``move_bid``/``bind_bid``), the two stores of
    the paper's single-communication tiebreak.
    """
    xp = block.xp
    movers = (block.tcell[region] != 0) & (block.tcell_bound_time[region] == 0)
    if not movers.any():
        return
    gid = block.gid[region]
    bids = rng.bids(step, gid)
    ndim = block.spec.ndim
    bstencil = bind_stencil(ndim)
    nb = len(bstencil)

    # --- binding choice ----------------------------------------------------
    bindable = xp.zeros(movers.shape + (nb,), dtype=bool)
    for k, off in enumerate(bstencil):
        nb_state = block.epi_state[_shift(region, off)]
        ok = xp.zeros_like(movers)
        for s in BINDABLE:
            ok |= nb_state == s
        bindable[..., k] = ok
    n_candidates = bindable.sum(axis=-1)
    binder = movers & (n_candidates > 0)
    if binder.any():
        j = rng.words(Stream.TCELL_BIND_SELECT, step, gid) % xp.maximum(
            xp.astype(n_candidates, np.uint64), 1
        )
        # Index of the (j+1)-th True along the stencil axis.
        cum = xp.cumsum(bindable, axis=-1)
        sel = xp.argmax(cum == (xp.astype(j, np.int64) + 1)[..., None], axis=-1)
        intents.bind_dir[region][binder] = xp.astype(sel[binder], np.int8)
        intents.bid_self[region][binder] = bids[binder]
        # Scatter-max onto targets, one direction at a time (within one
        # direction all targets are distinct, so a masked max suffices).
        for k, off in enumerate(bstencil):
            mask = binder & (sel == k)
            if not mask.any():
                continue
            view = intents.bind_bid[_shift(region, off)]
            view[mask] = xp.maximum(view[mask], bids[mask])

    # --- movement choice -------------------------------------------------------
    mover = movers & (n_candidates == 0)
    if mover.any():
        offsets = moore_offsets(ndim)
        k_choice = xp.astype(
            rng.randint(Stream.TCELL_DIRECTION, step, gid, len(offsets)),
            np.int8,
        )
        blocked = xp.zeros_like(mover)
        for k, off in enumerate(offsets):
            sel_k = mover & (k_choice == k)
            if not sel_k.any():
                continue
            tgt_occupied = block.tcell[_shift(region, off)] != 0
            tgt_outside = ~block.in_domain[_shift(region, off)]
            blocked |= sel_k & (tgt_occupied | tgt_outside)
        ok = mover & ~blocked
        intents.move_dir[region][ok] = k_choice[ok]
        intents.bid_self[region][ok] = bids[ok]
        for k, off in enumerate(offsets):
            mask = ok & (k_choice == k)
            if not mask.any():
                continue
            view = intents.move_bid[_shift(region, off)]
            view[mask] = xp.maximum(view[mask], bids[mask])


# ---------------------------------------------------------------------------
# Phase 6: resolution (winner moves / binds; fully local & deterministic)
# ---------------------------------------------------------------------------


class MoveSet:
    """One region's resolved moves: the 'set flips' of Fig 2 — who leaves,
    who arrives, and the arriving payload — computed against pristine state
    so that commits can happen in any order (Jacobi semantics, as one GPU
    kernel launch over all tiles would behave)."""

    __slots__ = ("region", "moved_out", "arriving", "new_life")

    def __init__(self, region, moved_out, arriving, new_life):
        self.region = region
        self.moved_out = moved_out
        self.arriving = arriving
        self.new_life = new_life


def compute_moves(
    block: VoxelBlock,
    intents: IntentArrays,
    region: tuple[slice, ...],
) -> MoveSet:
    """Assign winners within ``region`` (owned voxels) — read-only.

    A T cell moves iff its bid equals the merged maximum at its target —
    the deterministic tiebreak every device computes identically (§3.1):
    the winner's source device erases it, the target's owner instantiates
    it, no duplication and no loss.
    """
    xp = block.xp
    ndim = block.spec.ndim
    offsets = moore_offsets(ndim)
    md = intents.move_dir[region]
    # Outgoing: my cells that won their bid at the target.
    moved_out = xp.zeros(md.shape, dtype=bool)
    for k, off in enumerate(offsets):
        cand = md == k
        if not cand.any():
            continue
        tgt_max = intents.move_bid[_shift(region, off)]
        won = cand & (intents.bid_self[region] == tgt_max) & (tgt_max > 0)
        moved_out |= won
    # Incoming: neighbor cells (possibly ghosts) that won a bid on my voxel.
    arriving = xp.zeros(md.shape, dtype=bool)
    new_life = xp.zeros(md.shape, dtype=np.int32)
    my_max = intents.move_bid[region]
    for k, off in enumerate(offsets):
        src = _shift(region, [-o for o in off])
        src_won = (
            (intents.move_dir[src] == k)
            & (intents.bid_self[src] == my_max)
            & (my_max > 0)
        )
        fresh = src_won & ~arriving
        arriving |= src_won
        new_life[fresh] = block.tcell_tissue_time[src][fresh]
    return MoveSet(region, moved_out, arriving, new_life)


def commit_moves(block: VoxelBlock, moves: MoveSet, member_counts: bool = False):
    """Execute one region's flips: erase movers-out, instantiate arrivals.
    Must run only after *all* regions' :func:`compute_moves` finished (the
    separate 'Move Agents' kernel of Fig 2).  Returns arrivals — a scalar,
    or a per-member vector with ``member_counts=True`` (batched blocks;
    sums over every non-batch axis)."""
    region = moves.region
    tc = block.tcell[region]
    tt = block.tcell_tissue_time[region]
    bt = block.tcell_bound_time[region]
    tc[moves.moved_out] = 0
    tt[moves.moved_out] = 0
    bt[moves.moved_out] = 0
    tc[moves.arriving] = 1
    tt[moves.arriving] = moves.new_life[moves.arriving]
    bt[moves.arriving] = 0
    if member_counts:
        arr = moves.arriving
        return block.xp.asnumpy(arr.reshape(arr.shape[0], -1).sum(axis=1))
    return int(moves.arriving.sum())


def resolve_moves(
    block: VoxelBlock,
    intents: IntentArrays,
    region: tuple[slice, ...],
) -> int:
    """Single-region convenience: compute + commit in one call.  Safe only
    when ``region`` is the block's sole processed region (the sequential
    and CPU implementations); multi-tile callers must stage compute_moves
    for all regions before any commit_moves."""
    return commit_moves(block, compute_moves(block, intents, region))


def resolve_binds(
    params: SimCovParams,
    rng: VoxelRNG,
    step: int,
    block: VoxelBlock,
    intents: IntentArrays,
    region: tuple[slice, ...],
    member_counts: bool = False,
):
    """Apply winning binds: the bound epithelial cell turns apoptotic with a
    fresh Poisson timer; the winning T cell is held for the binding period.
    Returns the number of cells driven apoptotic in the region — a scalar,
    or a per-member vector with ``member_counts=True`` (batched blocks)."""
    xp = block.xp
    bstencil = bind_stencil(block.spec.ndim)
    # Epithelial side: any expressing cell with a positive merged bind bid
    # was won by exactly one T cell.
    sl_state = block.epi_state[region]
    bound = xp.zeros(sl_state.shape, dtype=bool)
    for s in BINDABLE:
        bound |= sl_state == s
    bound &= intents.bind_bid[region] > 0
    if bound.any():
        members = _rng_members(rng, bound, xp)
        block.epi_state[region][bound] = EpiState.APOPTOTIC
        block.epi_timer[region][bound] = xp.astype(
            xp.maximum(
                1,
                rng.poisson(
                    Stream.APOPTOSIS_PERIOD, step, block.gid[region][bound],
                    _member_param(params.apoptosis_period, members),
                    member=members,
                ),
            ),
            np.int32,
        )
    # T-cell side: my cells that won their bind enter the bound state.
    bd = intents.bind_dir[region]
    for k, off in enumerate(bstencil):
        cand = bd == k
        if not cand.any():
            continue
        tgt_max = intents.bind_bid[_shift(region, off)]
        won = cand & (intents.bid_self[region] == tgt_max) & (tgt_max > 0)
        block.tcell_bound_time[region][won] = _mask_members(
            params.tcell_binding_period, won, block, xp
        )
    return (
        xp.asnumpy(bound.reshape(bound.shape[0], -1).sum(axis=1))
        if member_counts
        else int(bound.sum())
    )


# ---------------------------------------------------------------------------
# Phase 7: epithelial updates
# ---------------------------------------------------------------------------


def epithelial_update(
    params: SimCovParams,
    rng: VoxelRNG,
    step: int,
    block: VoxelBlock,
    region: tuple[slice, ...],
) -> None:
    """Infection of healthy cells and state-timer transitions."""
    xp = block.xp
    state = block.epi_state[region]
    timer = block.epi_timer[region]
    gid = block.gid[region]
    # Snapshot: a cell makes at most one transition per step.
    state0 = xp.copy(state)
    # Infection: p = infectivity * local virion concentration.
    healthy = state0 == EpiState.HEALTHY
    if healthy.any():
        p = params.infectivity * block.virions[region]
        roll = rng.uniform(Stream.INFECTION, step, gid)
        infected = healthy & (roll < p)
        if infected.any():
            members = _rng_members(rng, infected, xp)
            state[infected] = EpiState.INCUBATING
            timer[infected] = xp.astype(
                xp.maximum(
                    1,
                    rng.poisson(
                        Stream.INCUBATION_PERIOD, step, gid[infected],
                        _member_param(params.incubation_period, members),
                        member=members,
                    ),
                ),
                np.int32,
            )
    # Timer transitions (decrement happens in the state held at step start).
    for from_state, stream, period, to_state in (
        (EpiState.INCUBATING, Stream.EXPRESSING_PERIOD,
         params.expressing_period, EpiState.EXPRESSING),
        (EpiState.EXPRESSING, None, None, EpiState.DEAD),
        (EpiState.APOPTOTIC, None, None, EpiState.DEAD),
    ):
        in_state = state0 == from_state
        if not in_state.any():
            continue
        timer[in_state] -= 1
        expired = in_state & (timer <= 0)
        if not expired.any():
            continue
        state[expired] = to_state
        if stream is not None:
            members = _rng_members(rng, expired, xp)
            timer[expired] = xp.astype(
                xp.maximum(
                    1,
                    rng.poisson(
                        stream, step, gid[expired],
                        _member_param(period, members), member=members,
                    ),
                ),
                np.int32,
            )
        else:
            timer[expired] = 0


def production_update(
    params: SimCovParams,
    block: VoxelBlock,
    region: tuple[slice, ...],
    step: int = 0,
) -> None:
    """Infected cells emit virions; detectable cells emit the signal.
    Concentrations are per-voxel fractions clamped to [0, 1].  Production
    is antiviral-adjusted when an intervention is configured ([25])."""
    xp = block.xp
    state = block.epi_state[region]
    producing = xp.zeros(state.shape, dtype=bool)
    for s in VIRION_PRODUCERS:
        producing |= state == s
    if producing.any():
        v = block.virions[region]
        v[producing] = xp.minimum(
            1.0,
            v[producing]
            + _mask_members(params.virion_production_at(step), producing, block, xp),
        )
    signaling = xp.zeros(state.shape, dtype=bool)
    for s in CHEMOKINE_PRODUCERS:
        signaling |= state == s
    if signaling.any():
        c = block.chemokine[region]
        c[signaling] = xp.minimum(
            1.0,
            c[signaling]
            + _mask_members(params.chemokine_production, signaling, block, xp),
        )


# ---------------------------------------------------------------------------
# Phase 9: concentrations
# ---------------------------------------------------------------------------


def concentration_update(
    params: SimCovParams,
    block: VoxelBlock,
    region: tuple[slice, ...],
    scratch_virions: np.ndarray,
    scratch_chemokine: np.ndarray,
) -> None:
    """Diffuse both fields over ``region`` into scratch buffers.

    Ghosts must hold neighbor values (halo-exchanged, or mirrored at the
    domain boundary) before calling.  Call :func:`concentration_commit`
    after all regions are processed (Jacobi semantics).
    """
    ndim = block.spec.ndim
    diffuse_region(
        block.virions, scratch_virions, region, params.virion_diffusion,
        spatial_ndim=ndim,
    )
    diffuse_region(
        block.chemokine, scratch_chemokine, region, params.chemokine_diffusion,
        spatial_ndim=ndim,
    )


def concentration_commit(
    params: SimCovParams,
    block: VoxelBlock,
    regions: list[tuple[slice, ...]],
    scratch_virions: np.ndarray,
    scratch_chemokine: np.ndarray,
    step: int = 0,
) -> None:
    """Copy scratch results back and apply decay + the signal threshold.
    Clearance is antibody-adjusted when an intervention is configured."""
    for region in regions:
        v = block.virions[region]
        v[...] = scratch_virions[region]
        decay_field(v, params.virion_clearance_at(step))
        c = block.chemokine[region]
        c[...] = scratch_chemokine[region]
        decay_field(c, params.chemokine_decay)
        c[c < params.min_chemokine] = 0.0


def mirror_fields(block: VoxelBlock) -> None:
    """No-flux boundary: mirror field ghosts that fall outside the domain."""
    mirror_out_of_domain(
        block.virions, block.owned, block.spec.domain, block.ghost
    )
    mirror_out_of_domain(
        block.chemokine, block.owned, block.spec.domain, block.ghost
    )
