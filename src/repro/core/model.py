"""The sequential reference implementation.

One undivided :class:`~repro.core.state.VoxelBlock` covering the whole
domain, updated by the shared kernels in the canonical phase order.  This
defines ground truth: both parallel implementations must reproduce its
per-step state exactly (they do — see tests/integration), because all
randomness is keyed by global voxel id.
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels
from repro.core.params import SimCovParams
from repro.core.seeding import apply_seeds, seed_infections
from repro.core.state import VoxelBlock
from repro.core.stats import StepStats, TimeSeries, stats_vector
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG


class SequentialSimCov:
    """Single-block SIMCoV simulation.

    Parameters
    ----------
    params:
        Model parameters.
    seed:
        Trial seed (drives every stochastic decision via the counter RNG).
    seed_gids:
        Optional explicit FOI voxel ids (e.g. from
        :func:`repro.core.seeding.patchy_lesions`); default draws
        ``params.num_infections`` uniform FOI.
    structure_gids:
        Optional airway/structural voxels left without epithelium (§2.2;
        see :mod:`repro.core.structure`).
    """

    def __init__(
        self,
        params: SimCovParams,
        seed: int = 0,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
    ):
        self.params = params
        self.rng = VoxelRNG(seed)
        self.spec = GridSpec(params.dim)
        self.block = VoxelBlock(self.spec, self.spec.domain)
        if structure_gids is not None:
            from repro.core.structure import apply_structure

            apply_structure(self.block, structure_gids)
        if seed_gids is None:
            seed_gids = seed_infections(params, self.rng)
        self.seed_gids = np.asarray(seed_gids, dtype=np.int64)
        apply_seeds(self.block, self.seed_gids)
        self.intents = kernels.IntentArrays(self.block.shape)
        self.pool = 0.0
        self.step_num = 0
        self.series = TimeSeries()
        self._scratch_v = np.zeros_like(self.block.virions)
        self._scratch_c = np.zeros_like(self.block.chemokine)

    # -- driver ---------------------------------------------------------------

    def step(self) -> StepStats:
        """Advance one timestep; returns (and records) the step's stats."""
        p = self.params
        blk = self.block
        t = self.step_num
        interior = blk.interior

        # Vascular pool dynamics (replicated scalar state).
        if t >= p.tcell_initial_delay:
            self.pool += p.tcell_generation_rate
        self.pool -= self.pool / p.tcell_vascular_period

        # T cells: age, arrive, choose, tiebreak, act.
        kernels.tcell_age(blk, interior)
        attempts = kernels.extravasation_attempts(p, self.rng, t, self.pool)
        extravasations = kernels.apply_extravasation(p, blk, attempts)
        self.intents.clear()
        kernels.tcell_intents(p, self.rng, t, blk, self.intents, interior)
        moves = kernels.resolve_moves(blk, self.intents, interior)
        binds = kernels.resolve_binds(p, self.rng, t, blk, self.intents, interior)

        # Epithelial cells.
        kernels.epithelial_update(p, self.rng, t, blk, interior)
        kernels.production_update(p, blk, interior, step=t)

        # Concentrations (no-flux domain boundary).
        kernels.mirror_fields(blk)
        kernels.concentration_update(
            p, blk, interior, self._scratch_v, self._scratch_c
        )
        kernels.concentration_commit(
            p, blk, [interior], self._scratch_v, self._scratch_c, step=t
        )

        # Statistics + pool debit.
        self.pool = max(0.0, self.pool - extravasations)
        stats = StepStats.from_vector(
            t,
            stats_vector(blk),
            pool=self.pool,
            extravasations=extravasations,
            binds=binds,
            moves=moves,
        )
        self.series.append(stats)
        self.step_num += 1
        return stats

    def run(self, num_steps: int | None = None) -> TimeSeries:
        """Run ``num_steps`` (default ``params.num_steps``) and return the
        accumulated time series."""
        n = num_steps if num_steps is not None else self.params.num_steps
        for _ in range(n):
            self.step()
        return self.series

    # -- inspection ---------------------------------------------------------------

    def activity_fraction(self) -> float:
        """Fraction of voxels active now (perf-model workload input)."""
        mask = self.block.activity_mask(self.params.min_chemokine)
        return float(mask.mean())
