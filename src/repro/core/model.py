"""The sequential reference implementation.

One undivided :class:`~repro.core.state.VoxelBlock` covering the whole
domain, updated by the shared kernels in the canonical phase order.  This
defines ground truth: both parallel implementations must reproduce its
per-step state exactly (they do — see tests/integration), because all
randomness is keyed by global voxel id.

The step loop itself lives in :mod:`repro.engine`: this class is a thin
shim that builds a :class:`~repro.engine.sequential.SequentialBackend`
and delegates to the shared :class:`~repro.engine.engine.StepEngine`.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SimCovParams
from repro.engine.driver import EngineDriver
from repro.engine.sequential import SequentialBackend


class SequentialSimCov(EngineDriver):
    """Single-block SIMCoV simulation.

    Parameters
    ----------
    params:
        Model parameters.
    seed:
        Trial seed (drives every stochastic decision via the counter RNG).
    seed_gids:
        Optional explicit FOI voxel ids (e.g. from
        :func:`repro.core.seeding.patchy_lesions`); default draws
        ``params.num_infections`` uniform FOI.
    structure_gids:
        Optional airway/structural voxels left without epithelium (§2.2;
        see :mod:`repro.core.structure`).
    active_gating, tile_shape, sweep_period:
        Activity-gate controls (see
        :class:`~repro.engine.sequential.SequentialBackend`): gated runs
        skip quiescent space via the periodic §3.2 sweep and stay bitwise
        identical to ``active_gating=False`` whole-domain runs.
    tracer:
        Optional :class:`~repro.telemetry.tracer.Tracer`; phase spans and
        gating gauges flow to its sinks.  Default: telemetry off.
    """

    def __init__(
        self,
        params: SimCovParams,
        seed: int = 0,
        seed_gids: np.ndarray | None = None,
        structure_gids: np.ndarray | None = None,
        active_gating: bool = True,
        tile_shape: tuple[int, ...] | None = None,
        sweep_period: int | None = None,
        tracer=None,
    ):
        backend = SequentialBackend(
            params, seed=seed, seed_gids=seed_gids,
            structure_gids=structure_gids, active_gating=active_gating,
            tile_shape=tile_shape, sweep_period=sweep_period,
        )
        self._init_engine(backend, tracer=tracer)
        self.block = backend.block
        self.intents = backend.intents
        self.gate = backend.gate

    # -- inspection ---------------------------------------------------------------

    def activity_fraction(self) -> float:
        """Fraction of voxels active now (perf-model workload input)."""
        return self.backend.activity_fraction()
