"""Voxel state arrays.

Each voxel holds at most one epithelial cell and at most one T cell (paper
§2.2), so agents are represented struct-of-arrays style as per-voxel
fields — the GPU-friendly layout all three implementations share.  A
:class:`VoxelBlock` is one ghost-padded block of the domain (the whole
domain for the sequential model, a subdomain for the parallel ones).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.core.xp import NUMPY
from repro.grid.box import Box
from repro.grid.spec import GridSpec


class EpiState(enum.IntEnum):
    """Epithelial cell states (paper Fig 1A)."""

    #: No epithelial cell (airway/structural voxel, or outside the domain).
    EMPTY = 0
    HEALTHY = 1
    #: Infected, producing virus, not yet detectable by T cells.
    INCUBATING = 2
    #: Infected, producing virus, detectable (T cells can bind).
    EXPRESSING = 3
    #: Bound by a T cell; dying.
    APOPTOTIC = 4
    DEAD = 5


#: States in which a cell produces virions (the paper's §2.2: incubating
#: cells "produce virus while not being detectable").
VIRION_PRODUCERS = (EpiState.INCUBATING, EpiState.EXPRESSING, EpiState.APOPTOTIC)
#: States that secrete the inflammatory signal (detectable infection).
CHEMOKINE_PRODUCERS = (EpiState.EXPRESSING, EpiState.APOPTOTIC)
#: States a T cell can bind.
BINDABLE = (EpiState.EXPRESSING,)

#: Sentinel for "no move / no bind chosen" in intent arrays.
NO_INTENT = np.int8(-1)


@dataclass
class VoxelBlock:
    """One ghost-padded block of voxel state.

    All arrays have shape ``owned.shape + 2*ghost`` per dimension.  The
    interior (owned) region is ``self.interior``; ghost cells mirror
    neighbor blocks (parallel impls) or are inert padding (sequential).
    """

    spec: GridSpec
    owned: Box
    ghost: int = 1

    #: Array namespace the block's fields live in.  Plain VoxelBlocks are
    #: always host/numpy; EnsembleBlock may carry another module.  (Class
    #: attribute, not a dataclass field.)
    xp = NUMPY

    # Filled by __post_init__:
    epi_state: np.ndarray = field(init=False)
    epi_timer: np.ndarray = field(init=False)
    virions: np.ndarray = field(init=False)
    chemokine: np.ndarray = field(init=False)
    tcell: np.ndarray = field(init=False)
    tcell_tissue_time: np.ndarray = field(init=False)
    tcell_bound_time: np.ndarray = field(init=False)
    gid: np.ndarray = field(init=False)
    in_domain: np.ndarray = field(init=False)

    #: Dtype of every allocated (checkpointable + exchangeable) field, in
    #: canonical order.  Shared-memory arenas size their segments from this.
    FIELD_DTYPES = {
        "epi_state": np.int8,
        "epi_timer": np.int32,
        "virions": np.float64,
        "chemokine": np.float64,
        "tcell": np.int8,
        "tcell_tissue_time": np.int32,
        "tcell_bound_time": np.int32,
    }

    def __post_init__(self):
        shape = tuple(s + 2 * self.ghost for s in self.owned.shape)
        for name, dtype in self.FIELD_DTYPES.items():
            setattr(self, name, np.zeros(shape, dtype=dtype))
        self._derive_geometry()
        # Tissue: every in-domain voxel starts with a healthy epithelial
        # cell (the paper evaluates full 2D tissue slices).
        self.epi_state[self.in_domain] = EpiState.HEALTHY

    def _derive_geometry(self) -> None:
        """Global voxel ids over the padded block; -1 outside the domain."""
        shape = tuple(s + 2 * self.ghost for s in self.owned.shape)
        ext = self.owned.expand(self.ghost)
        coords = ext.coords().reshape(shape + (self.spec.ndim,))
        inside = self.spec.in_bounds(coords)
        gid = np.full(shape, -1, dtype=np.int64)
        gid[inside] = self.spec.ravel(coords[inside])
        self.gid = gid
        self.in_domain = inside

    @classmethod
    def from_arrays(
        cls,
        spec: GridSpec,
        owned: Box,
        arrays: dict[str, np.ndarray],
        ghost: int = 1,
        fresh: bool = True,
    ) -> "VoxelBlock":
        """Build a block whose field storage is caller-provided.

        ``arrays`` maps every :attr:`FIELD_DTYPES` name to a padded-shape
        array (e.g. views into a ``multiprocessing.shared_memory``
        segment).  With ``fresh=True`` the storage is initialized like a
        normal construction (zeroed, healthy tissue); ``fresh=False``
        adopts the contents as-is — the attach path for processes joining
        a segment another process already initialized.  Geometry arrays
        (``gid``/``in_domain``) are always derived locally, so they never
        occupy shared storage.
        """
        block = cls.__new__(cls)
        block.spec = spec
        block.owned = owned
        block.ghost = int(ghost)
        shape = tuple(s + 2 * block.ghost for s in owned.shape)
        for name, dtype in cls.FIELD_DTYPES.items():
            arr = arrays[name]
            if arr.shape != shape or arr.dtype != np.dtype(dtype):
                raise ValueError(
                    f"field {name!r}: got {arr.dtype}{arr.shape}, "
                    f"need {np.dtype(dtype)}{shape}"
                )
            setattr(block, name, arr)
        block._derive_geometry()
        if fresh:
            for name in cls.FIELD_DTYPES:
                getattr(block, name)[...] = 0
            block.epi_state[block.in_domain] = EpiState.HEALTHY
        return block

    # -- geometry ------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.epi_state.shape

    @property
    def interior(self) -> tuple[slice, ...]:
        """Slices selecting the owned region."""
        g = self.ghost
        return tuple(slice(g, s - g) for s in self.shape)

    @property
    def origin(self) -> tuple[int, ...]:
        """Global coordinate of the padded array's [0, 0, ...] element."""
        return tuple(l - self.ghost for l in self.owned.lo)

    # -- field bundles (for halo exchange) ---------------------------------------

    #: Fields exchanged in the per-step boundary-state wave.
    STATE_FIELDS = (
        "epi_state",
        "virions",
        "chemokine",
        "tcell",
        "tcell_tissue_time",
        "tcell_bound_time",
    )

    def state_arrays(self) -> dict[str, np.ndarray]:
        return {name: getattr(self, name) for name in self.STATE_FIELDS}

    # -- activity -----------------------------------------------------------------

    def activity_mask(self, min_chemokine: float) -> np.ndarray:
        """Owned-region mask of voxels that can change next step.

        A voxel is active if it carries virions or signal, hosts a T cell,
        or holds an infected cell.  (Everything else is invariant: the
        §3.2 tile sweep and the CPU active-list both key off this.)
        """
        return self._activity(self.interior, min_chemokine)

    def activity_mask_padded(self, min_chemokine: float) -> np.ndarray:
        """Activity over the whole padded block, ghosts included.

        Parallel implementations derive their active sets from this after a
        boundary exchange, so activity approaching from a neighbor block
        activates the receiving boundary voxels in time (the role the
        paper's RPC-time active-list updates / always-active ghost tiles
        play).
        """
        return self._activity(
            tuple(slice(None) for _ in self.shape), min_chemokine
        )

    def _activity(self, sl, min_chemokine: float) -> np.ndarray:
        epi = self.epi_state[sl]
        # Sub-threshold signal is zeroed at commit time, so the threshold
        # test only matters transiently; it keeps the active set identical
        # to the original's definition.
        return (
            (self.virions[sl] > 0.0)
            | (self.chemokine[sl] >= min_chemokine)
            | (self.tcell[sl] != 0)
            | (epi == EpiState.INCUBATING)
            | (epi == EpiState.EXPRESSING)
            | (epi == EpiState.APOPTOTIC)
        )


class EnsembleBlock(VoxelBlock):
    """A batch of ``B`` same-shape :class:`VoxelBlock` states stacked on a
    leading axis.

    Every field has shape ``(B,) + padded``; the spatial geometry
    (``gid``/``in_domain``) is shared by all members and exposed as a
    broadcast view, so elementwise kernels run once for the whole batch.
    Member ``b``'s slice ``field[b]`` is exactly the solo block layout,
    which is what :meth:`member_view` hands back (a writable view under
    numpy) for per-member code paths: seeding, extravasation attempts,
    checkpointing.
    """

    def __init__(self, spec: GridSpec, owned: Box, batch: int,
                 ghost: int = 1, xp=None):
        if batch < 1:
            raise ValueError(f"ensemble batch must be >= 1, got {batch}")
        self.spec = spec
        self.owned = owned
        self.ghost = int(ghost)
        self.batch = int(batch)
        self.xp = NUMPY if xp is None else xp
        spatial = tuple(s + 2 * self.ghost for s in owned.shape)
        shape = (self.batch,) + spatial
        for name, dtype in self.FIELD_DTYPES.items():
            setattr(self, name, self.xp.zeros(shape, dtype=dtype))
        self._derive_geometry()
        self.epi_state[self.in_domain] = EpiState.HEALTHY

    def _derive_geometry(self) -> None:
        spatial = tuple(s + 2 * self.ghost for s in self.owned.shape)
        ext = self.owned.expand(self.ghost)
        coords = ext.coords().reshape(spatial + (self.spec.ndim,))
        inside = self.spec.in_bounds(coords)
        gid = np.full(spatial, -1, dtype=np.int64)
        gid[inside] = self.spec.ravel(coords[inside])
        self.gid_spatial = gid
        self.in_domain_spatial = inside
        bshape = (self.batch,) + spatial
        if self.xp.name == "numpy":
            # Zero-copy broadcast views: all members share one geometry.
            self.gid = np.broadcast_to(gid, bshape)
            self.in_domain = np.broadcast_to(inside, bshape)
        else:  # pragma: no cover - exercised only with cupy/torch present
            self.gid = self.xp.asarray(
                np.ascontiguousarray(np.broadcast_to(gid, bshape)))
            self.in_domain = self.xp.asarray(
                np.ascontiguousarray(np.broadcast_to(inside, bshape)))

    # -- geometry ------------------------------------------------------------

    @property
    def interior(self) -> tuple[slice, ...]:
        """Slices selecting every member's owned region (full batch axis)."""
        g = self.ghost
        return (slice(None),) + tuple(slice(g, s - g) for s in self.shape[1:])

    @property
    def spatial_shape(self) -> tuple[int, ...]:
        return self.shape[1:]

    # -- per-member access ---------------------------------------------------

    def member_view(self, b: int) -> VoxelBlock:
        """Solo-layout :class:`VoxelBlock` over member ``b``'s storage.

        Under numpy the returned block's fields are *views* into the
        batched storage — writes flow through, so solo kernels (seeding,
        extravasation application) mutate the ensemble state directly.
        Other array modules get host copies (read-mostly use only).
        """
        arrays = {
            name: self.xp.asnumpy(getattr(self, name)[b])
            for name in self.FIELD_DTYPES
        }
        return VoxelBlock.from_arrays(
            self.spec, self.owned, arrays, ghost=self.ghost, fresh=False
        )
