"""Tissue structure: branching airways as empty voxels (§2.2).

'Structure is defined for the simulation, such as branching airways in
the lung, by leaving some voxels empty without epithelial cells' — and §6:
'once that scale of 3D space is achieved, other spatial topologies such as
fractal branching airways can be easily tested by overlaying the topology
on the voxels.'

This module generates a fractal branching-airway mask (a recursive binary
tree of corridors, the classic dichotomous lung geometry) and overlays it
on any block: structural voxels hold no epithelial cell, are never
infected, and produce nothing — but virions, signal and T cells still
move through them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.state import EpiState, VoxelBlock
from repro.grid.spec import GridSpec


def branching_airways_2d(
    spec: GridSpec,
    generations: int = 4,
    trunk_width: int = 3,
    branch_angle_deg: float = 35.0,
    length_ratio: float = 0.72,
) -> np.ndarray:
    """Global ids of airway (EMPTY) voxels: a dichotomous branching tree.

    The trunk enters at the middle of the low-x edge and bifurcates
    ``generations`` times; each child segment shrinks in length and width
    (Weibel-like geometry).  Deterministic — structure is part of the
    experiment configuration, not the stochastic state.
    """
    if spec.ndim != 2:
        raise ValueError("branching_airways_2d requires a 2D grid")
    nx, ny = spec.shape
    mask = np.zeros(spec.shape, dtype=bool)

    def carve(x0, y0, angle, length, width, gen):
        steps = max(2, int(length))
        for i in range(steps):
            x = x0 + math.cos(angle) * i
            y = y0 + math.sin(angle) * i
            half = max(0, int(round(width / 2)))
            xi, yi = int(round(x)), int(round(y))
            lo_x, hi_x = max(0, xi - half), min(nx, xi + half + 1)
            lo_y, hi_y = max(0, yi - half), min(ny, yi + half + 1)
            if lo_x < hi_x and lo_y < hi_y:
                mask[lo_x:hi_x, lo_y:hi_y] = True
        end_x = x0 + math.cos(angle) * steps
        end_y = y0 + math.sin(angle) * steps
        if gen < generations:
            spread = math.radians(branch_angle_deg)
            for sign in (-1.0, 1.0):
                carve(
                    end_x, end_y, angle + sign * spread,
                    length * length_ratio, max(1, width - 1), gen + 1,
                )

    carve(0, ny // 2, 0.0, nx * 0.3, trunk_width, 0)
    coords = np.argwhere(mask)
    return spec.ravel(coords)


def branching_airways_3d(
    spec: GridSpec,
    generations: int = 3,
    trunk_radius: int = 2,
    branch_angle_deg: float = 32.0,
    length_ratio: float = 0.7,
) -> np.ndarray:
    """Global ids of airway voxels for a 3D grid: a dichotomous tree whose
    children alternate their bifurcation plane each generation (the
    classic in-vivo pattern), entering at the middle of the low-x face.

    This is the §6 topology: 'once that scale of 3D space is achieved,
    other spatial topologies such as fractal branching airways can be
    easily tested by overlaying the topology on the voxels.'
    """
    if spec.ndim != 3:
        raise ValueError("branching_airways_3d requires a 3D grid")
    nx, ny, nz = spec.shape
    mask = np.zeros(spec.shape, dtype=bool)

    def carve(p0, direction, length, radius, gen, plane):
        d = np.asarray(direction, dtype=float)
        d /= np.linalg.norm(d)
        steps = max(2, int(length))
        for i in range(steps):
            c = np.asarray(p0, dtype=float) + d * i
            lo = np.maximum(0, np.round(c - radius).astype(int))
            hi = np.minimum(
                [nx, ny, nz], np.round(c + radius + 1).astype(int)
            )
            if (lo < hi).all():
                mask[lo[0]:hi[0], lo[1]:hi[1], lo[2]:hi[2]] = True
        end = np.asarray(p0, dtype=float) + d * steps
        if gen < generations:
            spread = math.radians(branch_angle_deg)
            # Rotate the direction within the current bifurcation plane.
            axes = [(1, 2), (0, 2), (0, 1)][plane]
            for sign in (-1.0, 1.0):
                nd = d.copy()
                a, b = axes
                cos_s, sin_s = math.cos(spread), math.sin(sign * spread)
                nd[a], nd[b] = (
                    d[a] * cos_s - d[b] * sin_s,
                    d[a] * sin_s + d[b] * cos_s,
                )
                carve(end, nd, length * length_ratio,
                      max(1, radius - 1), gen + 1, (plane + 1) % 3)

    carve((0, ny // 2, nz // 2), (1.0, 0.0, 0.0), nx * 0.3,
          trunk_radius, 0, 0)
    coords = np.argwhere(mask)
    return spec.ravel(coords)


def apply_structure(block: VoxelBlock, structure_gids: np.ndarray) -> int:
    """Empty the epithelium at structural voxels this block holds.

    Applied over the whole padded extent (ghosts included) so neighbor
    lookups — e.g. bind-candidate scans — see the structure immediately,
    before any halo exchange.  Returns owned voxels emptied.
    """
    if structure_gids is None or len(structure_gids) == 0:
        return 0
    gids = np.sort(np.asarray(structure_gids, dtype=np.int64))
    flat_gid = block.gid.reshape(-1)
    member = np.isin(flat_gid, gids) & (flat_gid >= 0)
    shape = block.gid.shape
    sel = member.reshape(shape)
    block.epi_state[sel] = EpiState.EMPTY
    block.epi_timer[sel] = 0
    interior_sel = np.zeros(shape, dtype=bool)
    interior_sel[block.interior] = True
    return int((sel & interior_sel).sum())
