"""Per-step simulation statistics (paper §3.3, Fig 5).

SIMCoV logs aggregate quantities every timestep — epithelial counts per
state, tissue T cells, total virions — to enable time-series analysis of
infection dynamics.  All implementations produce the same
:class:`StepStats`; they differ only in *how* the numbers are reduced
(numpy + PGAS allreduce vs GPU atomics vs GPU tree reduction), which is the
Fig 4 ablation axis.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields

import numpy as np

from repro.core.state import EpiState, VoxelBlock

#: Reduction vector layout shared by every implementation.
REDUCED_FIELDS = (
    "healthy",
    "incubating",
    "expressing",
    "apoptotic",
    "dead",
    "tcells_tissue",
    "virions_total",
    "chemokine_total",
)


@dataclass(frozen=True)
class StepStats:
    """Aggregate state after one step."""

    step: int
    healthy: float
    incubating: float
    expressing: float
    apoptotic: float
    dead: float
    tcells_tissue: float
    virions_total: float
    chemokine_total: float
    #: Replicated scalar (not reduced): the vascular T-cell pool.
    tcells_vasculature: float = 0.0
    #: New tissue T cells this step.
    extravasations: int = 0
    #: Epithelial cells driven apoptotic this step.
    binds: int = 0
    #: T-cell moves executed this step.
    moves: int = 0

    @classmethod
    def from_vector(
        cls,
        step: int,
        vec: np.ndarray,
        pool: float = 0.0,
        extravasations: int = 0,
        binds: int = 0,
        moves: int = 0,
    ) -> "StepStats":
        if len(vec) != len(REDUCED_FIELDS):
            raise ValueError(
                f"stats vector length {len(vec)} != {len(REDUCED_FIELDS)}"
            )
        kwargs = dict(zip(REDUCED_FIELDS, (float(v) for v in vec)))
        return cls(
            step=step,
            tcells_vasculature=pool,
            extravasations=extravasations,
            binds=binds,
            moves=moves,
            **kwargs,
        )

    @property
    def infected(self) -> float:
        """All cells carrying virus (incubating + expressing + apoptotic)."""
        return self.incubating + self.expressing + self.apoptotic


def stats_vector(block: VoxelBlock) -> np.ndarray:
    """This block's local contribution to the reduction, REDUCED_FIELDS order.

    Plain numpy sums over the owned interior — the reference reduction all
    strategies must reproduce exactly (integer stats) / to fp tolerance.
    """
    sl = block.interior
    state = block.epi_state[sl]
    return np.array(
        [
            float((state == EpiState.HEALTHY).sum()),
            float((state == EpiState.INCUBATING).sum()),
            float((state == EpiState.EXPRESSING).sum()),
            float((state == EpiState.APOPTOTIC).sum()),
            float((state == EpiState.DEAD).sum()),
            float((block.tcell[sl] != 0).sum()),
            float(block.virions[sl].sum(dtype=np.float64)),
            float(block.chemokine[sl].sum(dtype=np.float64)),
        ],
        dtype=np.float64,
    )


#: Probe results keyed by (padded shape, interior) — see _batched_sum_exact.
_SUM_PROBE_CACHE: dict[tuple, bool] = {}


def _batched_sum_exact(shape: tuple[int, ...], sl: tuple[slice, ...]) -> bool:
    """Whether ``arr[sl].sum(axis=(1..))`` is bitwise-equal to summing each
    member's view separately, for float64 arrays of this layout.

    numpy's pairwise-summation reduction tree depends only on the
    operand's shape/strides, never on its values, so a one-time probe with
    random data soundly decides the question per layout.  When the probe
    passes (it does for all production layouts), the per-member stats
    reduction can run as one vectorized call; otherwise the caller falls
    back to a per-member loop, which is trivially exact because a member
    view has the solo block's exact layout.
    """
    key = (shape, tuple((s.start, s.stop, s.step) for s in sl[1:]))
    hit = _SUM_PROBE_CACHE.get(key)
    if hit is None:
        probe = np.random.default_rng(0xC0FFEE).random(shape)
        axes = tuple(range(1, len(shape)))
        vec = probe[sl].sum(axis=axes, dtype=np.float64)
        loop = np.array(
            [probe[b][sl[1:]].sum(dtype=np.float64) for b in range(shape[0])]
        )
        hit = bool(np.array_equal(vec, loop))
        _SUM_PROBE_CACHE[key] = hit
    return hit


def stats_vectors(block) -> np.ndarray:
    """Per-member stats of an EnsembleBlock, shape ``(B, len(REDUCED_FIELDS))``.

    Row ``b`` is bitwise identical to ``stats_vector(block.member_view(b))``:
    integer counts are order-independent, and the float sums either pass the
    :func:`_batched_sum_exact` probe (vectorized path) or fall back to
    per-member solo-layout sums.  Non-numpy array modules always take the
    vectorized path (their stats are statistical, not bitwise — DESIGN.md
    §4d).
    """
    xp = block.xp
    sl = block.interior
    n_members = block.batch
    axes = tuple(range(1, block.epi_state.ndim))
    state = block.epi_state[sl]
    out = np.empty((n_members, len(REDUCED_FIELDS)), dtype=np.float64)
    out[:, 0] = xp.asnumpy((state == EpiState.HEALTHY).sum(axis=axes))
    out[:, 1] = xp.asnumpy((state == EpiState.INCUBATING).sum(axis=axes))
    out[:, 2] = xp.asnumpy((state == EpiState.EXPRESSING).sum(axis=axes))
    out[:, 3] = xp.asnumpy((state == EpiState.APOPTOTIC).sum(axis=axes))
    out[:, 4] = xp.asnumpy((state == EpiState.DEAD).sum(axis=axes))
    out[:, 5] = xp.asnumpy((block.tcell[sl] != 0).sum(axis=axes))
    vectorized = xp.name != "numpy" or _batched_sum_exact(
        block.virions.shape, sl
    )
    if vectorized:
        out[:, 6] = xp.asnumpy(block.virions[sl].sum(axis=axes))
        out[:, 7] = xp.asnumpy(block.chemokine[sl].sum(axis=axes))
    else:  # pragma: no cover - no production layout fails the probe
        for b in range(n_members):
            mv = block.member_view(b)
            isl = mv.interior
            out[b, 6] = mv.virions[isl].sum(dtype=np.float64)
            out[b, 7] = mv.chemokine[isl].sum(dtype=np.float64)
    return out


class TimeSeries:
    """Accumulates StepStats and exposes numpy views per field."""

    def __init__(self):
        self._stats: list[StepStats] = []

    def append(self, stats: StepStats) -> None:
        self._stats.append(stats)

    def truncate(self, length: int) -> None:
        """Drop every entry at index >= ``length`` (recovery rollback:
        replayed steps re-append bitwise-identical stats)."""
        if length < 0:
            raise ValueError("length must be >= 0")
        del self._stats[length:]

    def __len__(self) -> int:
        return len(self._stats)

    def __getitem__(self, i: int) -> StepStats:
        return self._stats[i]

    def field(self, name: str) -> np.ndarray:
        return np.array([getattr(s, name) for s in self._stats], dtype=np.float64)

    def steps(self) -> np.ndarray:
        return np.array([s.step for s in self._stats], dtype=np.int64)

    def peak(self, name: str) -> tuple[int, float]:
        """(step, value) of the field's maximum — the Table 2 statistics."""
        vals = self.field(name)
        if vals.size == 0:
            raise ValueError("empty time series")
        i = int(np.argmax(vals))
        return int(self._stats[i].step), float(vals[i])

    def to_rows(self) -> list[dict]:
        """Plain dict rows (CSV/analysis helper)."""
        return [
            {f.name: getattr(s, f.name) for f in dc_fields(s)} for s in self._stats
        ]
