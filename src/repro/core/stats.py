"""Per-step simulation statistics (paper §3.3, Fig 5).

SIMCoV logs aggregate quantities every timestep — epithelial counts per
state, tissue T cells, total virions — to enable time-series analysis of
infection dynamics.  All implementations produce the same
:class:`StepStats`; they differ only in *how* the numbers are reduced
(numpy + PGAS allreduce vs GPU atomics vs GPU tree reduction), which is the
Fig 4 ablation axis.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields

import numpy as np

from repro.core.state import EpiState, VoxelBlock

#: Reduction vector layout shared by every implementation.
REDUCED_FIELDS = (
    "healthy",
    "incubating",
    "expressing",
    "apoptotic",
    "dead",
    "tcells_tissue",
    "virions_total",
    "chemokine_total",
)


@dataclass(frozen=True)
class StepStats:
    """Aggregate state after one step."""

    step: int
    healthy: float
    incubating: float
    expressing: float
    apoptotic: float
    dead: float
    tcells_tissue: float
    virions_total: float
    chemokine_total: float
    #: Replicated scalar (not reduced): the vascular T-cell pool.
    tcells_vasculature: float = 0.0
    #: New tissue T cells this step.
    extravasations: int = 0
    #: Epithelial cells driven apoptotic this step.
    binds: int = 0
    #: T-cell moves executed this step.
    moves: int = 0

    @classmethod
    def from_vector(
        cls,
        step: int,
        vec: np.ndarray,
        pool: float = 0.0,
        extravasations: int = 0,
        binds: int = 0,
        moves: int = 0,
    ) -> "StepStats":
        if len(vec) != len(REDUCED_FIELDS):
            raise ValueError(
                f"stats vector length {len(vec)} != {len(REDUCED_FIELDS)}"
            )
        kwargs = dict(zip(REDUCED_FIELDS, (float(v) for v in vec)))
        return cls(
            step=step,
            tcells_vasculature=pool,
            extravasations=extravasations,
            binds=binds,
            moves=moves,
            **kwargs,
        )

    @property
    def infected(self) -> float:
        """All cells carrying virus (incubating + expressing + apoptotic)."""
        return self.incubating + self.expressing + self.apoptotic


def stats_vector(block: VoxelBlock) -> np.ndarray:
    """This block's local contribution to the reduction, REDUCED_FIELDS order.

    Plain numpy sums over the owned interior — the reference reduction all
    strategies must reproduce exactly (integer stats) / to fp tolerance.
    """
    sl = block.interior
    state = block.epi_state[sl]
    return np.array(
        [
            float((state == EpiState.HEALTHY).sum()),
            float((state == EpiState.INCUBATING).sum()),
            float((state == EpiState.EXPRESSING).sum()),
            float((state == EpiState.APOPTOTIC).sum()),
            float((state == EpiState.DEAD).sum()),
            float((block.tcell[sl] != 0).sum()),
            float(block.virions[sl].sum(dtype=np.float64)),
            float(block.chemokine[sl].sum(dtype=np.float64)),
        ],
        dtype=np.float64,
    )


class TimeSeries:
    """Accumulates StepStats and exposes numpy views per field."""

    def __init__(self):
        self._stats: list[StepStats] = []

    def append(self, stats: StepStats) -> None:
        self._stats.append(stats)

    def truncate(self, length: int) -> None:
        """Drop every entry at index >= ``length`` (recovery rollback:
        replayed steps re-append bitwise-identical stats)."""
        if length < 0:
            raise ValueError("length must be >= 0")
        del self._stats[length:]

    def __len__(self) -> int:
        return len(self._stats)

    def __getitem__(self, i: int) -> StepStats:
        return self._stats[i]

    def field(self, name: str) -> np.ndarray:
        return np.array([getattr(s, name) for s in self._stats], dtype=np.float64)

    def steps(self) -> np.ndarray:
        return np.array([s.step for s in self._stats], dtype=np.int64)

    def peak(self, name: str) -> tuple[int, float]:
        """(step, value) of the field's maximum — the Table 2 statistics."""
        vals = self.field(name)
        if vals.size == 0:
            raise ValueError("empty time series")
        i = int(np.argmax(vals))
        return int(self._stats[i].step), float(vals[i])

    def to_rows(self) -> list[dict]:
        """Plain dict rows (CSV/analysis helper)."""
        return [
            {f.name: getattr(s, f.name) for f in dc_fields(s)} for s in self._stats
        ]
