"""Durable job journal: an append-only, CRC-framed write-ahead log.

Every cold (cache-miss) job's lifecycle transitions are journaled so a
restarted server can rebuild its jobs table exactly (DESIGN.md §4g):
``submit`` / ``start`` / ``preempt`` / ``retry`` / ``complete`` /
``fail`` / ``cancel`` records, replayed in order and folded last-wins
per job id.  A ``preempt`` record carries the job's accumulated stats
rows and the path of its on-disk shadow checkpoint, which is what makes
post-crash resume *bitwise* exact: the checkpoint restores the sim at
the preemption boundary and the journal restores the rows the earlier
segments already produced.

Framing (binary, little-endian)::

    b"SJ" | length: uint32 | crc32(payload): uint32 | payload (JSON, utf-8)

The same hardening idioms as :mod:`repro.io.checkpoint`:

- **torn tails are expected, not fatal** — a crash mid-append leaves a
  partial frame at the end of the active segment; replay detects it by
  framing/CRC, truncates the segment back to the last valid record with
  a loud warning, and carries on.  Corruption *before* the tail of the
  final segment (bit rot, a truncated earlier segment) is a different
  beast — the fold order would silently change — and raises
  :class:`JournalCorruptError` instead;
- **atomic compaction** — when the log grows past ``compact_bytes`` the
  server rewrites the folded state (one record per live fact) into the
  *next* segment via tmp + ``os.replace``, then deletes the older
  segments.  A crash between replace and delete is safe: replay folds
  old segments first and the compacted segment's records re-assert the
  same state last-wins.

Appends ``flush()`` to the OS on every record — durable across process
``SIGKILL`` (the crash model the chaos suite exercises).  ``sync()``
additionally ``fsync``s for OS-crash durability and runs at drain and
compaction boundaries, not per append (per-append fsync would put a
disk round-trip inside the submit path and blow the p99 latency gate).
"""

from __future__ import annotations

import json
import os
import re
import struct
import warnings
import zlib

#: Frame magic ("Serve Journal").
MAGIC = b"SJ"

#: Frame header: magic is checked separately; length + crc32 follow.
_HEADER = struct.Struct("<II")

#: Segment filename pattern (index is the rotation generation).
SEGMENT_PATTERN = re.compile(r"^journal-(\d{8})\.wal$")

#: Record types, in the order a job can emit them.
RECORD_TYPES = (
    "submit", "start", "preempt", "retry", "complete", "fail", "cancel",
)

#: Record types that mean the job reached a terminal state.
TERMINAL_TYPES = ("complete", "fail", "cancel")


class JournalCorruptError(RuntimeError):
    """The journal is damaged somewhere replay cannot safely skip."""


def segment_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"journal-{index:08d}.wal")


def list_segments(directory: str) -> list[tuple[int, str]]:
    """``(index, path)`` of every journal segment, oldest first."""
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for entry in entries:
        m = SEGMENT_PATTERN.match(entry)
        if m:
            found.append((int(m.group(1)), os.path.join(directory, entry)))
    return sorted(found)


def frame_record(record: dict) -> bytes:
    """Encode one record into its on-disk frame."""
    payload = json.dumps(record, separators=(",", ":")).encode()
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return MAGIC + _HEADER.pack(len(payload), crc) + payload


def read_frames(data: bytes):
    """Yield ``(offset, record)`` for every whole, valid frame in
    ``data``; returns the offset where decoding stopped.

    Stops (without raising) at the first torn/corrupt frame — the caller
    decides whether that position is an acceptable torn tail or
    mid-stream corruption.
    """
    offset = 0
    head = len(MAGIC) + _HEADER.size
    while offset + head <= len(data):
        if data[offset:offset + len(MAGIC)] != MAGIC:
            return offset
        length, crc = _HEADER.unpack_from(data, offset + len(MAGIC))
        start = offset + head
        end = start + length
        if end > len(data):
            return offset
        payload = data[start:end]
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            return offset
        try:
            record = json.loads(payload)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return offset
        yield offset, record
        offset = end
    # Fewer bytes than a header left over: offset < len(data) flags a
    # torn tail to the caller just like a failed CRC would.
    return offset


class JobJournal:
    """The server's write-ahead log of job transitions.

    One instance per ``--journal-dir``; the loop thread owns it (appends
    are plain buffered writes + flush, no locking needed).
    """

    def __init__(self, directory: str, *, compact_bytes: int = 8 << 20):
        self.directory = directory
        self.compact_bytes = int(compact_bytes)
        os.makedirs(directory, exist_ok=True)
        self._fh = None
        self._segment_index = 0
        self._bytes = 0
        #: Records appended since open (observability).
        self.appended = 0
        #: True when replay truncated a torn tail (surfaced in /readyz).
        self.truncated_tail = False

    # -- replay ----------------------------------------------------------------

    def replay(self) -> list[dict]:
        """Read every record from every segment, oldest first.

        A torn final record in the *last* segment is truncated away with
        a loud warning (the crash-mid-append case); damage anywhere else
        raises :class:`JournalCorruptError`.
        """
        segments = list_segments(self.directory)
        records: list[dict] = []
        for pos, (index, path) in enumerate(segments):
            last = pos == len(segments) - 1
            with open(path, "rb") as fh:
                data = fh.read()
            gen = read_frames(data)
            n_before = len(records)
            stop = None
            while True:
                try:
                    _offset, record = next(gen)
                except StopIteration as fin:
                    stop = fin.value
                    break
                records.append(record)
            if stop is None or stop == len(data):
                continue
            if not last:
                raise JournalCorruptError(
                    f"journal segment {path!r} is corrupt at byte {stop} "
                    f"(not the final segment — replay order would be "
                    f"unreliable); refusing to fold"
                )
            # Torn tail of the active segment: truncate back to the last
            # valid frame and keep going — this is the crash-mid-append
            # case the framing exists for.
            warnings.warn(
                f"journal segment {path!r}: torn record at byte {stop} "
                f"of {len(data)} — truncating tail "
                f"({len(records) - n_before} records recovered from this "
                f"segment); a crash mid-append is the expected cause",
                RuntimeWarning,
                stacklevel=2,
            )
            with open(path, "r+b") as fh:
                fh.truncate(stop)
            self.truncated_tail = True
        if segments:
            self._segment_index = segments[-1][0]
        return records

    # -- appending -------------------------------------------------------------

    def open_for_append(self) -> None:
        """Open the newest segment (creating the first) for appending."""
        if self._fh is not None:
            return
        path = segment_path(self.directory, self._segment_index)
        self._fh = open(path, "ab")
        self._bytes = self._fh.tell()

    def append(self, record: dict) -> None:
        """Frame, append and flush one record."""
        if self._fh is None:
            self.open_for_append()
        frame = frame_record(record)
        self._fh.write(frame)
        self._fh.flush()
        self._bytes += len(frame)
        self.appended += 1

    def append_torn(self, record: dict, keep_fraction: float = 0.5) -> None:
        """Write a deliberately torn (partial) frame — the
        ``journal_torn`` fault injection: the bytes a crash mid-append
        would leave behind."""
        if self._fh is None:
            self.open_for_append()
        frame = frame_record(record)
        cut = max(1, int(len(frame) * keep_fraction))
        self._fh.write(frame[:cut])
        self._fh.flush()

    @property
    def size_bytes(self) -> int:
        return self._bytes

    @property
    def should_compact(self) -> bool:
        return self._bytes > self.compact_bytes

    def compact(self, records: list[dict]) -> None:
        """Atomically replace the log with the folded ``records``.

        The caller (the server) supplies the canonical current state —
        one submit + one latest-state record per job it still tracks.
        Written to the *next* segment index via tmp + ``os.replace``,
        fsynced, then the older segments are deleted.
        """
        next_index = self._segment_index + 1
        path = segment_path(self.directory, next_index)
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                for record in records:
                    fh.write(frame_record(record))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        for index, old in list_segments(self.directory):
            if index < next_index:
                try:
                    os.unlink(old)
                except FileNotFoundError:
                    pass
        self._segment_index = next_index
        self.open_for_append()

    def sync(self) -> None:
        """Flush + fsync the active segment (drain/shutdown barrier)."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            try:
                self.sync()
            finally:
                self._fh.close()
                self._fh = None


def fold_records(records: list[dict]) -> dict[str, dict]:
    """Fold a replayed record stream into per-job state, last-wins.

    Returns ``{job_id: {"spec": ..., "seq": ..., "last": <record type>,
    "steps_done": ..., "rows": [...], "preemptions": ...,
    "checkpoint": ..., "incidents": [...], "error": ...}}`` — everything
    the server needs to rebuild its jobs table.
    """
    folded: dict[str, dict] = {}
    for record in records:
        rtype = record.get("type")
        job_id = record.get("job")
        if rtype not in RECORD_TYPES or not job_id:
            continue
        entry = folded.setdefault(
            job_id,
            {
                "spec": None,
                "seq": 0,
                "last": None,
                "steps_done": 0,
                "rows": [],
                "preemptions": 0,
                "checkpoint": None,
                "incidents": [],
                "error": None,
            },
        )
        entry["last"] = rtype
        if rtype == "submit":
            entry["spec"] = record.get("spec")
            entry["seq"] = int(record.get("seq", 0))
        elif rtype == "preempt":
            entry["steps_done"] = int(record.get("steps_done", 0))
            entry["rows"] = list(record.get("rows") or [])
            entry["preemptions"] = int(record.get("preemptions", 0))
            entry["checkpoint"] = record.get("checkpoint")
        elif rtype == "retry":
            incident = record.get("incident")
            if incident is not None:
                entry["incidents"].append(incident)
        elif rtype == "fail":
            entry["error"] = record.get("error")
            incidents = record.get("incidents")
            if incidents:
                entry["incidents"] = list(incidents)
        elif rtype == "cancel":
            entry["error"] = record.get("error")
    return folded
