"""The asyncio HTTP/JSON job server.

Stdlib-only (``asyncio`` streams — no web framework): a tiny HTTP/1.1
front door over the scheduling core.  One connection serves one request
(``Connection: close``), which keeps the parser ~30 lines and is ample
for thousands of short-lived clients on localhost.

Routes::

    POST /jobs               submit a JobSpec           -> job summary
    GET  /jobs               list jobs                  -> summaries
    GET  /jobs/{id}          job status                 -> summary
    GET  /jobs/{id}/result   finished stats rows        -> result payload
    GET  /jobs/{id}/events   live SSE stream (replayed from event 0)
    POST /jobs/{id}/cancel   cancel queued/running job
    GET  /metrics            Prometheus text exposition (scrapers)
    GET  /metrics.json       serving counters + latency percentiles
    GET  /healthz            liveness probe with scheduler/worker status

Execution: simulations are CPU-bound, so segments run in a bounded
thread pool while the loop thread owns every piece of mutable state
(jobs table, scheduler, event logs) — worker threads reach it only
through ``loop.call_soon_threadsafe``.  Preemption is cooperative and
checkpoint-backed: the scheduler calls the victim's
``StepEngine.request_preempt``, the engine yields at the next step
boundary, the runner snapshots, and the job re-enters the queue to be
resumed bitwise-exactly later.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
import time
import uuid

from repro.obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.registry import get_registry
from repro.serve import runner as runner_mod
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobSpec,
    SpecError,
    result_cache_key,
)
from repro.serve.scheduler import Scheduler, job_cost
from repro.telemetry.sinks import SseSink, sse_frame
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Sentinel closing a job's event log (SSE streams drain then stop).
_END = None


class ServeApp:
    """The serving application: scheduler + cache + HTTP surface.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests, the
        load harness) — read the resolved one from ``app.port`` after
        :meth:`start`.
    max_workers:
        Concurrent job segments (thread pool size).
    cache_dir:
        Optional on-disk result-cache mirror (per-key subdirectories,
        atomic writes); memory-only when None.
    checkpoint_dir:
        Optional root for preemption-snapshot mirrors (per-job
        subdirectories); in-memory shadow snapshots only when None.
    trace_path:
        Optional telemetry log for the server's own ``cat="serving"``
        counters/gauges/spans.  With ``trace_format="jsonl"`` (default)
        a :class:`~repro.obs.snapshot.MetricsSnapshotSink` rides along,
        so the one artifact carries spans *and* periodic registry
        snapshots; ``"chrome"`` writes a Perfetto-loadable trace.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        max_workers: int = 2,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        trace_path: str | None = None,
        trace_format: str = "jsonl",
        sse_categories=SseSink.DEFAULT_CATEGORIES,
    ):
        self.host = host
        self.port = port
        self.scheduler = Scheduler(max_workers)
        self.cache = ResultCache(cache_dir)
        self.checkpoint_dir = checkpoint_dir
        self.sse_categories = sse_categories
        self.jobs: dict[str, Job] = {}
        #: cache_key -> active job id (in-flight request coalescing).
        self._inflight: dict[str, str] = {}
        #: spec signature -> (params, steps, cache_key).  Resolution costs
        #: ~1ms (params construction + typed encoding + hash); under a
        #: repeated-request load that is the entire submit latency.
        self._resolve_memo: dict[str, tuple] = {}
        self._events: dict[str, list] = {}
        self._conds: dict[str, asyncio.Condition] = {}
        self.metrics = {
            "submitted": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "preemptions": 0,
            "resumes": 0,
        }
        #: Submit-to-first-dispatch seconds (queue wait), per cold job.
        self.wait_seconds: list[float] = []
        #: Always-on registry instruments.  The `metrics` dict above
        #: stays as the JSON payload's source of truth; `_count` keeps
        #: the Prometheus counters in lockstep with it.
        self.registry = get_registry()
        reg = self.registry
        self._obs_counters = {
            name: reg.counter(f"simcov_serve_{name}_total", help_text)
            for name, help_text in (
                ("submitted", "Jobs accepted by POST /jobs"),
                ("cache_hits", "Submits answered from the result cache"),
                ("cache_misses", "Submits that scheduled a fresh run"),
                ("coalesced", "Submits joined onto an in-flight twin"),
                ("completed", "Jobs finished successfully"),
                ("failed", "Jobs that errored"),
                ("cancelled", "Jobs cancelled by clients"),
                ("preemptions", "Running jobs preempted for higher priority"),
                ("resumes", "Preempted jobs resumed from checkpoint"),
                ("sse_frames", "Event frames appended to job streams"),
                ("sse_streams", "GET /jobs/{id}/events streams opened"),
            )
        }
        self._obs_wait = reg.histogram(
            "simcov_serve_submit_to_first_event_seconds",
            "Submit-to-first-dispatch latency (cache hits observe ~0)",
        )
        self._obs_gauges = {
            name: reg.gauge(f"simcov_serve_{name}", help_text)
            for name, help_text in (
                ("queue_depth", "Jobs waiting for a worker"),
                ("busy_workers", "Worker threads running a segment"),
                ("max_workers", "Worker-pool size"),
                ("cache_entries", "Result-cache entries resident"),
            )
        }
        if trace_path is not None:
            if trace_format == "chrome":
                from repro.telemetry.sinks import ChromeTraceSink

                sinks = [ChromeTraceSink(trace_path)]
            elif trace_format == "jsonl":
                from repro.obs.snapshot import MetricsSnapshotSink
                from repro.telemetry.sinks import JsonlSink

                jsonl = JsonlSink(trace_path)
                # Snapshot sink first: tracer.close() closes sinks in
                # order, and the final snapshot must land before the
                # JSONL file handle goes away.
                sinks = [
                    MetricsSnapshotSink(jsonl.write_record, registry=reg),
                    jsonl,
                ]
            else:
                raise ValueError(
                    f"trace_format must be 'jsonl' or 'chrome', "
                    f"got {trace_format!r}"
                )
            self.tracer = Tracer(backend="serve", sinks=sinks)
        else:
            self.tracer = NULL_TRACER
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._executor = None
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._dispatch_task: asyncio.Task | None = None
        self._started_wall: float | None = None

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a serving counter on both surfaces (JSON dict + registry)."""
        if name in self.metrics:
            self.metrics[name] += amount
        self._obs_counters[name].inc(amount)

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving (returns once listening)."""
        from concurrent.futures import ThreadPoolExecutor

        self._loop = asyncio.get_running_loop()
        self._started_wall = time.time()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self.scheduler.max_workers,
            thread_name_prefix="simcov-serve",
        )
        # A deep backlog matters under load-test-scale bursts: with the
        # default (100) the kernel drops SYNs and clients stall a full
        # TCP retransmit timeout (~1s) — exactly the latency gate.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=4096
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatch_task = asyncio.ensure_future(self._dispatch_loop())

    async def serve_forever(self) -> None:
        """:meth:`start` + block until :meth:`abort`/:meth:`stop`."""
        if self._server is None:
            await self.start()
        try:
            await self._stopped.wait()
        finally:
            # Runs on cancellation too (SIGINT lands while parked on the
            # wait): worker threads must join and the trace sink must
            # flush even when the loop is being torn down around us.
            await self._shutdown()

    def stop(self) -> None:
        """Initiate shutdown from inside the loop thread."""
        if self._stopped is not None:
            self._stopped.set()

    def abort(self) -> None:
        """Thread/signal-safe shutdown trigger (the
        :func:`~repro.experiments.signals.abort_on_signals` hook): asks
        every running segment to preempt and stops the loop, so Ctrl-C
        never leaks worker threads, dist shm segments or torn caches."""
        for job in list(self.scheduler.running.values()):
            hook = job.preempt_hook
            if hook is not None:
                hook()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self.stop)
            except RuntimeError:  # loop already closing
                pass

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
        for job in list(self.scheduler.running.values()):
            hook = job.preempt_hook
            if hook is not None:
                hook()
        if self._executor is not None:
            # Wait for in-flight segments: their ``finally`` blocks close
            # sims (dist workers, /dev/shm) — the no-leak guarantee.
            await asyncio.get_running_loop().run_in_executor(
                None, functools.partial(self._executor.shutdown, wait=True)
            )
        self.tracer.close()

    # -- submission / scheduling ----------------------------------------------

    def submit(self, spec: JobSpec) -> tuple[Job, str]:
        """Create (or reuse) a job for ``spec``; returns ``(job, how)``
        with ``how`` one of ``"hit"`` / ``"join"`` / ``"miss"``.

        Loop-thread only (HTTP handlers run here).
        """
        self._count("submitted")
        signature = spec.cache_signature()
        memo = self._resolve_memo.get(signature)
        if memo is None:
            params, steps = spec.resolve_params()
            key = result_cache_key(params, spec.seeds(), steps)
            while len(self._resolve_memo) >= 4096:
                self._resolve_memo.pop(next(iter(self._resolve_memo)))
            self._resolve_memo[signature] = (params, steps, key)
        else:
            params, steps, key = memo
        inflight_id = self._inflight.get(key)
        if inflight_id is not None:
            peer = self.jobs[inflight_id]
            if peer.state in ACTIVE_STATES:
                peer.attached += 1
                self._count("coalesced")
                if self.tracer:
                    self.tracer.counter("serve:coalesced", 1, cat="serving")
                return peer, "join"
            self._inflight.pop(key, None)
        cached = self.cache.get(key)
        if cached is not None:
            job = self._make_job(spec, params, steps, key)
            job.state = DONE
            job.cache = "hit"
            job.result = cached
            job.steps_done = steps
            job.finished_at = time.time()
            self._count("cache_hits")
            self._obs_wait.observe(0.0)
            if self.tracer:
                self.tracer.counter("serve:cache_hit", 1, cat="serving")
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
            return job, "hit"
        job = self._make_job(spec, params, steps, key)
        self._inflight[key] = job.id
        self.scheduler.submit(job)
        self._count("cache_misses")
        if self.tracer:
            self.tracer.counter("serve:cache_miss", 1, cat="serving")
            self.tracer.gauge(
                "serve:queue_depth", len(self.scheduler.queue), cat="serving"
            )
        self._publish(job, sse_frame("state", job.summary()))
        self._maybe_preempt_for(job)
        if self._wake is not None:
            self._wake.set()
        return job, "miss"

    def _make_job(self, spec, params, steps, key) -> Job:
        job = Job(
            id=uuid.uuid4().hex[:12],
            spec=spec,
            params=params,
            steps=steps,
            cache_key=key,
        )
        self.jobs[job.id] = job
        self._events[job.id] = []
        self._conds[job.id] = asyncio.Condition()
        return job

    def _maybe_preempt_for(self, candidate: Job) -> None:
        victim = self.scheduler.pick_victim(candidate)
        if victim is None:
            return
        # Flag first, then read the hook: whichever side wins the race
        # (this thread calling the hook, or the runner seeing the flag
        # right after installing it) the request lands exactly once —
        # request_preempt is idempotent if both do.
        victim.preempt_requested = True
        hook = victim.preempt_hook
        if hook is not None:
            victim.preempt_requested = False
            hook()
        self._count("preemptions")
        if self.tracer:
            self.tracer.counter(
                "serve:preemptions", 1, cat="serving",
                victim=victim.id, for_job=candidate.id,
            )

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while True:
                job = self.scheduler.next_dispatch()
                if job is None:
                    break
                if job.state == CANCELLED:
                    self.scheduler.release(job)
                    continue
                self._start_segment(job)

    def _start_segment(self, job: Job) -> None:
        resumed = job.snapshot is not None
        if job.started_at is None:
            job.started_at = time.time()
            self.wait_seconds.append(job.started_at - job.submitted_at)
            self._obs_wait.observe(self.wait_seconds[-1])
            if self.tracer:
                self.tracer.counter(
                    "serve:wait_seconds", self.wait_seconds[-1],
                    cat="serving", job=job.id,
                )
        if resumed:
            self._count("resumes")
        job.state = RUNNING
        loop = self._loop

        def publish(frame, _job=job):
            loop.call_soon_threadsafe(self._publish, _job, frame)

        future = loop.run_in_executor(
            self._executor,
            functools.partial(
                runner_mod.run_segment,
                job,
                publish,
                checkpoint_root=self.checkpoint_dir,
                sse_categories=self.sse_categories,
            ),
        )
        future.add_done_callback(
            lambda fut, _job=job: loop.call_soon_threadsafe(
                self._segment_done, _job, fut
            )
        )

    def _segment_done(self, job: Job, future) -> None:
        try:
            result = future.result()
        except Exception as err:  # pragma: no cover - runner catches its own
            result = runner_mod.SegmentResult(
                runner_mod.FAILED, 0, error=f"{type(err).__name__}: {err}"
            )
        self.scheduler.charge(
            job.spec.client, job_cost(job, steps=result.steps_run)
        )
        if job.state == CANCELLED:
            self.scheduler.release(job)
            self._inflight.pop(job.cache_key, None)
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
        elif result.outcome == runner_mod.COMPLETED:
            job.state = DONE
            job.finished_at = time.time()
            self._count("completed")
            self.cache.put(job.cache_key, job.result)
            self.scheduler.release(job)
            self._inflight.pop(job.cache_key, None)
            if self.tracer:
                self.tracer.emit_span(
                    "job", job.started_at,
                    job.finished_at - job.started_at, cat="serving",
                    job=job.id, steps=job.steps,
                    preemptions=job.preemptions,
                )
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
        elif result.outcome == runner_mod.PREEMPTED:
            job.state = QUEUED
            self.scheduler.release(job, requeue=True)
            if self.tracer:
                self.tracer.gauge(
                    "serve:queue_depth", len(self.scheduler.queue),
                    cat="serving",
                )
        else:
            job.state = FAILED
            job.error = result.error
            job.finished_at = time.time()
            self._count("failed")
            self.scheduler.release(job)
            self._inflight.pop(job.cache_key, None)
            self._publish(job, sse_frame("error", job.summary()))
            self._finish_events(job)
        self._wake.set()

    def cancel(self, job: Job) -> bool:
        """Cancel a queued or running job (loop thread)."""
        if job.state not in ACTIVE_STATES:
            return False
        was_queued = job.id in self.scheduler.queue
        job.state = CANCELLED
        job.finished_at = time.time()
        self._count("cancelled")
        self._inflight.pop(job.cache_key, None)
        if was_queued:
            self.scheduler.queue.remove(job.id)
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
        else:
            job.preempt_requested = True
            hook = job.preempt_hook
            if hook is not None:
                job.preempt_requested = False
                hook()
            # The event stream closes when the segment reports back.
        return True

    # -- event streams ---------------------------------------------------------

    def _publish(self, job: Job, frame) -> None:
        log = self._events.get(job.id)
        if log is None or (log and log[-1] is _END):
            return
        log.append(frame)
        self._obs_counters["sse_frames"].inc()
        cond = self._conds.get(job.id)
        if cond is not None:
            asyncio.ensure_future(self._notify(cond))

    def _finish_events(self, job: Job) -> None:
        log = self._events.get(job.id)
        if log is not None and (not log or log[-1] is not _END):
            log.append(_END)
            cond = self._conds.get(job.id)
            if cond is not None:
                asyncio.ensure_future(self._notify(cond))

    @staticmethod
    async def _notify(cond: asyncio.Condition) -> None:
        async with cond:
            cond.notify_all()

    # -- metrics ---------------------------------------------------------------

    def _refresh_gauges(self) -> None:
        """Sample the lazily-scraped gauges (queue/pool/cache state is
        cheap to read but pointless to push on every mutation)."""
        g = self._obs_gauges
        g["queue_depth"].set(len(self.scheduler.queue))
        g["busy_workers"].set(len(self.scheduler.running))
        g["max_workers"].set(self.scheduler.max_workers)
        g["cache_entries"].set(len(self.cache))

    def metrics_text(self) -> str:
        """Prometheus exposition of the process registry."""
        self._refresh_gauges()
        return self.registry.render_prometheus()

    def health_payload(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "scheduler": {
                "queue_depth": len(self.scheduler.queue),
                "busy_workers": len(self.scheduler.running),
                "max_workers": self.scheduler.max_workers,
            },
            "jobs": states,
            "uptime_seconds": (
                time.time() - self._started_wall
                if self._started_wall is not None else 0.0
            ),
        }

    def metrics_payload(self) -> dict:
        self._refresh_gauges()
        waits = sorted(self.wait_seconds)

        def pct(p):
            if not waits:
                return 0.0
            return waits[min(len(waits) - 1, int(p * len(waits)))]

        submitted = self.metrics["submitted"]
        free = self.metrics["cache_hits"] + self.metrics["coalesced"]
        return {
            **self.metrics,
            "queue_depth": len(self.scheduler.queue),
            "busy_workers": len(self.scheduler.running),
            "max_workers": self.scheduler.max_workers,
            "cache_entries": len(self.cache),
            "cache_hit_rate": free / submitted if submitted else 0.0,
            "wait_p50_seconds": pct(0.50),
            "wait_p99_seconds": pct(0.99),
            "fair_share_spent": dict(self.scheduler.queue.spent),
        }

    # -- HTTP ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, body = request
            await self._route(method, path, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method, path, body, writer) -> None:
        parts = [p for p in path.split("?")[0].split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            return await _respond(writer, 200, self.health_payload())
        if method == "GET" and parts == ["metrics"]:
            return await _respond_text(
                writer, 200, self.metrics_text(), _PROM_CONTENT_TYPE
            )
        if method == "GET" and parts == ["metrics.json"]:
            return await _respond(writer, 200, self.metrics_payload())
        if method == "POST" and parts == ["jobs"]:
            try:
                spec = JobSpec.from_json(json.loads(body or b"{}"))
                job, how = self.submit(spec)
            except (SpecError, json.JSONDecodeError) as err:
                return await _respond(writer, 400, {"error": str(err)})
            status = 200 if how in ("hit", "join") else 201
            return await _respond(
                writer, status, {"cache": how, "job": job.summary()}
            )
        if method == "GET" and parts == ["jobs"]:
            return await _respond(
                writer, 200,
                {"jobs": [j.summary() for j in self.jobs.values()]},
            )
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.jobs.get(parts[1])
            if job is None:
                return await _respond(
                    writer, 404, {"error": f"no such job {parts[1]!r}"}
                )
            tail = parts[2:]
            if method == "GET" and not tail:
                return await _respond(writer, 200, job.summary())
            if method == "GET" and tail == ["result"]:
                if job.state != DONE:
                    return await _respond(
                        writer, 409,
                        {"error": f"job is {job.state}", "job": job.summary()},
                    )
                return await _respond(
                    writer, 200, {"job": job.summary(), "result": job.result}
                )
            if method == "GET" and tail == ["events"]:
                return await self._stream_events(job, writer)
            if method == "POST" and tail == ["cancel"]:
                ok = self.cancel(job)
                return await _respond(
                    writer, 200 if ok else 409, job.summary()
                )
        await _respond(
            writer, 404, {"error": f"no route {method} {path}"}
        )

    async def _stream_events(self, job: Job, writer) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        self._obs_counters["sse_streams"].inc()
        log = self._events[job.id]
        cond = self._conds[job.id]
        sent = 0
        while not writer.is_closing():
            while sent < len(log):
                frame = log[sent]
                sent += 1
                if frame is _END:
                    return
                writer.write(frame.encode())
            await writer.drain()
            async with cond:
                await cond.wait_for(
                    lambda: len(log) > sent or writer.is_closing()
                )


# -- HTTP plumbing -------------------------------------------------------------

async def _read_request(reader):
    """Parse one HTTP/1.1 request; returns (method, path, body) or None."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin1").split()
    except ValueError:
        return None
    content_length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    body = await reader.readexactly(content_length) if content_length else b""
    return method.upper(), path, body


_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    409: "Conflict", 500: "Internal Server Error",
}


async def _respond(writer, status: int, payload: dict) -> None:
    body = json.dumps(payload).encode()
    writer.write(
        (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
    )
    writer.write(body)
    await writer.drain()


async def _respond_text(writer, status: int, text: str,
                        content_type: str = "text/plain") -> None:
    body = text.encode()
    writer.write(
        (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
    )
    writer.write(body)
    await writer.drain()


class BackgroundServer:
    """Run a :class:`ServeApp` on a daemon thread with its own loop.

    The synchronous embedding used by tests, the load harness's
    reference runs and anything else that wants a live server without
    owning an event loop::

        with BackgroundServer(ServeApp(port=0)) as app:
            client = ServeClient(port=app.port)
            ...
    """

    def __init__(self, app: ServeApp, startup_timeout: float = 10.0):
        self.app = app
        self.startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="simcov-serve-loop", daemon=True
        )

    def _run(self) -> None:
        async def main():
            await self.app.start()
            self._ready.set()
            await self.app.serve_forever()

        try:
            asyncio.run(main())
        finally:
            self._ready.set()  # unblock __enter__ on startup failure

    def __enter__(self) -> ServeApp:
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):  # pragma: no cover
            raise RuntimeError("serve app did not start in time")
        if self.app._loop is None:  # pragma: no cover - startup failed
            raise RuntimeError("serve app failed to start")
        return self.app

    def __exit__(self, *exc) -> None:
        self.app.abort()
        self._thread.join(timeout=30)
