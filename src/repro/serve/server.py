"""The asyncio HTTP/JSON job server.

Stdlib-only (``asyncio`` streams — no web framework): a tiny HTTP/1.1
front door over the scheduling core.  One connection serves one request
(``Connection: close``), which keeps the parser ~30 lines and is ample
for thousands of short-lived clients on localhost.

Routes::

    POST /jobs               submit a JobSpec           -> job summary
    GET  /jobs               list jobs                  -> summaries
    GET  /jobs/{id}          job status                 -> summary
    GET  /jobs/{id}/result   finished stats rows        -> result payload
    GET  /jobs/{id}/events   live SSE stream (id-tagged frames; replays
                             from event 0, or from ``Last-Event-ID``)
    POST /jobs/{id}/cancel   cancel queued/running job
    GET  /metrics            Prometheus text exposition (scrapers)
    GET  /metrics.json       serving counters + latency percentiles
    GET  /healthz            liveness probe with scheduler/worker status
    GET  /readyz             readiness probe: 503 while draining or
                             after a failed journal replay

Execution: simulations are CPU-bound, so segments run on per-segment
daemon threads while the loop thread owns every piece of mutable state
(jobs table, scheduler, event logs, journal) — worker threads reach it
only through ``loop.call_soon_threadsafe``.  Preemption is cooperative
and checkpoint-backed: the scheduler calls the victim's
``StepEngine.request_preempt``, the engine yields at the next step
boundary, the runner snapshots, and the job re-enters the queue to be
resumed bitwise-exactly later.

Fault tolerance (DESIGN.md §4g): with ``journal_dir`` set, every cold
job's transitions hit a CRC-framed write-ahead log
(:mod:`repro.serve.journal`) and a restarted server replays it —
re-enqueueing incomplete jobs, resuming preempted ones from their disk
checkpoints — with results bitwise identical to an uninterrupted run.
Worker failures are classified and retried under a bounded-backoff
:class:`~repro.resilience.RestartPolicy`; a watchdog enforces
per-job deadlines and reclaims hung workers; admission control bounds
the queue and per-client in-flight work with typed 429/503 answers;
``SIGTERM`` triggers a graceful drain (stop admitting,
checkpoint-preempt running jobs, flush the journal, exit 0).
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
import time
import uuid
import warnings

from repro.obs.prometheus import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.registry import get_registry
from repro.resilience import (
    PERMANENT,
    RETRYABLE,
    JobIncident,
    RestartPolicy,
    format_incident_log,
)
from repro.serve import runner as runner_mod
from repro.serve.cache import ResultCache
from repro.serve.jobs import (
    ACTIVE_STATES,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RETRYING,
    RUNNING,
    Job,
    JobSpec,
    SpecError,
    result_cache_key,
)
from repro.serve.journal import JobJournal, JournalCorruptError, fold_records
from repro.serve.scheduler import Scheduler, job_cost
from repro.telemetry.sinks import SseSink, sse_frame
from repro.telemetry.tracer import NULL_TRACER, Tracer

#: Sentinel closing a job's event log (SSE streams drain then stop).
_END = None


class AdmissionError(Exception):
    """A submission was refused by admission control (HTTP 429/503)."""

    def __init__(self, status: int, reason: str, message: str,
                 retry_after: float = 1.0):
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.retry_after = retry_after

    def payload(self) -> dict:
        return {
            "error": str(self),
            "reason": self.reason,
            "retry_after": self.retry_after,
        }


class ServeApp:
    """The serving application: scheduler + cache + HTTP surface.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests, the
        load harness) — read the resolved one from ``app.port`` after
        :meth:`start`.
    max_workers:
        Concurrent job segments (thread pool size).
    cache_dir:
        Optional on-disk result-cache mirror (per-key subdirectories,
        atomic writes); memory-only when None.
    checkpoint_dir:
        Optional root for preemption-snapshot mirrors (per-job
        subdirectories); in-memory shadow snapshots only when None.
    trace_path:
        Optional telemetry log for the server's own ``cat="serving"``
        counters/gauges/spans.  With ``trace_format="jsonl"`` (default)
        a :class:`~repro.obs.snapshot.MetricsSnapshotSink` rides along,
        so the one artifact carries spans *and* periodic registry
        snapshots; ``"chrome"`` writes a Perfetto-loadable trace.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        max_workers: int = 2,
        cache_dir: str | None = None,
        checkpoint_dir: str | None = None,
        trace_path: str | None = None,
        trace_format: str = "jsonl",
        sse_categories=SseSink.DEFAULT_CATEGORIES,
        journal_dir: str | None = None,
        retry_policy: RestartPolicy | None = None,
        max_queue_depth: int | None = None,
        max_inflight_per_client: int | None = None,
        hang_timeout_s: float | None = 30.0,
        watchdog_interval_s: float = 0.05,
        fault=None,
    ):
        self.host = host
        self.port = port
        self.scheduler = Scheduler(max_workers)
        # Journaling implies durable results and durable checkpoints:
        # replay needs the disk cache to resolve "complete" records and
        # the checkpoint mirrors to resume preempted jobs, so both
        # default to subdirectories of the journal.
        self.journal_dir = journal_dir
        if journal_dir is not None and cache_dir is None:
            cache_dir = os.path.join(journal_dir, "cache")
        if journal_dir is not None and checkpoint_dir is None:
            checkpoint_dir = os.path.join(journal_dir, "checkpoints")
        self.cache = ResultCache(cache_dir)
        self.checkpoint_dir = checkpoint_dir
        self.sse_categories = sse_categories
        self.retry_policy = (
            retry_policy if retry_policy is not None
            else RestartPolicy(max_restarts=3, backoff=0.05)
        )
        self.max_queue_depth = max_queue_depth
        self.max_inflight_per_client = max_inflight_per_client
        self.hang_timeout_s = hang_timeout_s
        self.watchdog_interval_s = watchdog_interval_s
        #: Optional ServeFaultSpec (chaos testing): targets the Nth cold
        #: job submitted after startup.
        self.fault = fault
        self.journal: JobJournal | None = (
            JobJournal(journal_dir) if journal_dir is not None else None
        )
        #: Set once drain() runs: stop admitting, finish running work.
        self._draining = False
        self._drain_done = False
        #: Journal replay failed at startup (readiness goes 503).
        self._replay_error: str | None = None
        #: Active (queued/running/preempted/retrying) cold jobs per
        #: client — the per-client admission cap's denominator.
        self._client_active: dict[str, int] = {}
        #: Cold submissions so far (fault targeting index).
        self._miss_seq = 0
        self._segment_threads: set[threading.Thread] = set()
        self._watchdog_task: asyncio.Task | None = None
        self.jobs: dict[str, Job] = {}
        #: cache_key -> active job id (in-flight request coalescing).
        self._inflight: dict[str, str] = {}
        #: spec signature -> (params, steps, cache_key).  Resolution costs
        #: ~1ms (params construction + typed encoding + hash); under a
        #: repeated-request load that is the entire submit latency.
        self._resolve_memo: dict[str, tuple] = {}
        self._events: dict[str, list] = {}
        self._conds: dict[str, asyncio.Condition] = {}
        self.metrics = {
            "submitted": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "preemptions": 0,
            "resumes": 0,
            "retries": 0,
            "rejected": 0,
            "deadline_expired": 0,
            "hung_workers": 0,
            "replayed_jobs": 0,
        }
        #: Submit-to-first-dispatch seconds (queue wait), per cold job.
        self.wait_seconds: list[float] = []
        #: Always-on registry instruments.  The `metrics` dict above
        #: stays as the JSON payload's source of truth; `_count` keeps
        #: the Prometheus counters in lockstep with it.
        self.registry = get_registry()
        reg = self.registry
        self._obs_counters = {
            name: reg.counter(f"simcov_serve_{name}_total", help_text)
            for name, help_text in (
                ("submitted", "Jobs accepted by POST /jobs"),
                ("cache_hits", "Submits answered from the result cache"),
                ("cache_misses", "Submits that scheduled a fresh run"),
                ("coalesced", "Submits joined onto an in-flight twin"),
                ("completed", "Jobs finished successfully"),
                ("failed", "Jobs that errored"),
                ("cancelled", "Jobs cancelled by clients"),
                ("preemptions", "Running jobs preempted for higher priority"),
                ("resumes", "Preempted jobs resumed from checkpoint"),
                ("sse_frames", "Event frames appended to job streams"),
                ("sse_streams", "GET /jobs/{id}/events streams opened"),
                ("retries", "Failed job attempts re-run under the policy"),
                ("rejected", "Submissions refused by admission control"),
                ("deadline_expired", "Jobs failed by the deadline watchdog"),
                ("hung_workers", "Worker threads reclaimed by the "
                                 "hang detector"),
                ("replayed_jobs", "Jobs re-enqueued from the journal "
                                  "at startup"),
            )
        }
        #: Per-reason rejection counters (labels on one metric name).
        self._rejected_reason_counters: dict[str, object] = {}
        self._obs_wait = reg.histogram(
            "simcov_serve_submit_to_first_event_seconds",
            "Submit-to-first-dispatch latency (cache hits observe ~0)",
        )
        self._obs_gauges = {
            name: reg.gauge(f"simcov_serve_{name}", help_text)
            for name, help_text in (
                ("queue_depth", "Jobs waiting for a worker"),
                ("busy_workers", "Worker threads running a segment"),
                ("max_workers", "Worker-pool size"),
                ("cache_entries", "Result-cache entries resident"),
            )
        }
        if trace_path is not None:
            if trace_format == "chrome":
                from repro.telemetry.sinks import ChromeTraceSink

                sinks = [ChromeTraceSink(trace_path)]
            elif trace_format == "jsonl":
                from repro.obs.snapshot import MetricsSnapshotSink
                from repro.telemetry.sinks import JsonlSink

                jsonl = JsonlSink(trace_path)
                # Snapshot sink first: tracer.close() closes sinks in
                # order, and the final snapshot must land before the
                # JSONL file handle goes away.
                sinks = [
                    MetricsSnapshotSink(jsonl.write_record, registry=reg),
                    jsonl,
                ]
            else:
                raise ValueError(
                    f"trace_format must be 'jsonl' or 'chrome', "
                    f"got {trace_format!r}"
                )
            self.tracer = Tracer(backend="serve", sinks=sinks)
        else:
            self.tracer = NULL_TRACER
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._dispatch_task: asyncio.Task | None = None
        self._started_wall: float | None = None

    def _count(self, name: str, amount: int = 1) -> None:
        """Bump a serving counter on both surfaces (JSON dict + registry)."""
        if name in self.metrics:
            self.metrics[name] += amount
        self._obs_counters[name].inc(amount)

    # -- journal ---------------------------------------------------------------

    def _journal_append(self, job: Job, record: dict) -> None:
        """Append one transition for a journaled job (loop thread)."""
        if self.journal is None or not job.journaled:
            return
        self.journal.append(record)

    def _journal_snapshot_records(self) -> list[dict]:
        """The folded current state — what compaction rewrites the log
        to: one submit + the latest facts per journaled job."""
        records: list[dict] = []
        for job in sorted(self.jobs.values(), key=lambda j: j.seq):
            if not job.journaled:
                continue
            records.append({
                "type": "submit", "job": job.id, "seq": job.seq,
                "spec": job.spec.to_json(),
            })
            for incident in job.incidents:
                records.append({
                    "type": "retry", "job": job.id,
                    "incident": (
                        incident.to_json()
                        if hasattr(incident, "to_json") else dict(incident)
                    ),
                })
            if job.state == DONE:
                records.append({"type": "complete", "job": job.id})
            elif job.state == FAILED:
                records.append(
                    {"type": "fail", "job": job.id, "error": job.error}
                )
            elif job.state == CANCELLED:
                records.append({"type": "cancel", "job": job.id})
            elif job.steps_done > 0 and job.resume_checkpoint is not None:
                records.append({
                    "type": "preempt", "job": job.id,
                    "steps_done": job.steps_done,
                    "preemptions": job.preemptions,
                    "rows": list(job.rows),
                    "checkpoint": job.resume_checkpoint,
                })
        return records

    def _maybe_compact(self) -> None:
        if self.journal is not None and self.journal.should_compact:
            self.journal.compact(self._journal_snapshot_records())

    def _restore_from_journal(self) -> None:
        """Rebuild the jobs table from the journal (startup, pre-bind).

        Incomplete jobs re-enter the queue with their original ids,
        accumulated rows and disk-checkpoint resume points; completed
        jobs resolve through the disk result cache (re-enqueued if the
        cache entry is missing — at-least-once, made harmless by
        bitwise determinism).
        """
        try:
            records = self.journal.replay()
        except JournalCorruptError as err:
            # Serve (liveness) but flunk readiness: a load balancer
            # stops routing while an operator inspects the journal.
            self._replay_error = str(err)
            warnings.warn(
                f"journal replay failed — starting with an empty jobs "
                f"table, readiness probe will report it: {err}",
                RuntimeWarning,
                stacklevel=2,
            )
            return
        folded = fold_records(records)
        entries = sorted(folded.items(), key=lambda kv: kv[1]["seq"])
        for job_id, entry in entries:
            if entry["spec"] is None:  # no submit record survived
                continue
            try:
                spec = JobSpec.from_json(
                    {k: v for k, v in entry["spec"].items() if v is not None}
                )
                params, steps = spec.resolve_params()
            except SpecError as err:  # pragma: no cover - wrote it, read it
                warnings.warn(
                    f"journal: dropping job {job_id}: {err}", RuntimeWarning
                )
                continue
            key = result_cache_key(params, spec.seeds(), steps)
            job = Job(
                id=job_id, spec=spec, params=params, steps=steps,
                cache_key=key,
            )
            job.journaled = True
            job.incidents = [
                self._incident_from_json(i) for i in entry["incidents"]
            ]
            self.jobs[job.id] = job
            self._events[job.id] = []
            self._conds[job.id] = asyncio.Condition()
            last = entry["last"]
            if last == "complete":
                cached = self.cache.get(key)
                if cached is not None:
                    job.state = DONE
                    job.result = cached
                    job.steps_done = steps
                    job.finished_at = time.time()
                    self._publish(job, sse_frame("done", job.summary()))
                    self._finish_events(job)
                    continue
                last = "submit"  # result lost with the process: re-run
            if last == "fail":
                job.state = FAILED
                job.error = entry["error"]
                job.finished_at = time.time()
                self._publish(job, sse_frame("error", job.summary()))
                self._finish_events(job)
                continue
            if last == "cancel":
                job.state = CANCELLED
                job.finished_at = time.time()
                self._publish(job, sse_frame("done", job.summary()))
                self._finish_events(job)
                continue
            # submit / start / preempt / retry: back into the queue.
            job.steps_done = entry["steps_done"]
            job.rows = list(entry["rows"])
            job.preemptions = entry["preemptions"]
            job.resume_checkpoint = entry["checkpoint"]
            job.state = QUEUED
            self._inflight[key] = job.id
            self._client_active[spec.client] = (
                self._client_active.get(spec.client, 0) + 1
            )
            self._attach_fault(job)
            self.scheduler.submit(job)
            self._count("replayed_jobs")
            self._publish(job, sse_frame("state", job.summary()))

    @staticmethod
    def _incident_from_json(raw: dict):
        try:
            return JobIncident(**raw)
        except TypeError:  # forward-compat: unknown fields stay a dict
            return raw

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start serving (returns once listening).

        With a journal configured, replay happens *before* the socket
        binds: by the time a client can reach the server, every
        incomplete journaled job is back in the queue.
        """
        self._loop = asyncio.get_running_loop()
        self._started_wall = time.time()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        if self.journal is not None:
            self._restore_from_journal()
            self.journal.open_for_append()
        # A deep backlog matters under load-test-scale bursts: with the
        # default (100) the kernel drops SYNs and clients stall a full
        # TCP retransmit timeout (~1s) — exactly the latency gate.
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, backlog=4096
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._dispatch_task = asyncio.ensure_future(self._dispatch_loop())
        self._watchdog_task = asyncio.ensure_future(self._watchdog_loop())
        if self._wake is not None and len(self.scheduler.queue):
            self._wake.set()

    async def serve_forever(self) -> None:
        """:meth:`start` + block until :meth:`abort`/:meth:`stop`."""
        if self._server is None:
            await self.start()
        try:
            await self._stopped.wait()
        finally:
            # Runs on cancellation too (SIGINT lands while parked on the
            # wait): worker threads must join and the trace sink must
            # flush even when the loop is being torn down around us.
            await self._shutdown()

    def stop(self) -> None:
        """Initiate shutdown from inside the loop thread."""
        if self._stopped is not None:
            self._stopped.set()

    def abort(self) -> None:
        """Thread/signal-safe shutdown trigger (the
        :func:`~repro.experiments.signals.abort_on_signals` hook): asks
        every running segment to preempt and stops the loop, so Ctrl-C
        never leaks worker threads, dist shm segments or torn caches."""
        for job in list(self.scheduler.running.values()):
            hook = job.preempt_hook
            if hook is not None:
                hook()
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self.stop)
            except RuntimeError:  # loop already closing
                pass

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatch_task is not None:
            self._dispatch_task.cancel()
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        for job in list(self.scheduler.running.values()):
            hook = job.preempt_hook
            if hook is not None:
                hook()
        threads = [t for t in self._segment_threads if t.is_alive()]
        if threads:
            # Wait for in-flight segments: their ``finally`` blocks close
            # sims (dist workers, /dev/shm) — the no-leak guarantee.  A
            # genuinely hung worker gets a bounded join; it is a daemon
            # thread and dies with the process.
            def join_all():
                for t in threads:
                    t.join(timeout=10)

            await asyncio.get_running_loop().run_in_executor(None, join_all)
        if self.journal is not None:
            self.journal.close()
        self.tracer.close()

    # -- submission / scheduling ----------------------------------------------

    def _reject(self, status: int, reason: str, message: str,
                retry_after: float = 1.0):
        self._count("rejected")
        counter = self._rejected_reason_counters.get(reason)
        if counter is None:
            counter = self.registry.counter(
                "simcov_serve_rejected_reason_total",
                "Submissions refused by admission control, by reason",
                reason=reason,
            )
            self._rejected_reason_counters[reason] = counter
        counter.inc()
        if self.tracer:
            self.tracer.counter(
                "serve:rejected", 1, cat="serving", reason=reason
            )
        raise AdmissionError(status, reason, message, retry_after)

    def _admit_cold(self, spec: JobSpec) -> None:
        """Admission control for work that would occupy queue/workers.

        Cache hits and joins are always admitted (they cost nothing);
        only a cold job can overload the server, so the bounds apply
        here — and the answer is a typed 429/503 with ``Retry-After``,
        never a hang or a dropped socket.
        """
        if (
            self.max_queue_depth is not None
            and len(self.scheduler.queue) >= self.max_queue_depth
        ):
            self._reject(
                503, "queue_full",
                f"queue depth {len(self.scheduler.queue)} at the "
                f"--max-queue-depth bound {self.max_queue_depth}; "
                f"retry shortly",
            )
        cap = self.max_inflight_per_client
        if cap is not None:
            active = self._client_active.get(spec.client, 0)
            if active >= cap:
                self._reject(
                    429, "client_limit",
                    f"client {spec.client!r} has {active} jobs in flight "
                    f"at the --max-inflight bound {cap}; retry shortly",
                )

    def _attach_fault(self, job: Job) -> None:
        """Chaos testing: pin the configured fault to the Nth cold job."""
        if self.fault is not None and self.fault.job == self._miss_seq:
            job.fault = self.fault
        self._miss_seq += 1

    def submit(self, spec: JobSpec) -> tuple[Job, str]:
        """Create (or reuse) a job for ``spec``; returns ``(job, how)``
        with ``how`` one of ``"hit"`` / ``"join"`` / ``"miss"``.
        Raises :class:`AdmissionError` when refused (draining/overload).

        Loop-thread only (HTTP handlers run here).
        """
        if self._draining:
            self._reject(
                503, "draining",
                "server is draining: not admitting new jobs",
                retry_after=5.0,
            )
        self._count("submitted")
        signature = spec.cache_signature()
        memo = self._resolve_memo.get(signature)
        if memo is None:
            params, steps = spec.resolve_params()
            key = result_cache_key(params, spec.seeds(), steps)
            while len(self._resolve_memo) >= 4096:
                self._resolve_memo.pop(next(iter(self._resolve_memo)))
            self._resolve_memo[signature] = (params, steps, key)
        else:
            params, steps, key = memo
        inflight_id = self._inflight.get(key)
        if inflight_id is not None:
            peer = self.jobs[inflight_id]
            if peer.state in ACTIVE_STATES:
                peer.attached += 1
                self._count("coalesced")
                if self.tracer:
                    self.tracer.counter("serve:coalesced", 1, cat="serving")
                return peer, "join"
            self._inflight.pop(key, None)
        cached = self.cache.get(key)
        if cached is not None:
            job = self._make_job(spec, params, steps, key)
            job.state = DONE
            job.cache = "hit"
            job.result = cached
            job.steps_done = steps
            job.finished_at = time.time()
            self._count("cache_hits")
            self._obs_wait.observe(0.0)
            if self.tracer:
                self.tracer.counter("serve:cache_hit", 1, cat="serving")
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
            return job, "hit"
        self._admit_cold(spec)
        job = self._make_job(spec, params, steps, key)
        job.journaled = self.journal is not None
        self._attach_fault(job)
        self._inflight[key] = job.id
        self._client_active[spec.client] = (
            self._client_active.get(spec.client, 0) + 1
        )
        self._journal_append(job, {
            "type": "submit", "job": job.id, "seq": job.seq,
            "spec": spec.to_json(),
        })
        self.scheduler.submit(job)
        self._count("cache_misses")
        if self.tracer:
            self.tracer.counter("serve:cache_miss", 1, cat="serving")
            self.tracer.gauge(
                "serve:queue_depth", len(self.scheduler.queue), cat="serving"
            )
        self._publish(job, sse_frame("state", job.summary()))
        self._maybe_preempt_for(job)
        if self._wake is not None:
            self._wake.set()
        return job, "miss"

    def _make_job(self, spec, params, steps, key) -> Job:
        job = Job(
            id=uuid.uuid4().hex[:12],
            spec=spec,
            params=params,
            steps=steps,
            cache_key=key,
        )
        self.jobs[job.id] = job
        self._events[job.id] = []
        self._conds[job.id] = asyncio.Condition()
        return job

    def _maybe_preempt_for(self, candidate: Job) -> None:
        victim = self.scheduler.pick_victim(candidate)
        if victim is None:
            return
        # Flag first, then read the hook: whichever side wins the race
        # (this thread calling the hook, or the runner seeing the flag
        # right after installing it) the request lands exactly once —
        # request_preempt is idempotent if both do.
        victim.preempt_requested = True
        hook = victim.preempt_hook
        if hook is not None:
            victim.preempt_requested = False
            hook()
        self._count("preemptions")
        if self.tracer:
            self.tracer.counter(
                "serve:preemptions", 1, cat="serving",
                victim=victim.id, for_job=candidate.id,
            )

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            while not self._draining:
                job = self.scheduler.next_dispatch()
                if job is None:
                    break
                if job.state == CANCELLED:
                    self.scheduler.release(job)
                    continue
                self._start_segment(job)

    def _start_segment(self, job: Job) -> None:
        resumed = (
            job.snapshot is not None or job.resume_checkpoint is not None
        )
        if job.started_at is None:
            job.started_at = time.time()
            self.wait_seconds.append(job.started_at - job.submitted_at)
            self._obs_wait.observe(self.wait_seconds[-1])
            if self.tracer:
                self.tracer.counter(
                    "serve:wait_seconds", self.wait_seconds[-1],
                    cat="serving", job=job.id,
                )
        if resumed:
            self._count("resumes")
        job.state = RUNNING
        job.segment_start_steps = job.steps_done
        job.segment_start_rows = len(job.rows)
        job.last_heartbeat = time.monotonic()
        self._journal_append(job, {
            "type": "start", "job": job.id,
            "attempt": len(job.incidents) + 1,
            "from_step": job.steps_done,
        })
        loop = self._loop
        generation = job.generation

        def publish(frame, _job=job):
            loop.call_soon_threadsafe(self._publish, _job, frame)

        def segment(_job=job, _gen=generation):
            # One daemon thread per segment (not a pool): a hung worker
            # must not poison a pool slot — the hang detector abandons
            # the thread and the scheduler slot frees immediately.
            try:
                result = runner_mod.run_segment(
                    _job,
                    publish,
                    checkpoint_root=self.checkpoint_dir,
                    sse_categories=self.sse_categories,
                    journal=self.journal,
                )
            except Exception as err:  # pragma: no cover - runner catches
                result = runner_mod.SegmentResult(
                    runner_mod.FAILED, 0,
                    error=f"{type(err).__name__}: {err}",
                    error_type=type(err).__name__,
                )
            if not loop.is_closed():
                try:
                    loop.call_soon_threadsafe(
                        self._segment_done, _job, _gen, result
                    )
                except RuntimeError:  # loop shut down under us
                    pass

        thread = threading.Thread(
            target=segment, name=f"simcov-serve-{job.id}", daemon=True
        )
        self._segment_threads.add(thread)
        self._segment_threads = {
            t for t in self._segment_threads if t.is_alive() or t is thread
        }
        thread.start()

    def _segment_done(self, job: Job, generation: int, result) -> None:
        if generation != job.generation:
            # An abandoned (hung, later revived) segment reporting back:
            # the server already rolled the job back and moved on.
            return
        self.scheduler.charge(
            job.spec.client, job_cost(job, steps=result.steps_run)
        )
        if job.state == CANCELLED:
            self.scheduler.release(job)
            self._job_terminal(job)
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
        elif result.outcome == runner_mod.COMPLETED:
            job.state = DONE
            job.finished_at = time.time()
            self._count("completed")
            # Durable result before the journal's "complete" record: a
            # crash between the two replays the job (at-least-once),
            # never declares a result it cannot serve.
            self.cache.put(job.cache_key, job.result)
            self._journal_append(job, {"type": "complete", "job": job.id})
            self.scheduler.release(job)
            self._job_terminal(job)
            if self.tracer:
                self.tracer.emit_span(
                    "job", job.started_at,
                    job.finished_at - job.started_at, cat="serving",
                    job=job.id, steps=job.steps,
                    preemptions=job.preemptions,
                )
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
        elif result.outcome == runner_mod.PREEMPTED:
            if result.checkpoint is not None:
                job.resume_checkpoint = result.checkpoint
            self._journal_append(job, {
                "type": "preempt", "job": job.id,
                "steps_done": job.steps_done,
                "preemptions": job.preemptions,
                "rows": list(job.rows),
                "checkpoint": job.resume_checkpoint,
            })
            if job.deadline_expired:
                # The watchdog preempted it to fail it cleanly: the
                # checkpoint above is preserved for a manual resume.
                self.scheduler.release(job)
                self._fail_job(
                    job,
                    f"DeadlineExceededError: deadline_s="
                    f"{job.spec.deadline_s} exceeded after "
                    f"{job.steps_done}/{job.steps} steps "
                    f"(checkpoint preserved)",
                    reason="deadline",
                )
            else:
                job.state = QUEUED
                self.scheduler.release(job, requeue=True)
                if self.tracer:
                    self.tracer.gauge(
                        "serve:queue_depth", len(self.scheduler.queue),
                        cat="serving",
                    )
        else:
            self.scheduler.release(job)
            self._handle_failure(job, result)
        self._wake.set()
        self._maybe_compact()
        self._maybe_finish_drain()

    def _job_terminal(self, job: Job) -> None:
        """Bookkeeping shared by every terminal transition."""
        self._inflight.pop(job.cache_key, None)
        client = job.spec.client
        if client in self._client_active:
            remaining = self._client_active[client] - 1
            if remaining <= 0:
                self._client_active.pop(client, None)
            else:
                self._client_active[client] = remaining

    def _fail_job(self, job: Job, error: str, *, reason: str = "error",
                  journal: bool = True) -> None:
        """Terminal failure: state, counters, journal, events (loop
        thread).  The job must already be off queue and running set."""
        job.state = FAILED
        job.error = error
        job.finished_at = time.time()
        self._count("failed")
        if reason == "deadline":
            self._count("deadline_expired")
        if journal:
            self._journal_append(job, {
                "type": "fail", "job": job.id, "error": error,
                "incidents": [
                    i.to_json() if hasattr(i, "to_json") else dict(i)
                    for i in job.incidents
                ],
            })
        self._job_terminal(job)
        self._publish(job, sse_frame("error", job.summary()))
        self._finish_events(job)

    def _handle_failure(self, job: Job, result) -> None:
        """A segment failed: classify, record the incident, and either
        park the job for a backed-off retry or fail it for good."""
        policy = self.retry_policy
        index = len(job.incidents) + 1
        retryable = (
            result.classification == RETRYABLE
            and index <= policy.max_restarts
        )
        backoff = policy.backoff_seconds(index) if retryable else 0.0
        message = (result.error or "unknown error").splitlines()[0]
        incident = JobIncident(
            index=index,
            step=result.restored_step + result.steps_run,
            error_type=result.error_type or "Exception",
            message=message,
            classification=result.classification,
            restored_step=result.restored_step,
            steps_replayed=result.steps_run,
            backoff_seconds=backoff,
        )
        job.incidents.append(incident)
        self._journal_append(job, {
            "type": "retry", "job": job.id, "incident": incident.to_json(),
        })
        if self.tracer:
            # The same cat="resilience" shape the dist supervisor emits,
            # so `trace report` renders serve incidents in its table.
            self.tracer.counter(
                "restarts", 1, cat="resilience", step=incident.step
            )
            self.tracer.counter(
                "steps_replayed", incident.steps_replayed,
                cat="resilience", step=incident.step,
            )
            self.tracer.emit_span(
                "recovery", time.time(), backoff, cat="resilience",
                step=incident.step, error=incident.error_type,
                job=job.id, restored_step=incident.restored_step,
                steps_replayed=incident.steps_replayed,
            )
        if not retryable:
            if result.classification == PERMANENT:
                error = (
                    f"{result.error} (permanent failure, not retried)\n"
                    f"incident log:\n{format_incident_log(job.incidents)}"
                )
            else:
                error = (
                    f"RestartsExhaustedError: giving up after "
                    f"{policy.max_restarts} restart"
                    f"{'s' if policy.max_restarts != 1 else ''}: "
                    f"{message}\n"
                    f"incident log:\n{format_incident_log(job.incidents)}"
                )
            self._fail_job(job, error)
            return
        self._count("retries")
        job.state = RETRYING
        self._publish(job, sse_frame("retrying", {
            "job": job.id,
            "attempt": index + 1,
            "backoff_seconds": backoff,
            "incident": incident.to_json(),
        }))
        if backoff > 0:
            self._loop.call_later(backoff, self._requeue_retry, job)
        else:
            self._requeue_retry(job)

    def _requeue_retry(self, job: Job) -> None:
        """Backoff elapsed: put the job back in the queue (unless it was
        cancelled or deadline-failed while parked)."""
        if job.state != RETRYING:
            return
        job.state = QUEUED
        self.scheduler.submit(job)
        self._publish(job, sse_frame("state", job.summary()))
        if self._wake is not None:
            self._wake.set()

    # -- watchdog --------------------------------------------------------------

    async def _watchdog_loop(self) -> None:
        """Deadline + hung-worker enforcement, one scan per interval."""
        while True:
            await asyncio.sleep(self.watchdog_interval_s)
            try:
                self._scan_deadlines()
                self._scan_hangs()
            except Exception:  # pragma: no cover - watchdog must survive
                import traceback

                traceback.print_exc()

    def _scan_deadlines(self) -> None:
        now = time.time()
        for job in list(self.jobs.values()):
            deadline = job.spec.deadline_s
            if deadline is None or job.state not in ACTIVE_STATES:
                continue
            if now - job.submitted_at <= deadline:
                continue
            if job.state == RUNNING:
                if not job.deadline_expired:
                    # Preempt-then-fail: the segment checkpoints at the
                    # next step boundary and _segment_done converts the
                    # requeue into a clean deadline failure.
                    job.deadline_expired = True
                    job.preempt_requested = True
                    hook = job.preempt_hook
                    if hook is not None:
                        job.preempt_requested = False
                        hook()
                continue
            # Queued / parked-in-backoff: fail immediately.
            if job.id in self.scheduler.queue:
                self.scheduler.queue.remove(job.id)
            self._fail_job(
                job,
                f"DeadlineExceededError: deadline_s={deadline} exceeded "
                f"while {job.state} after {job.steps_done}/{job.steps} "
                f"steps",
                reason="deadline",
            )

    def _scan_hangs(self) -> None:
        if self.hang_timeout_s is None:
            return
        now = time.monotonic()
        for job in list(self.scheduler.running.values()):
            beat = job.last_heartbeat
            if beat is None or now - beat <= self.hang_timeout_s:
                continue
            # Abandon the segment: bump the generation (the stale thread
            # becomes a no-op), roll back to the segment start, free the
            # slot, and run the failure through the normal retry path.
            self._count("hung_workers")
            job.generation += 1
            job.preempt_hook = None
            stalled_at = job.steps_done
            job.steps_done = job.segment_start_steps
            del job.rows[job.segment_start_rows:]
            self.scheduler.release(job)
            self._handle_failure(job, runner_mod.SegmentResult(
                runner_mod.FAILED,
                stalled_at - job.segment_start_steps,
                error=(
                    f"WorkerHangError: no step heartbeat for "
                    f"{self.hang_timeout_s:.1f}s at step {stalled_at}"
                ),
                error_type="WorkerHangError",
                classification=RETRYABLE,
                restored_step=job.segment_start_steps,
            ))
            self._wake.set()

    # -- graceful drain --------------------------------------------------------

    def drain(self) -> None:
        """Thread/signal-safe graceful-drain trigger (the SIGTERM hook):
        stop admitting, checkpoint-preempt running jobs, flush the
        journal, then stop the server cleanly."""
        self._draining = True
        loop = self._loop
        if loop is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(self._drain_step)
            except RuntimeError:  # pragma: no cover - loop closing
                pass

    def _drain_step(self) -> None:
        for job in list(self.scheduler.running.values()):
            if not job.preemptible:
                continue  # ensembles run to completion
            job.preempt_requested = True
            hook = job.preempt_hook
            if hook is not None:
                job.preempt_requested = False
                hook()
        self._maybe_finish_drain()

    def _maybe_finish_drain(self) -> None:
        if not self._draining or self._drain_done:
            return
        if self.scheduler.running:
            return
        self._drain_done = True
        if self.journal is not None:
            self.journal.sync()
        self.stop()

    def cancel(self, job: Job) -> bool:
        """Cancel a queued, retrying or running job (loop thread)."""
        if job.state not in ACTIVE_STATES:
            return False
        was_running = job.id in self.scheduler.running
        job.state = CANCELLED
        job.finished_at = time.time()
        self._count("cancelled")
        self._journal_append(job, {"type": "cancel", "job": job.id})
        if not was_running:
            # Queued or parked in retry backoff (not in the queue — the
            # call_later requeue will see CANCELLED and do nothing).
            if job.id in self.scheduler.queue:
                self.scheduler.queue.remove(job.id)
            self._job_terminal(job)
            self._publish(job, sse_frame("done", job.summary()))
            self._finish_events(job)
        else:
            job.preempt_requested = True
            hook = job.preempt_hook
            if hook is not None:
                job.preempt_requested = False
                hook()
            # The event stream closes when the segment reports back.
        return True

    # -- event streams ---------------------------------------------------------

    def _publish(self, job: Job, frame) -> None:
        log = self._events.get(job.id)
        if log is None or (log and log[-1] is _END):
            return
        # Stamp the frame with its log index so a reconnecting client
        # can resume exactly where its last stream broke (Last-Event-ID).
        log.append(f"id: {len(log)}\n{frame}")
        self._obs_counters["sse_frames"].inc()
        cond = self._conds.get(job.id)
        if cond is not None:
            asyncio.ensure_future(self._notify(cond))

    def _finish_events(self, job: Job) -> None:
        log = self._events.get(job.id)
        if log is not None and (not log or log[-1] is not _END):
            log.append(_END)
            cond = self._conds.get(job.id)
            if cond is not None:
                asyncio.ensure_future(self._notify(cond))

    @staticmethod
    async def _notify(cond: asyncio.Condition) -> None:
        async with cond:
            cond.notify_all()

    # -- metrics ---------------------------------------------------------------

    def _refresh_gauges(self) -> None:
        """Sample the lazily-scraped gauges (queue/pool/cache state is
        cheap to read but pointless to push on every mutation)."""
        g = self._obs_gauges
        g["queue_depth"].set(len(self.scheduler.queue))
        g["busy_workers"].set(len(self.scheduler.running))
        g["max_workers"].set(self.scheduler.max_workers)
        g["cache_entries"].set(len(self.cache))

    def metrics_text(self) -> str:
        """Prometheus exposition of the process registry."""
        self._refresh_gauges()
        return self.registry.render_prometheus()

    def health_payload(self) -> dict:
        """Liveness: always 200 while the loop answers requests — a
        draining server is alive (don't restart it mid-drain)."""
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "ok": True,
            "status": "draining" if self._draining else "serving",
            "draining": self._draining,
            "scheduler": {
                "queue_depth": len(self.scheduler.queue),
                "busy_workers": len(self.scheduler.running),
                "max_workers": self.scheduler.max_workers,
            },
            "jobs": states,
            "uptime_seconds": (
                time.time() - self._started_wall
                if self._started_wall is not None else 0.0
            ),
        }

    def readiness_payload(self) -> tuple[int, dict]:
        """Readiness: 503 while draining or after a failed journal
        replay — a load balancer stops routing, liveness stays green."""
        if self._replay_error is not None:
            return 503, {
                "ready": False,
                "reason": "journal_replay_failed",
                "detail": self._replay_error,
            }
        if self._draining:
            return 503, {"ready": False, "reason": "draining"}
        return 200, {"ready": True}

    def metrics_payload(self) -> dict:
        self._refresh_gauges()
        waits = sorted(self.wait_seconds)

        def pct(p):
            if not waits:
                return 0.0
            return waits[min(len(waits) - 1, int(p * len(waits)))]

        submitted = self.metrics["submitted"]
        free = self.metrics["cache_hits"] + self.metrics["coalesced"]
        return {
            **self.metrics,
            "queue_depth": len(self.scheduler.queue),
            "busy_workers": len(self.scheduler.running),
            "max_workers": self.scheduler.max_workers,
            "cache_entries": len(self.cache),
            "cache_hit_rate": free / submitted if submitted else 0.0,
            "wait_p50_seconds": pct(0.50),
            "wait_p99_seconds": pct(0.99),
            "fair_share_spent": dict(self.scheduler.queue.spent),
        }

    # -- HTTP ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            await self._route(method, path, headers, body, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, method, path, headers, body, writer) -> None:
        parts = [p for p in path.split("?")[0].split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            return await _respond(writer, 200, self.health_payload())
        if method == "GET" and parts == ["readyz"]:
            status, payload = self.readiness_payload()
            return await _respond(writer, status, payload)
        if method == "GET" and parts == ["metrics"]:
            return await _respond_text(
                writer, 200, self.metrics_text(), _PROM_CONTENT_TYPE
            )
        if method == "GET" and parts == ["metrics.json"]:
            return await _respond(writer, 200, self.metrics_payload())
        if method == "POST" and parts == ["jobs"]:
            try:
                spec = JobSpec.from_json(json.loads(body or b"{}"))
                job, how = self.submit(spec)
            except (SpecError, json.JSONDecodeError) as err:
                return await _respond(writer, 400, {"error": str(err)})
            except AdmissionError as err:
                return await _respond(
                    writer, err.status, err.payload(),
                    headers={"Retry-After": f"{err.retry_after:g}"},
                )
            status = 200 if how in ("hit", "join") else 201
            return await _respond(
                writer, status, {"cache": how, "job": job.summary()}
            )
        if method == "GET" and parts == ["jobs"]:
            return await _respond(
                writer, 200,
                {"jobs": [j.summary() for j in self.jobs.values()]},
            )
        if len(parts) >= 2 and parts[0] == "jobs":
            job = self.jobs.get(parts[1])
            if job is None:
                return await _respond(
                    writer, 404, {"error": f"no such job {parts[1]!r}"}
                )
            tail = parts[2:]
            if method == "GET" and not tail:
                return await _respond(writer, 200, job.summary())
            if method == "GET" and tail == ["result"]:
                if job.state != DONE:
                    return await _respond(
                        writer, 409,
                        {"error": f"job is {job.state}", "job": job.summary()},
                    )
                return await _respond(
                    writer, 200, {"job": job.summary(), "result": job.result}
                )
            if method == "GET" and tail == ["events"]:
                start = 0
                last_id = headers.get("last-event-id")
                if last_id is not None:
                    try:
                        start = int(last_id) + 1
                    except ValueError:
                        start = 0
                return await self._stream_events(job, writer, start=start)
            if method == "POST" and tail == ["cancel"]:
                ok = self.cancel(job)
                return await _respond(
                    writer, 200 if ok else 409, job.summary()
                )
        await _respond(
            writer, 404, {"error": f"no route {method} {path}"}
        )

    async def _stream_events(self, job: Job, writer, start: int = 0) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: text/event-stream\r\n"
            b"Cache-Control: no-cache\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        self._obs_counters["sse_streams"].inc()
        log = self._events[job.id]
        cond = self._conds[job.id]
        # Last-Event-ID resume: skip frames the client already has (the
        # _END sentinel never gets an id, so start can at most land on it).
        sent = max(0, min(start, len(log)))
        if sent and log[sent - 1:sent] == [_END]:
            sent -= 1
        while not writer.is_closing():
            while sent < len(log):
                frame = log[sent]
                sent += 1
                if frame is _END:
                    return
                writer.write(frame.encode())
            await writer.drain()
            async with cond:
                await cond.wait_for(
                    lambda: len(log) > sent or writer.is_closing()
                )


# -- HTTP plumbing -------------------------------------------------------------

async def _read_request(reader):
    """Parse one HTTP/1.1 request; returns
    ``(method, path, headers, body)`` (header names lower-cased) or None."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, path, _version = line.decode("latin1").split()
    except ValueError:
        return None
    headers: dict[str, str] = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin1").partition(":")
        headers[name.strip().lower()] = value.strip()
    content_length = int(headers.get("content-length", 0))
    body = await reader.readexactly(content_length) if content_length else b""
    return method.upper(), path, headers, body


_STATUS_TEXT = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    409: "Conflict", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


async def _respond(writer, status: int, payload: dict,
                   headers: dict | None = None) -> None:
    body = json.dumps(payload).encode()
    extra = "".join(
        f"{name}: {value}\r\n" for name, value in (headers or {}).items()
    )
    writer.write(
        (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        ).encode()
    )
    writer.write(body)
    await writer.drain()


async def _respond_text(writer, status: int, text: str,
                        content_type: str = "text/plain") -> None:
    body = text.encode()
    writer.write(
        (
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode()
    )
    writer.write(body)
    await writer.drain()


class BackgroundServer:
    """Run a :class:`ServeApp` on a daemon thread with its own loop.

    The synchronous embedding used by tests, the load harness's
    reference runs and anything else that wants a live server without
    owning an event loop::

        with BackgroundServer(ServeApp(port=0)) as app:
            client = ServeClient(port=app.port)
            ...
    """

    def __init__(self, app: ServeApp, startup_timeout: float = 10.0):
        self.app = app
        self.startup_timeout = startup_timeout
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="simcov-serve-loop", daemon=True
        )

    def _run(self) -> None:
        async def main():
            await self.app.start()
            self._ready.set()
            await self.app.serve_forever()

        try:
            asyncio.run(main())
        finally:
            self._ready.set()  # unblock __enter__ on startup failure

    def __enter__(self) -> ServeApp:
        self._thread.start()
        if not self._ready.wait(self.startup_timeout):  # pragma: no cover
            raise RuntimeError("serve app did not start in time")
        if self.app._loop is None:  # pragma: no cover - startup failed
            raise RuntimeError("serve app failed to start")
        return self.app

    def __exit__(self, *exc) -> None:
        self.app.abort()
        self._thread.join(timeout=30)
