"""Serve-tier fault injection (chaos testing vocabulary).

Mirrors the dist runtime's ``FAULT_MODES`` (:mod:`repro.dist.worker`)
at job granularity: a :class:`ServeFaultSpec` names the cold job it
targets (by cold-submission index — the Nth cache-miss job the server
schedules), the step at which to fire, the mode, and how many times the
fault re-fires across retries (``repeat``; the default 1 means the
first retry runs clean, which is what makes retried results provably
bitwise identical to fault-free runs).

Modes:

- ``worker_crash`` — the worker thread raises
  :class:`InjectedWorkerCrash` at the step boundary (classified
  retryable: the bounded-backoff retry path);
- ``worker_hang`` — the worker thread blocks on the spec's ``release``
  event (the hung-worker detector's prey; tests can set the event to
  unblock the stale thread);
- ``worker_slow`` — the worker thread sleeps ``seconds`` at the step
  boundary (deadline-watchdog fodder);
- ``server_kill`` — the whole server process exits with ``os._exit``
  (SIGKILL semantics: no cleanup, no journal flush beyond what already
  hit the OS) — only meaningful for subprocess servers;
- ``journal_torn`` — a deliberately partial journal frame is written,
  then the process dies as for ``server_kill``: the restart must
  truncate the torn tail and recover.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

#: Supported fault modes.
SERVE_FAULT_MODES = (
    "worker_crash", "worker_hang", "worker_slow", "server_kill",
    "journal_torn",
)

#: Exit status for the process-killing modes (mirrors SIGKILL's 128+9).
KILL_EXIT_STATUS = 137


class InjectedWorkerCrash(RuntimeError):
    """The fault a ``worker_crash`` injection raises (retryable)."""


@dataclass
class ServeFaultSpec:
    """One injected fault, ``job:step:mode[:repeat]`` on the CLI."""

    #: Cold-submission index of the target job (0 = first cache miss).
    job: int
    #: Fires when the job's ``steps_done`` reaches this step.
    step: int
    mode: str
    #: Total firings across retries (1 = first retry runs clean).
    repeat: int = 1
    #: ``worker_slow`` sleep seconds.
    seconds: float = 0.5
    #: Times fired so far (mutated by :func:`apply_fault`).
    fired: int = 0
    #: ``worker_hang`` blocks on this until a test releases it.
    release: threading.Event = field(default_factory=threading.Event)

    def __post_init__(self):
        if self.mode not in SERVE_FAULT_MODES:
            raise ValueError(
                f"unknown serve fault mode {self.mode!r}; "
                f"choose from {SERVE_FAULT_MODES}"
            )
        if self.job < 0 or self.step < 0 or self.repeat < 1:
            raise ValueError("job/step must be >= 0 and repeat >= 1")

    def should_fire(self, steps_done: int) -> bool:
        return steps_done == self.step and self.fired < self.repeat


def parse_serve_fault(text: str) -> ServeFaultSpec:
    """Parse the CLI form ``job:step:mode[:repeat]``."""
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"serve fault must be job:step:mode[:repeat], got {text!r}"
        )
    repeat = int(parts[3]) if len(parts) == 4 else 1
    return ServeFaultSpec(
        job=int(parts[0]), step=int(parts[1]), mode=parts[2], repeat=repeat
    )


def apply_fault(fault: ServeFaultSpec, job, journal=None) -> None:
    """Fire ``fault`` if due at the job's current step (worker thread).

    Called from the runner's step listener right after ``steps_done``
    advances; raising here fails the segment through its normal
    exception path.
    """
    if not fault.should_fire(job.steps_done):
        return
    fault.fired += 1
    if fault.mode == "worker_crash":
        raise InjectedWorkerCrash(
            f"injected worker_crash in job {job.id} at step {job.steps_done}"
        )
    if fault.mode == "worker_hang":
        # Parked until a test releases it (or forever — the daemon
        # thread dies with the process).  The hung-worker detector must
        # reclaim the slot without this thread's cooperation.
        fault.release.wait()
        raise InjectedWorkerCrash(
            f"injected worker_hang in job {job.id} released at step "
            f"{job.steps_done}"
        )
    if fault.mode == "worker_slow":
        time.sleep(fault.seconds)
        return
    if fault.mode == "journal_torn" and journal is not None:
        # Racing the loop thread's own appends is the point: the bytes a
        # crash mid-append leaves behind are exactly this partial frame.
        journal.append_torn(
            {"type": "fail", "job": job.id, "error": "injected torn record"}
        )
    # server_kill and journal_torn both end here: die without cleanup.
    os._exit(KILL_EXIT_STATUS)
