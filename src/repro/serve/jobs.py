"""Job model: what a client submits and what the server tracks.

A :class:`JobSpec` is the wire-level request — a named run config plus
parameter overrides, seed, steps, backend and priority.  It resolves to
concrete :class:`~repro.core.params.SimCovParams` through the run-config
registry, and to a **canonical result-cache key** through the typed
params codec (:func:`repro.io.checkpoint.encode_params`): two requests
share a key iff every parameter field, the seed set and the step count
agree.  The backend is deliberately *not* part of the key — every
backend (sequential, cpu, gpu, dist at any rank count, ensemble members)
produces bitwise-identical stats for the same ``(params, seed, steps)``,
which is what makes the result cache correct rather than approximate
(DESIGN.md §4e).

A :class:`Job` is the server-side record: spec + resolved params, the
lifecycle state machine, accumulated per-step stats rows, the SSE event
log every subscriber replays, and — for preempted jobs — the shadow
snapshot the resumed segment restores from.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field, fields as dc_fields

import numpy as np

from repro.core.params import SimCovParams
from repro.io.checkpoint import encode_params

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
PREEMPTED = "preempted"  # transient: snapshotted, back in the queue
RETRYING = "retrying"  # transient: failed attempt, parked in backoff
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States from which a job can still produce a result (in-flight dedup
#: joins attach to jobs in these states).
ACTIVE_STATES = (QUEUED, RUNNING, PREEMPTED, RETRYING)

#: Backends a job may request.  ``ensemble`` runs the batched vectorized
#: backend (``ensemble`` member count in the spec); the rest map to the
#: ``simcov-repro run`` drivers.
BACKENDS = ("sequential", "cpu", "gpu", "dist", "ensemble")

#: Priority range, inclusive; higher runs earlier (and may preempt).
MIN_PRIORITY, MAX_PRIORITY = 0, 9


class SpecError(ValueError):
    """A submitted job spec is malformed (HTTP 400)."""


@dataclass(frozen=True)
class JobSpec:
    """A validated submission request."""

    config: str | None = None
    overrides: dict = field(default_factory=dict)
    dim: tuple[int, ...] | None = None
    steps: int | None = None
    seed: int = 0
    backend: str = "sequential"
    ensemble: int | None = None
    nranks: int = 2
    priority: int = 0
    client: str = "anonymous"
    #: Wall-seconds budget from submission; the server's watchdog
    #: preempts-then-fails the job once exceeded (None = no deadline).
    #: Scheduling metadata like priority/client: NOT part of the cache
    #: signature — the result of a run does not depend on its deadline.
    deadline_s: float | None = None

    @classmethod
    def from_json(cls, raw: dict) -> "JobSpec":
        """Build from a request body, rejecting unknown/invalid fields."""
        if not isinstance(raw, dict):
            raise SpecError("job spec must be a JSON object")
        known = {f.name for f in dc_fields(cls)}
        unknown = set(raw) - known
        if unknown:
            raise SpecError(
                f"unknown job fields {sorted(unknown)}; known: {sorted(known)}"
            )
        spec = cls(
            config=raw.get("config"),
            overrides=dict(raw.get("overrides") or {}),
            dim=tuple(raw["dim"]) if raw.get("dim") else None,
            steps=None if raw.get("steps") is None else int(raw["steps"]),
            seed=int(raw.get("seed", 0)),
            backend=str(raw.get("backend", "sequential")),
            ensemble=(
                None if raw.get("ensemble") is None else int(raw["ensemble"])
            ),
            nranks=int(raw.get("nranks", 2)),
            priority=int(raw.get("priority", 0)),
            client=str(raw.get("client", "anonymous")),
            deadline_s=(
                None if raw.get("deadline_s") is None
                else float(raw["deadline_s"])
            ),
        )
        spec.validate()
        return spec

    def validate(self) -> None:
        if self.backend not in BACKENDS:
            raise SpecError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if not MIN_PRIORITY <= self.priority <= MAX_PRIORITY:
            raise SpecError(
                f"priority must be in [{MIN_PRIORITY}, {MAX_PRIORITY}], "
                f"got {self.priority}"
            )
        if self.steps is not None and self.steps < 1:
            raise SpecError(f"steps must be >= 1, got {self.steps}")
        if self.ensemble is not None:
            if self.backend != "ensemble":
                raise SpecError(
                    "'ensemble' member count requires backend='ensemble'"
                )
            if self.ensemble < 1:
                raise SpecError(
                    f"ensemble must be >= 1, got {self.ensemble}"
                )
        if self.backend == "ensemble" and self.ensemble is None:
            raise SpecError("backend='ensemble' needs an 'ensemble' count")
        if self.backend in ("cpu", "gpu", "dist") and self.nranks < 1:
            raise SpecError(f"nranks must be >= 1, got {self.nranks}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise SpecError(
                f"deadline_s must be > 0, got {self.deadline_s}"
            )

    # -- resolution ----------------------------------------------------------

    def resolve_params(self) -> tuple[SimCovParams, int]:
        """The concrete ``(params, steps)`` this spec runs.

        ``params.num_steps`` is normalized to the resolved step count so
        the cache key never distinguishes a spec that sets ``steps``
        from one that inherits the same value from its config.
        """
        from repro.experiments.configs import get_run_config

        config = None
        if self.config is not None:
            try:
                config = get_run_config(self.config)
            except ValueError as err:
                raise SpecError(str(err)) from None
        dim = self.dim or (config.dim if config else (64, 64))
        steps = self.steps if self.steps is not None else (
            config.steps if config else 50
        )
        num_infections = config.num_infections if config else 2
        params = SimCovParams.fast_test(
            dim=dim, num_infections=num_infections, num_steps=steps,
        )
        if self.overrides:
            params = apply_overrides(params, self.overrides)
        if params.num_steps != steps:
            # An explicit num_steps override wins over config/steps.
            steps = params.num_steps
        return params, steps

    def seeds(self) -> tuple[int, ...]:
        """The member seed set (one seed unless an ensemble)."""
        if self.backend == "ensemble":
            return tuple(range(self.seed, self.seed + self.ensemble))
        return (self.seed,)

    def cache_signature(self) -> str:
        """Canonical string for the *resolution* of this spec: every
        field that feeds ``resolve_params``/``result_cache_key`` and
        nothing else (client and priority change scheduling, not the
        result).  The server memoizes resolution on this, so a thousand
        identical submits pay for one params construction, not one each.
        """
        return json.dumps(
            [
                self.config, sorted(self.overrides.items()),
                self.dim, self.steps, self.seed, self.backend,
                self.ensemble,
            ],
            default=str,
        )

    def to_json(self) -> dict:
        return {
            "config": self.config,
            "overrides": dict(self.overrides),
            "dim": list(self.dim) if self.dim else None,
            "steps": self.steps,
            "seed": self.seed,
            "backend": self.backend,
            "ensemble": self.ensemble,
            "nranks": self.nranks,
            "priority": self.priority,
            "client": self.client,
            "deadline_s": self.deadline_s,
        }


def apply_overrides(params: SimCovParams, overrides: dict) -> SimCovParams:
    """Apply client parameter overrides with declared-type coercion.

    Same coercion rule as :func:`repro.engine.ensemble.expand_sweep`:
    integer fields round, float fields cast; unknown names raise a
    :class:`SpecError` listing the valid fields.
    """
    valid = {f.name: getattr(params, f.name) for f in dc_fields(params)}
    converted = {}
    for key, value in overrides.items():
        if key not in valid:
            raise SpecError(
                f"unknown override {key!r}; valid: {', '.join(sorted(valid))}"
            )
        current = valid[key]
        if key == "dim":
            converted[key] = tuple(int(v) for v in value)
        elif isinstance(current, bool):  # no bool params today; guard anyway
            converted[key] = bool(value)
        elif isinstance(current, int):
            converted[key] = int(round(float(value)))
        elif isinstance(current, float):
            converted[key] = float(value)
        elif current is None:  # optional int fields (antiviral_start, ...)
            converted[key] = None if value is None else int(round(float(value)))
        else:  # pragma: no cover - no other field types exist
            converted[key] = value
    try:
        return params.with_(**converted)
    except (ValueError, TypeError) as err:
        raise SpecError(f"invalid override: {err}") from None


def result_cache_key(params: SimCovParams, seeds, steps: int) -> str:
    """The canonical cache key of a deterministic run.

    Built on the typed field codec (:func:`encode_params`, format v2):
    every params field enters through its declared type, so numpy scalars
    and equal-valued ints/floats from different sources collapse to one
    key, and any single-field change produces a different key (the
    codec's JSON is sorted and exact).  Seeds and steps are appended
    explicitly; the executing backend is *not* keyed — bitwise
    determinism across backends is what makes the cache correct.
    """
    payload = json.dumps(
        {
            "params": encode_params(params),
            "seeds": [int(s) for s in np.atleast_1d(seeds)],
            "steps": int(steps),
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


_JOB_SEQ = itertools.count()


@dataclass
class Job:
    """Server-side record of one submitted run."""

    id: str
    spec: JobSpec
    params: SimCovParams
    steps: int
    cache_key: str
    seq: int = field(default_factory=lambda: next(_JOB_SEQ))
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    #: Steps completed across all segments (resumes continue from here).
    steps_done: int = 0
    #: Times this job was preempted (snapshot + requeue).
    preemptions: int = 0
    #: Whether the result came from the cache ("hit"), an in-flight join
    #: ("join"), or a fresh run ("miss").
    cache: str = "miss"
    #: Per-step stats rows accumulated across segments (solo backends) or
    #: per-member row lists (ensemble).
    result: dict | None = None
    error: str | None = None
    #: In-memory shadow snapshot a resumed segment restores from.
    snapshot: dict | None = None
    #: Clients subscribed/attached (join dedup bumps this).
    attached: int = 1
    #: Per-step stats rows accumulated across *all* segments (a resumed
    #: sim's own series only holds the final segment's steps).
    rows: list = field(default_factory=list)
    #: While a segment runs: the live sim's ``request_preempt`` bound
    #: method (installed/cleared by the runner; called by the scheduler).
    preempt_hook: object = None
    #: Set by the scheduler when it wants this job preempted but the
    #: segment has not installed its hook yet (the runner re-checks this
    #: right after installing, closing the startup race).
    preempt_requested: bool = False
    #: Per-attempt failure diagnostics (repro.resilience.JobIncident).
    incidents: list = field(default_factory=list)
    #: On-disk checkpoint to resume from when no in-memory snapshot
    #: exists (journal replay after a server restart).
    resume_checkpoint: str | None = None
    #: The deadline watchdog preempted this job; the returning segment
    #: is converted to a deadline failure instead of a requeue.
    deadline_expired: bool = False
    #: ``time.monotonic()`` of the segment's last step boundary (the
    #: hung-worker detector's signal).
    last_heartbeat: float | None = None
    #: Bumped whenever the server abandons a segment (hang reclaim);
    #: stale worker threads compare their captured generation and
    #: become no-ops instead of corrupting job state.
    generation: int = 0
    #: Optional ServeFaultSpec targeted at this job (chaos testing).
    fault: object = None
    #: Whether transitions are journaled (cold jobs under --journal-dir).
    journaled: bool = False
    #: ``steps_done``/``len(rows)`` at the current segment's start — the
    #: rollback point when the hang detector abandons the segment.
    segment_start_steps: int = 0
    segment_start_rows: int = 0

    def summary(self) -> dict:
        """The status JSON served for this job."""
        return {
            "id": self.id,
            "state": self.state,
            "cache": self.cache,
            "priority": self.spec.priority,
            "client": self.spec.client,
            "backend": self.spec.backend,
            "steps": self.steps,
            "steps_done": self.steps_done,
            "preemptions": self.preemptions,
            "attached": self.attached,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "deadline_s": self.spec.deadline_s,
            "attempts": len(self.incidents) + 1,
            "incidents": [
                i.to_json() if hasattr(i, "to_json") else dict(i)
                for i in self.incidents
            ],
            "spec": self.spec.to_json(),
        }

    @property
    def preemptible(self) -> bool:
        """Ensemble batches are throughput jobs with per-member scalar
        state the solo snapshot shape does not capture — they run to
        completion; every solo backend preempts at step boundaries."""
        return self.spec.backend != "ensemble"


def stats_rows(series, count: int | None = None) -> list[dict]:
    """Plain-JSON rows of a (Member)TimeSeries — the cached/serving form.

    Floats survive JSON exactly (``repr`` shortest round-trip), so rows
    from a cache hit compare bitwise-equal to rows from a cold run.
    """
    n = len(series) if count is None else count
    return [stats_row(series[i]) for i in range(n)]


def stats_row(stats) -> dict:
    """One StepStats as a plain-JSON dict (exact float round-trip)."""
    return {f.name: getattr(stats, f.name) for f in dc_fields(stats)}
