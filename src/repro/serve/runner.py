"""Job execution: one segment of one job, in a worker thread.

A *segment* is the unit the scheduler dispatches: a fresh job runs its
first segment from step 0; a preempted job's next segment restores the
shadow snapshot and continues — bitwise identically, because the
snapshot is taken at a step boundary and randomness is a pure function
of ``(seed, step, voxel)`` (the same argument as
:mod:`repro.dist.resilient` recovery).

The runner is synchronous and asyncio-free by design: the server calls
:func:`run_segment` through its executor and bridges the ``publish``
callback into each job's SSE event log with
``loop.call_soon_threadsafe``.  Per-step stats stream through the
engine's step listeners; telemetry spans stream through an
:class:`~repro.telemetry.sinks.SseSink` on the job's tracer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.io.checkpoint import (
    auto_checkpoint_path,
    restore_state,
    rotate_checkpoints,
    save_checkpoint,
    snapshot_state,
)
from repro.serve.jobs import Job, stats_row, stats_rows
from repro.telemetry.sinks import SseSink, sse_frame
from repro.telemetry.tracer import Tracer

#: Segment outcomes the server's dispatch loop switches on.
COMPLETED, PREEMPTED, FAILED = "completed", "preempted", "failed"


@dataclass
class SegmentResult:
    """What one executed segment reports back to the scheduler."""

    outcome: str
    steps_run: int
    error: str | None = None


def build_sim(job: Job, tracer=None):
    """Construct the requested backend's driver for this job."""
    spec = job.spec
    if spec.backend == "ensemble":
        from repro.engine.ensemble import EnsembleSimCov

        return EnsembleSimCov(
            job.params,
            seeds=np.array(spec.seeds(), dtype=np.int64),
            tracer=tracer,
        )
    if spec.backend == "sequential":
        from repro.core.model import SequentialSimCov

        return SequentialSimCov(job.params, seed=spec.seed, tracer=tracer)
    if spec.backend == "cpu":
        from repro.simcov_cpu.simulation import SimCovCPU

        return SimCovCPU(
            job.params, nranks=spec.nranks, seed=spec.seed, tracer=tracer
        )
    if spec.backend == "gpu":
        from repro.simcov_gpu.simulation import SimCovGPU

        return SimCovGPU(
            job.params, num_devices=spec.nranks, seed=spec.seed, tracer=tracer
        )
    from repro.dist import DistSimCov

    return DistSimCov(
        job.params, nranks=spec.nranks, seed=spec.seed, tracer=tracer
    )


def job_checkpoint_dir(root: str, job: Job) -> str:
    """Per-job shadow-checkpoint subdirectory.

    Collision safety under concurrency: two jobs snapshotting at the
    same moment write (and rotate) in disjoint directories, so
    :func:`rotate_checkpoints`'s delete sweep can never reap another
    job's files.
    """
    return os.path.join(root, job.id)


def run_segment(
    job: Job,
    publish,
    *,
    checkpoint_root: str | None = None,
    keep_checkpoints: int = 2,
    sse_categories=SseSink.DEFAULT_CATEGORIES,
) -> SegmentResult:
    """Execute one segment of ``job`` (thread entry point).

    ``publish(frame)`` receives ready-to-send SSE frame strings: one
    ``step`` frame per completed step, ``telemetry`` frames for the
    tracer's step spans, and a ``preempted`` frame when the segment is
    cut short.  The job's bookkeeping fields (``steps_done``,
    ``preemptions``, ``snapshot``, ``result``) are updated in place; the
    caller owns the state machine.
    """
    sse_sink = SseSink(publish, categories=sse_categories)
    tracer = Tracer(backend=job.spec.backend, sinks=[sse_sink])
    sim = None
    try:
        sim = build_sim(job, tracer=tracer)
        if job.snapshot is not None:
            restore_state(sim, job.snapshot)
        start_step = job.steps_done

        def on_step(stats):
            job.steps_done += 1
            job.rows.append(stats_row(stats))
            publish(sse_frame("step", _step_payload(job, stats)))

        sim.add_step_listener(on_step)
        job.preempt_hook = sim.request_preempt
        if job.preempt_requested:
            # The scheduler asked before the hook existed (this segment
            # was still constructing its sim): honor it now.
            job.preempt_requested = False
            sim.request_preempt()
        remaining = job.steps - start_step
        if remaining > 0:
            sim.run(remaining)
        if remaining > 0 and sim.preempted:
            job.preemptions += 1
            job.snapshot = snapshot_state(sim)
            if checkpoint_root is not None:
                _mirror_snapshot(
                    checkpoint_root, job, sim, keep=keep_checkpoints
                )
            publish(
                sse_frame(
                    "preempted",
                    {
                        "job": job.id,
                        "at_step": job.steps_done,
                        "preemptions": job.preemptions,
                    },
                )
            )
            return SegmentResult(PREEMPTED, job.steps_done - start_step)
        job.result = _result_payload(job, sim)
        return SegmentResult(COMPLETED, job.steps_done - start_step)
    except Exception as err:  # job failure must never kill the server
        return SegmentResult(
            FAILED, 0, error=f"{type(err).__name__}: {err}"
        )
    finally:
        job.preempt_hook = None
        if sim is not None and hasattr(sim, "close"):
            sim.close()
        tracer.close()
        if sse_sink.dropped:
            # Category-filtered (not lost) events — surfaced so a stream
            # that looks sparse can be told apart from one that is.
            from repro.obs.registry import get_registry

            get_registry().counter(
                "simcov_serve_sse_filtered_events_total",
                "Telemetry events the SSE category filter withheld "
                "from job streams",
            ).inc(sse_sink.dropped)


def _step_payload(job: Job, stats) -> dict:
    return {
        "job": job.id,
        "step": stats.step,
        "healthy": stats.healthy,
        "incubating": stats.incubating,
        "expressing": stats.expressing,
        "apoptotic": stats.apoptotic,
        "dead": stats.dead,
        "tcells_tissue": stats.tcells_tissue,
        "virions_total": stats.virions_total,
        "steps_done": job.steps_done,
        "steps_total": job.steps,
    }


def _result_payload(job: Job, sim) -> dict:
    if job.spec.backend == "ensemble":
        return {
            "kind": "ensemble",
            "seeds": [int(s) for s in job.spec.seeds()],
            "members": [
                stats_rows(series) for series in sim.member_series
            ],
        }
    # job.rows, not sim.series: a resumed sim's series only holds the
    # final segment — the job accumulated every segment's rows in order.
    return {"kind": "solo", "seed": job.spec.seed, "rows": list(job.rows)}


def _mirror_snapshot(root: str, job: Job, sim, keep: int) -> None:
    """Persist the preemption snapshot under the job's own subdirectory
    (atomic tmp + ``os.replace`` via :func:`save_checkpoint`), rotated
    to the newest ``keep``."""
    directory = job_checkpoint_dir(root, job)
    save_checkpoint(auto_checkpoint_path(directory, sim.step_num), sim)
    rotate_checkpoints(directory, keep)
