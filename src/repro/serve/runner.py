"""Job execution: one segment of one job, in a worker thread.

A *segment* is the unit the scheduler dispatches: a fresh job runs its
first segment from step 0; a preempted job's next segment restores the
shadow snapshot and continues — bitwise identically, because the
snapshot is taken at a step boundary and randomness is a pure function
of ``(seed, step, voxel)`` (the same argument as
:mod:`repro.dist.resilient` recovery).

The runner is synchronous and asyncio-free by design: the server calls
:func:`run_segment` through its executor and bridges the ``publish``
callback into each job's SSE event log with
``loop.call_soon_threadsafe``.  Per-step stats stream through the
engine's step listeners; telemetry spans stream through an
:class:`~repro.telemetry.sinks.SseSink` on the job's tracer.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from repro.io.checkpoint import (
    auto_checkpoint_path,
    load_snapshot,
    restore_state,
    rotate_checkpoints,
    save_checkpoint,
    snapshot_state,
)
from repro.resilience import RETRYABLE, classify_exception
from repro.serve.faults import apply_fault
from repro.serve.jobs import Job, stats_row, stats_rows
from repro.telemetry.sinks import SseSink, sse_frame
from repro.telemetry.tracer import Tracer

#: Segment outcomes the server's dispatch loop switches on.
COMPLETED, PREEMPTED, FAILED = "completed", "preempted", "failed"


@dataclass
class SegmentResult:
    """What one executed segment reports back to the scheduler."""

    outcome: str
    steps_run: int
    error: str | None = None
    #: Exception class name of a FAILED segment.
    error_type: str | None = None
    #: Retryable/permanent classification of a FAILED segment.
    classification: str = RETRYABLE
    #: Step the job rolled back to on failure (retry resumes here).
    restored_step: int = 0
    #: On-disk checkpoint written by a PREEMPTED segment (journaling).
    checkpoint: str | None = None


def build_sim(job: Job, tracer=None):
    """Construct the requested backend's driver for this job."""
    spec = job.spec
    if spec.backend == "ensemble":
        from repro.engine.ensemble import EnsembleSimCov

        return EnsembleSimCov(
            job.params,
            seeds=np.array(spec.seeds(), dtype=np.int64),
            tracer=tracer,
        )
    if spec.backend == "sequential":
        from repro.core.model import SequentialSimCov

        return SequentialSimCov(job.params, seed=spec.seed, tracer=tracer)
    if spec.backend == "cpu":
        from repro.simcov_cpu.simulation import SimCovCPU

        return SimCovCPU(
            job.params, nranks=spec.nranks, seed=spec.seed, tracer=tracer
        )
    if spec.backend == "gpu":
        from repro.simcov_gpu.simulation import SimCovGPU

        return SimCovGPU(
            job.params, num_devices=spec.nranks, seed=spec.seed, tracer=tracer
        )
    from repro.dist import DistSimCov

    return DistSimCov(
        job.params, nranks=spec.nranks, seed=spec.seed, tracer=tracer
    )


def job_checkpoint_dir(root: str, job: Job) -> str:
    """Per-job shadow-checkpoint subdirectory.

    Collision safety under concurrency: two jobs snapshotting at the
    same moment write (and rotate) in disjoint directories, so
    :func:`rotate_checkpoints`'s delete sweep can never reap another
    job's files.
    """
    return os.path.join(root, job.id)


def run_segment(
    job: Job,
    publish,
    *,
    checkpoint_root: str | None = None,
    keep_checkpoints: int = 2,
    sse_categories=SseSink.DEFAULT_CATEGORIES,
    journal=None,
) -> SegmentResult:
    """Execute one segment of ``job`` (thread entry point).

    ``publish(frame)`` receives ready-to-send SSE frame strings: one
    ``step`` frame per completed step, ``telemetry`` frames for the
    tracer's step spans, and a ``preempted`` frame when the segment is
    cut short.  The job's bookkeeping fields (``steps_done``,
    ``preemptions``, ``snapshot``, ``result``) are updated in place; the
    caller owns the state machine.

    Crash-safety contract (DESIGN.md §4g): the generation captured at
    entry makes an *abandoned* segment (the hung-worker detector bumped
    ``job.generation`` and handed the job to a retry) harmless — its
    step listener and cleanup become no-ops instead of corrupting the
    replacement attempt's state.  A failed attempt rolls ``steps_done``
    and ``rows`` back to the segment's start, so the retry replays from
    the last checkpoint with nothing double-counted — which is what
    keeps retried results bitwise identical to fault-free runs.
    """
    sse_sink = SseSink(publish, categories=sse_categories)
    tracer = Tracer(backend=job.spec.backend, sinks=[sse_sink])
    sim = None
    generation = job.generation
    start_step = job.steps_done
    start_rows = len(job.rows)
    fault = job.fault
    try:
        sim = build_sim(job, tracer=tracer)
        if job.snapshot is not None:
            restore_state(sim, job.snapshot)
        elif job.resume_checkpoint is not None:
            # Journal-replayed job: the in-memory snapshot died with the
            # previous server process; the CRC-verified disk mirror is
            # the resume point.
            snapshot = load_snapshot(job.resume_checkpoint)
            restore_state(sim, snapshot)
            job.snapshot = snapshot
        job.last_heartbeat = time.monotonic()

        def on_step(stats):
            if job.generation != generation:
                # The server abandoned this segment (hang reclaim):
                # stop quietly at the next boundary, touch nothing.
                sim.request_preempt()
                return
            job.steps_done += 1
            job.last_heartbeat = time.monotonic()
            job.rows.append(stats_row(stats))
            if fault is not None:
                apply_fault(fault, job, journal=journal)
            publish(sse_frame("step", _step_payload(job, stats)))

        sim.add_step_listener(on_step)
        job.preempt_hook = sim.request_preempt
        if job.preempt_requested:
            # The scheduler asked before the hook existed (this segment
            # was still constructing its sim): honor it now.
            job.preempt_requested = False
            sim.request_preempt()
        remaining = job.steps - start_step
        if remaining > 0:
            sim.run(remaining)
        if job.generation != generation:
            return SegmentResult(PREEMPTED, 0)
        if remaining > 0 and sim.preempted:
            job.preemptions += 1
            job.snapshot = snapshot_state(sim)
            checkpoint = None
            if checkpoint_root is not None:
                checkpoint = _mirror_snapshot(
                    checkpoint_root, job, sim, keep=keep_checkpoints
                )
            publish(
                sse_frame(
                    "preempted",
                    {
                        "job": job.id,
                        "at_step": job.steps_done,
                        "preemptions": job.preemptions,
                    },
                )
            )
            return SegmentResult(
                PREEMPTED, job.steps_done - start_step,
                checkpoint=checkpoint,
            )
        job.result = _result_payload(job, sim)
        return SegmentResult(COMPLETED, job.steps_done - start_step)
    except Exception as err:  # job failure must never kill the server
        steps_run = job.steps_done - start_step
        if job.generation == generation:
            # Roll back to the segment start so the retry's replay from
            # the checkpoint does not double-append rows.
            job.steps_done = start_step
            del job.rows[start_rows:]
        return SegmentResult(
            FAILED, steps_run,
            error=f"{type(err).__name__}: {err}",
            error_type=type(err).__name__,
            classification=classify_exception(err),
            restored_step=start_step,
        )
    finally:
        if job.generation == generation:
            job.preempt_hook = None
        if sim is not None and hasattr(sim, "close"):
            sim.close()
        tracer.close()
        if sse_sink.dropped:
            # Category-filtered (not lost) events — surfaced so a stream
            # that looks sparse can be told apart from one that is.
            from repro.obs.registry import get_registry

            get_registry().counter(
                "simcov_serve_sse_filtered_events_total",
                "Telemetry events the SSE category filter withheld "
                "from job streams",
            ).inc(sse_sink.dropped)


def _step_payload(job: Job, stats) -> dict:
    return {
        "job": job.id,
        "step": stats.step,
        "healthy": stats.healthy,
        "incubating": stats.incubating,
        "expressing": stats.expressing,
        "apoptotic": stats.apoptotic,
        "dead": stats.dead,
        "tcells_tissue": stats.tcells_tissue,
        "virions_total": stats.virions_total,
        "steps_done": job.steps_done,
        "steps_total": job.steps,
    }


def _result_payload(job: Job, sim) -> dict:
    if job.spec.backend == "ensemble":
        return {
            "kind": "ensemble",
            "seeds": [int(s) for s in job.spec.seeds()],
            "members": [
                stats_rows(series) for series in sim.member_series
            ],
        }
    # job.rows, not sim.series: a resumed sim's series only holds the
    # final segment — the job accumulated every segment's rows in order.
    return {"kind": "solo", "seed": job.spec.seed, "rows": list(job.rows)}


def _mirror_snapshot(root: str, job: Job, sim, keep: int) -> str:
    """Persist the preemption snapshot under the job's own subdirectory
    (atomic tmp + ``os.replace`` via :func:`save_checkpoint`), rotated
    to the newest ``keep``.  Returns the checkpoint path — journaled so
    a restarted server can resume this job from disk."""
    directory = job_checkpoint_dir(root, job)
    path = auto_checkpoint_path(directory, sim.step_num)
    save_checkpoint(path, sim)
    rotate_checkpoints(directory, keep)
    return path
