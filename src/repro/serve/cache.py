"""Result cache: identical requests are free.

Keyed on the canonical ``(encoded params, seeds, steps)`` tuple
(:func:`repro.serve.jobs.result_cache_key`), the cache is *correct by
construction*: the engine's bitwise-determinism guarantee means every
backend produces the identical stats series for the same key, so a
cached entry is indistinguishable from a re-run — not a lossy
approximation of one.

Storage is two-tier:

- an in-memory dict (the hot path — a hit is a dict lookup);
- an optional on-disk mirror, one **subdirectory per key** with the
  repo-wide atomic write discipline (tmp file + ``os.replace``), so
  concurrent jobs finishing at the same moment never interleave bytes or
  clobber each other's entries — the same collision-safety rule the
  per-job checkpoint directories follow (DESIGN.md §4e).
"""

from __future__ import annotations

import json
import os
import threading


class ResultCache:
    """Two-tier (memory + optional disk) result store.

    Thread-safe: the scheduler reads from the asyncio loop thread while
    worker threads publish finished results.
    """

    def __init__(self, directory: str | None = None, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.directory = directory
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._memory: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # -- lookup --------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The cached result payload, or None.  Falls through to disk
        (and repopulates memory) when a restarted server lost its dict."""
        with self._lock:
            payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = self._read_disk(key)
            if payload is not None:
                with self._lock:
                    self._memory.setdefault(key, payload)
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    # -- insertion -----------------------------------------------------------

    def put(self, key: str, payload: dict) -> None:
        """Publish a finished run's result under its canonical key.

        Bounded: when full, an arbitrary old entry is evicted from
        memory (insertion order — dicts preserve it); the disk mirror is
        append-only within a serve session.
        """
        with self._lock:
            while len(self._memory) >= self.capacity:
                self._memory.pop(next(iter(self._memory)))
            self._memory[key] = payload
        if self.directory is not None:
            self._write_disk(key, payload)

    # -- disk mirror ---------------------------------------------------------

    def _entry_path(self, key: str) -> str:
        # One subdirectory per key: writers for different keys never
        # share a path, and the atomic replace below makes same-key
        # writers idempotent (last writer wins with identical bytes).
        return os.path.join(self.directory, key[:2], key, "result.json")

    def _write_disk(self, key: str, payload: dict) -> None:
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
        try:
            with open(tmp, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)

    def _read_disk(self, key: str) -> dict | None:
        try:
            with open(self._entry_path(key)) as fh:
                return json.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            return None  # a torn entry is a miss, never a crash

    # -- metrics -------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
