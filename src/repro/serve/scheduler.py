"""Fair-share priority scheduling (pure logic, no asyncio).

The queue orders jobs by a three-part effective key:

1. **priority class** (higher first) — a client-declared 0..9 urgency;
2. **fair share** (lower spent first) — within a class, the client who
   has consumed the least work wins, so one tenant submitting hundreds
   of jobs cannot starve everyone else in the same class;
3. **arrival sequence** (FIFO tiebreak) — and a preempted job keeps its
   original sequence number, so it resumes ahead of later arrivals of
   equal standing.

Work is charged in *voxel-steps* (``steps × voxels × members``) — the
engine's actual cost unit — normalized to millions so the numbers stay
readable in ``/metrics``.

Preemption policy (:meth:`Scheduler.pick_victim`): when every worker is
busy and a queued job outranks a running one by priority *class*, the
lowest-effective-priority running job that is preemptible yields at its
next step boundary.  Fair-share differences alone never preempt — they
only order the queue — so the system cannot thrash between equal-class
tenants.
"""

from __future__ import annotations

from repro.serve.jobs import Job


def job_cost(job: Job, steps: int | None = None) -> float:
    """Work units (millions of voxel-steps) for ``steps`` of this job."""
    n = job.steps if steps is None else steps
    members = len(job.spec.seeds())
    return n * job.params.num_voxels * members / 1e6


class FairShareQueue:
    """Priority + fair-share ordered job queue.

    ``pop_next`` scans for the minimum effective key — O(n), deliberate:
    fair-share spent changes between pops, so a heap keyed at push time
    would serve stale orderings.  Queue depths in the thousands scan in
    microseconds; revisit only if profiles say otherwise.
    """

    def __init__(self):
        self._jobs: dict[str, Job] = {}
        #: Cumulative charged work per client (fair-share state).
        self.spent: dict[str, float] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    def push(self, job: Job) -> None:
        self._jobs[job.id] = job

    def remove(self, job_id: str) -> Job | None:
        return self._jobs.pop(job_id, None)

    def effective_key(self, job: Job) -> tuple:
        """Sort key: smaller runs earlier."""
        return (
            -job.spec.priority,
            self.spent.get(job.spec.client, 0.0),
            job.seq,
        )

    def pop_next(self) -> Job | None:
        """Remove and return the next job to dispatch (None when empty)."""
        if not self._jobs:
            return None
        best = min(self._jobs.values(), key=self.effective_key)
        del self._jobs[best.id]
        return best

    def charge(self, client: str, cost: float) -> None:
        """Record completed work against a client's fair share."""
        self.spent[client] = self.spent.get(client, 0.0) + cost


class Scheduler:
    """Queue + running-set bookkeeping and the preemption decision."""

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self.queue = FairShareQueue()
        self.running: dict[str, Job] = {}

    @property
    def free_slots(self) -> int:
        return self.max_workers - len(self.running)

    def submit(self, job: Job) -> None:
        self.queue.push(job)

    def next_dispatch(self) -> Job | None:
        """Claim the next queued job for a free slot (None if full/empty)."""
        if self.free_slots <= 0:
            return None
        job = self.queue.pop_next()
        if job is not None:
            self.running[job.id] = job
        return job

    def pick_victim(self, candidate: Job) -> Job | None:
        """The running job ``candidate`` should preempt, or None.

        Only fires when no slot is free, and only across priority
        *classes*: the chosen victim is the preemptible running job with
        the weakest effective key whose priority class is strictly below
        the candidate's.
        """
        if self.free_slots > 0:
            return None
        victims = [
            j for j in self.running.values()
            if j.preemptible and j.spec.priority < candidate.spec.priority
        ]
        if not victims:
            return None
        return max(victims, key=self.queue.effective_key)

    def charge(self, client: str, cost: float) -> None:
        """Record completed work against a client's fair share."""
        self.queue.charge(client, cost)

    def release(self, job: Job, *, requeue: bool = False) -> None:
        """A running job yielded its slot — finished, failed, or
        preempted (``requeue=True`` puts it back with its original
        sequence number, so it resumes ahead of equal newer arrivals)."""
        self.running.pop(job.id, None)
        if requeue:
            self.queue.push(job)
