"""Stdlib HTTP client for the serve API.

``http.client`` only — the same zero-dependency rule as the server.  The
CLI (``simcov-repro submit`` / ``status``), the test suite and the load
harness's synchronous paths all go through this class; the load harness's
concurrency path speaks raw asyncio streams instead (open sockets scale
better than thread-per-connection for thousands of clients).
"""

from __future__ import annotations

import http.client
import json
import time


class ServeError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, payload):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")


class ServeClient:
    """Talk to a running :class:`~repro.serve.server.ServeApp`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None if body is None else json.dumps(body)
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = json.loads(resp.read() or b"{}")
            if resp.status >= 400:
                raise ServeError(resp.status, data)
            return data
        finally:
            conn.close()

    def _request_text(self, method: str, path: str) -> str:
        """Fetch a non-JSON body (the Prometheus exposition)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path)
            resp = conn.getresponse()
            data = resp.read().decode("utf-8")
            if resp.status >= 400:
                raise ServeError(resp.status, data)
            return data
        finally:
            conn.close()

    # -- API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """The JSON counters payload (``GET /metrics.json``)."""
        return self._request("GET", "/metrics.json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self._request_text("GET", "/metrics")

    def submit(self, spec: dict) -> dict:
        """POST a job spec; returns ``{"cache": ..., "job": {...}}``."""
        return self._request("POST", "/jobs", body=spec)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished result payload (409 -> ServeError while running)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job leaves the active states; returns the
        final summary (raises TimeoutError if it never settles)."""
        deadline = time.monotonic() + timeout
        while True:
            summary = self.status(job_id)
            if summary["state"] in ("done", "failed", "cancelled"):
                return summary
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {summary['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def iter_events(self, job_id: str, timeout: float | None = None):
        """Yield ``(event_name, data_dict)`` from the job's SSE stream
        until the server closes it (the job reached a terminal state)."""
        conn = http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request("GET", f"/jobs/{job_id}/events")
            resp = conn.getresponse()
            if resp.status >= 400:
                raise ServeError(resp.status, json.loads(resp.read() or b"{}"))
            yield from parse_sse(resp)
        finally:
            conn.close()


def parse_sse(fh):
    """Parse an SSE byte stream into ``(event_name, data)`` pairs.

    ``data`` is JSON-decoded when possible (every frame the server emits
    is JSON), else the raw string.
    """
    event_name = "message"
    data_lines: list[str] = []
    for raw in fh:
        line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
        if not line:  # blank line = frame boundary
            if data_lines:
                text = "\n".join(data_lines)
                try:
                    yield event_name, json.loads(text)
                except json.JSONDecodeError:
                    yield event_name, text
            event_name, data_lines = "message", []
            continue
        if line.startswith(":"):  # comment/keep-alive
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event_name = value
        elif field == "data":
            data_lines.append(value)
