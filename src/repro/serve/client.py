"""Stdlib HTTP client for the serve API.

``http.client`` only — the same zero-dependency rule as the server.  The
CLI (``simcov-repro submit`` / ``status``), the test suite and the load
harness's synchronous paths all go through this class; the load harness's
concurrency path speaks raw asyncio streams instead (open sockets scale
better than thread-per-connection for thousands of clients).

Transport resilience: requests retry connection-refused/reset errors
under capped exponential backoff with jitter (a restarting server is
reachable again within its replay window, and the journal makes the
retry safe), and :meth:`ServeClient.iter_events` transparently
reconnects a dropped SSE stream with ``Last-Event-ID`` so the caller
sees every frame exactly once across server restarts.  HTTP error
*answers* (4xx/5xx) are never retried here — admission control's 429/503
carry ``Retry-After`` and the decision belongs to the caller.
"""

from __future__ import annotations

import http.client
import json
import random
import time

#: Transport errors worth retrying: the server is briefly unreachable
#: (restarting, listen backlog churn), not answering with an error.
_RETRYABLE_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
    http.client.BadStatusLine,
)


class ServeError(RuntimeError):
    """The server answered with an error status."""

    def __init__(self, status: int, payload):
        self.status = status
        self.payload = payload
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")

    @property
    def retry_after(self) -> float | None:
        """The server-suggested backoff of a 429/503 admission answer."""
        if isinstance(self.payload, dict):
            value = self.payload.get("retry_after")
            return None if value is None else float(value)
        return None


class ServeClient:
    """Talk to a running :class:`~repro.serve.server.ServeApp`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0, connect_retries: int = 4,
                 retry_base_s: float = 0.05, retry_cap_s: float = 1.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s

    # -- plumbing -------------------------------------------------------------

    def _backoff(self, attempt: int) -> float:
        """Capped exponential backoff with full jitter (attempt >= 1)."""
        cap = min(self.retry_cap_s, self.retry_base_s * (2 ** (attempt - 1)))
        return random.uniform(0, cap)

    def _with_retries(self, fn):
        """Run ``fn()`` retrying transport errors; HTTP answers (including
        4xx/5xx ServeError) pass straight through."""
        attempt = 0
        while True:
            try:
                return fn()
            except _RETRYABLE_ERRORS:
                attempt += 1
                if attempt > self.connect_retries:
                    raise
                time.sleep(self._backoff(attempt))

    def _request(self, method: str, path: str, body: dict | None = None):
        def once():
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                payload = None if body is None else json.dumps(body)
                headers = (
                    {"Content-Type": "application/json"} if payload else {}
                )
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                data = json.loads(resp.read() or b"{}")
                if resp.status >= 400:
                    raise ServeError(resp.status, data)
                return data
            finally:
                conn.close()

        return self._with_retries(once)

    def _request_text(self, method: str, path: str) -> str:
        """Fetch a non-JSON body (the Prometheus exposition)."""
        def once():
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            try:
                conn.request(method, path)
                resp = conn.getresponse()
                data = resp.read().decode("utf-8")
                if resp.status >= 400:
                    raise ServeError(resp.status, data)
                return data
            finally:
                conn.close()

        return self._with_retries(once)

    # -- API ------------------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        """Readiness payload; raises :class:`ServeError` on 503
        (draining / failed journal replay)."""
        return self._request("GET", "/readyz")

    def metrics(self) -> dict:
        """The JSON counters payload (``GET /metrics.json``)."""
        return self._request("GET", "/metrics.json")

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self._request_text("GET", "/metrics")

    def submit(self, spec: dict) -> dict:
        """POST a job spec; returns ``{"cache": ..., "job": {...}}``."""
        return self._request("POST", "/jobs", body=spec)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished result payload (409 -> ServeError while running)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05) -> dict:
        """Poll until the job leaves the active states; returns the
        final summary (raises TimeoutError if it never settles)."""
        deadline = time.monotonic() + timeout
        while True:
            summary = self.status(job_id)
            if summary["state"] in ("done", "failed", "cancelled"):
                return summary
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {summary['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def iter_events(self, job_id: str, timeout: float | None = None,
                    reconnects: int = 10):
        """Yield ``(event_name, data_dict)`` from the job's SSE stream
        until the server closes it (the job reached a terminal state).

        A dropped connection reconnects up to ``reconnects`` times with
        a ``Last-Event-ID`` header, so frames resume exactly after the
        last one delivered — across server restarts, since the restarted
        server rebuilds each journaled job's event log on replay.
        """
        last_id = -1
        attempts = 0
        while True:
            state: dict = {}
            terminal = False
            try:
                conn = http.client.HTTPConnection(
                    self.host, self.port,
                    timeout=self.timeout if timeout is None else timeout,
                )
                try:
                    headers = {}
                    if last_id >= 0:
                        headers["Last-Event-ID"] = str(last_id)
                    conn.request(
                        "GET", f"/jobs/{job_id}/events", headers=headers
                    )
                    resp = conn.getresponse()
                    if resp.status >= 400:
                        raise ServeError(
                            resp.status, json.loads(resp.read() or b"{}")
                        )
                    for event_name, data in parse_sse(resp, state=state):
                        if state.get("id") is not None:
                            last_id = state["id"]
                        attempts = 0  # progress resets the budget
                        if event_name in ("done", "error"):
                            terminal = True
                        yield event_name, data
                finally:
                    conn.close()
            except _RETRYABLE_ERRORS:
                attempts += 1
                if attempts > reconnects:
                    raise
                time.sleep(self._backoff(attempts))
                continue
            if terminal:
                return
            # Clean close without a terminal frame: the server finished
            # the log (cancel path) or dropped us — reconnect and let the
            # replayed tail decide.
            attempts += 1
            if attempts > reconnects:
                return
            time.sleep(self._backoff(attempts))


def parse_sse(fh, state: dict | None = None):
    """Parse an SSE byte stream into ``(event_name, data)`` pairs.

    ``data`` is JSON-decoded when possible (every frame the server emits
    is JSON), else the raw string.  When ``state`` is given, its
    ``"id"`` entry tracks the most recent ``id:`` field — the cursor a
    reconnecting client sends back as ``Last-Event-ID``.
    """
    event_name = "message"
    event_id: int | None = None
    data_lines: list[str] = []
    for raw in fh:
        line = raw.decode("utf-8").rstrip("\n").rstrip("\r")
        if not line:  # blank line = frame boundary
            if data_lines:
                if state is not None and event_id is not None:
                    state["id"] = event_id
                text = "\n".join(data_lines)
                try:
                    yield event_name, json.loads(text)
                except json.JSONDecodeError:
                    yield event_name, text
            event_name, event_id, data_lines = "message", None, []
            continue
        if line.startswith(":"):  # comment/keep-alive
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        if field == "event":
            event_name = value
        elif field == "data":
            data_lines.append(value)
        elif field == "id":
            try:
                event_id = int(value)
            except ValueError:
                event_id = None
