"""SIMCoV-as-a-service: the asyncio job server (DESIGN.md §4e).

A thin serving layer over every existing driver: submit a run config +
overrides + seed + backend, get a job id; results are cached (correct by
bitwise determinism), long jobs yield to higher-priority work through
checkpoint-backed preemption, and per-step stats stream live over SSE.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError, parse_sse
from repro.serve.jobs import (
    ACTIVE_STATES,
    BACKENDS,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    Job,
    JobSpec,
    SpecError,
    result_cache_key,
)
from repro.serve.runner import SegmentResult, build_sim, run_segment
from repro.serve.scheduler import FairShareQueue, Scheduler, job_cost
from repro.serve.server import BackgroundServer, ServeApp

__all__ = [
    "ACTIVE_STATES",
    "BACKENDS",
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "BackgroundServer",
    "FairShareQueue",
    "Job",
    "JobSpec",
    "ResultCache",
    "Scheduler",
    "SegmentResult",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "SpecError",
    "build_sim",
    "job_cost",
    "parse_sse",
    "result_cache_key",
    "run_segment",
]
