"""SIMCoV-as-a-service: the asyncio job server (DESIGN.md §4e, §4g).

A thin serving layer over every existing driver: submit a run config +
overrides + seed + backend, get a job id; results are cached (correct by
bitwise determinism), long jobs yield to higher-priority work through
checkpoint-backed preemption, and per-step stats stream live over SSE.

Fault tolerance (§4g): a CRC-framed job journal makes a SIGKILLed server
recoverable bitwise-exactly; failed attempts retry under a bounded
backoff policy; a watchdog enforces deadlines and reclaims hung workers;
admission control answers overload with typed 429/503; SIGTERM drains
gracefully.
"""

from repro.serve.cache import ResultCache
from repro.serve.client import ServeClient, ServeError, parse_sse
from repro.serve.faults import (
    SERVE_FAULT_MODES,
    InjectedWorkerCrash,
    ServeFaultSpec,
    parse_serve_fault,
)
from repro.serve.jobs import (
    ACTIVE_STATES,
    BACKENDS,
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RETRYING,
    RUNNING,
    Job,
    JobSpec,
    SpecError,
    result_cache_key,
)
from repro.serve.journal import JobJournal, JournalCorruptError, fold_records
from repro.serve.runner import SegmentResult, build_sim, run_segment
from repro.serve.scheduler import FairShareQueue, Scheduler, job_cost
from repro.serve.server import AdmissionError, BackgroundServer, ServeApp

__all__ = [
    "ACTIVE_STATES",
    "BACKENDS",
    "CANCELLED",
    "DONE",
    "FAILED",
    "QUEUED",
    "RETRYING",
    "RUNNING",
    "SERVE_FAULT_MODES",
    "AdmissionError",
    "BackgroundServer",
    "FairShareQueue",
    "InjectedWorkerCrash",
    "Job",
    "JobJournal",
    "JobSpec",
    "JournalCorruptError",
    "ResultCache",
    "Scheduler",
    "SegmentResult",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServeFaultSpec",
    "SpecError",
    "build_sim",
    "fold_records",
    "job_cost",
    "parse_serve_fault",
    "parse_sse",
    "result_cache_key",
    "run_segment",
]
