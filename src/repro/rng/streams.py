"""Named random streams keyed by global voxel id.

Every stochastic decision in the model gets its own :class:`Stream` so that
adding or removing one kind of draw never perturbs another — and so that the
sequential, CPU-PGAS and GPU implementations consume identical randomness
even though they evaluate voxels in different orders.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.rng.philox import counter_hash
from repro.rng import distributions as dist


class Stream(enum.IntEnum):
    """Substreams for each stochastic decision in SIMCoV."""

    #: Virion-driven infection of a healthy epithelial cell.
    INFECTION = 1
    #: Poisson draw of the incubation period at infection time.
    INCUBATION_PERIOD = 2
    #: Poisson draw of the expressing period.
    EXPRESSING_PERIOD = 3
    #: Poisson draw of the apoptosis period.
    APOPTOSIS_PERIOD = 4
    #: T-cell movement direction choice.
    TCELL_DIRECTION = 5
    #: T-cell movement/binding tiebreak bid (paper §3.1).
    TCELL_BID = 6
    #: T-cell binding target selection among infected neighbors.
    TCELL_BIND_SELECT = 7
    #: Whether a T cell attempts to bind this step.
    TCELL_BIND_TRY = 8
    #: Extravasation site selection (keyed by attempt index, not voxel).
    EXTRAVASATE_SITE = 9
    #: Extravasation acceptance roll against the inflammatory signal.
    EXTRAVASATE_ACCEPT = 10
    #: Poisson draw of a new tissue T cell's lifespan.
    TCELL_TISSUE_LIFE = 11
    #: Stochastic rounding of the fractional vascular-pool flux.
    POOL_ROUND = 12
    #: Initial FOI placement (keyed by focus index).
    SEEDING = 13
    #: Patchy-lesion generator (keyed by lesion index).
    LESION = 14


class VoxelRNG:
    """Deterministic randomness source for one simulation trial.

    Parameters
    ----------
    seed:
        Trial seed.  Different trials of an experiment use different seeds.

    Notes
    -----
    All methods take the timestep and an array of keys (global voxel ids or
    attempt indices) and return arrays of the keys' shape.  No internal
    state exists; calls may be made in any order, any number of times, from
    any rank or device, and always agree.

    Every method accepts an optional ``member=`` argument so batched
    kernels can use one call spelling for solo and ensemble runs; a solo
    RNG has exactly one member and ignores it.
    """

    __slots__ = ("seed",)

    #: Whether draws carry a leading ensemble-batch axis (see EnsembleRNG).
    batched = False

    def __init__(self, seed: int):
        self.seed = int(seed)

    # -- raw words ---------------------------------------------------------

    def words(self, stream: Stream, step: int, keys, member=None) -> np.ndarray:
        """Raw uint64 hash words for ``(stream, step, keys)``."""
        return counter_hash(self.seed, int(stream), step, np.asarray(keys))

    # -- distribution helpers ---------------------------------------------

    def uniform(self, stream: Stream, step: int, keys, member=None) -> np.ndarray:
        """Uniform [0,1) floats."""
        return dist.uniform01(self.words(stream, step, keys, member=member))

    def bernoulli(self, stream: Stream, step: int, keys, p, member=None) -> np.ndarray:
        """Boolean success array with probability ``p``."""
        return dist.bernoulli(self.words(stream, step, keys, member=member), p)

    def randint(self, stream: Stream, step: int, keys, n: int, member=None) -> np.ndarray:
        """Integers uniform on [0, n)."""
        return dist.randint_below(self.words(stream, step, keys, member=member), n)

    def poisson(self, stream: Stream, step: int, keys, mu, member=None) -> np.ndarray:
        """Poisson integers with mean ``mu``."""
        return dist.poisson(self.words(stream, step, keys, member=member), mu)

    def bids(self, step: int, keys, member=None) -> np.ndarray:
        """T-cell tiebreak bids: uint64 words with 0 reserved as 'no bid'.

        The paper (§3.1) draws bids "from a large range of integers" and
        ignores the negligible true-tie probability; reserving 0 costs one
        value out of 2**64.
        """
        w = self.words(Stream.TCELL_BID, step, keys, member=member)
        return np.maximum(w, np.uint64(1))


class EnsembleRNG(VoxelRNG):
    """Batched randomness: one counter-based stream per ensemble member.

    Draws are keyed ``(member_seed, stream, step, voxel)`` and vectorized
    across the leading batch axis, so member ``b``'s draws are **bitwise
    identical** to ``VoxelRNG(seeds[b])`` — the property that makes every
    batched run exactly reproduce its members' solo runs.  Two call
    shapes exist:

    - *full-region draws*: ``keys`` carries the leading batch axis
      (shape ``(B, ...)``, e.g. a broadcast voxel-id view); seeds are
      folded in shaped ``(B, 1, ..., 1)`` and broadcast;
    - *gathered draws* (``member=`` given): ``keys`` is a flat gather of
      voxel ids and ``member`` the same-shape gather of batch indices;
      each element hashes with its own member's seed.

    The hash always runs on the host; draws are transferred to the
    configured array module (a no-op view for numpy).
    """

    __slots__ = ("seeds", "xp")

    batched = True

    def __init__(self, seeds, xp=None):
        from repro.core.xp import NUMPY

        self.seeds = np.asarray(seeds, dtype=np.int64)
        if self.seeds.ndim != 1 or self.seeds.size == 0:
            raise ValueError(f"seeds must be a non-empty 1-D sequence, got "
                             f"shape {self.seeds.shape}")
        self.seed = int(self.seeds[0])
        self.xp = NUMPY if xp is None else xp

    @property
    def batch(self) -> int:
        return int(self.seeds.size)

    def member_rng(self, b: int) -> VoxelRNG:
        """The solo RNG whose draws member ``b`` reproduces bitwise."""
        return VoxelRNG(int(self.seeds[b]))

    def _host_words(self, stream: Stream, step: int, keys, member) -> np.ndarray:
        keys = self.xp.asnumpy(keys)
        if member is None:
            if keys.ndim < 1 or keys.shape[0] not in (1, self.batch):
                raise ValueError(
                    f"batched draw needs keys with leading batch axis "
                    f"{self.batch}, got shape {keys.shape}"
                )
            seed = self.seeds.reshape((self.batch,) + (1,) * (keys.ndim - 1))
        else:
            member = self.xp.asnumpy(member)
            seed = self.seeds[np.asarray(member, dtype=np.int64)]
        return counter_hash(seed, int(stream), step, keys)

    def _out(self, arr: np.ndarray):
        """Host result → configured module (identity for numpy)."""
        return arr if self.xp.name == "numpy" else self.xp.asarray(arr)

    def words(self, stream: Stream, step: int, keys, member=None) -> np.ndarray:
        return self._out(self._host_words(stream, step, keys, member))

    def uniform(self, stream: Stream, step: int, keys, member=None) -> np.ndarray:
        return self._out(dist.uniform01(self._host_words(stream, step, keys, member)))

    def bernoulli(self, stream: Stream, step: int, keys, p, member=None) -> np.ndarray:
        return self._out(dist.bernoulli(self._host_words(stream, step, keys, member), p))

    def randint(self, stream: Stream, step: int, keys, n: int, member=None) -> np.ndarray:
        return self._out(
            dist.randint_below(self._host_words(stream, step, keys, member), n)
        )

    def poisson(self, stream: Stream, step: int, keys, mu, member=None) -> np.ndarray:
        return self._out(dist.poisson(self._host_words(stream, step, keys, member), mu))

    def bids(self, step: int, keys, member=None) -> np.ndarray:
        w = self._host_words(Stream.TCELL_BID, step, keys, member)
        return self._out(np.maximum(w, np.uint64(1)))
