"""Named random streams keyed by global voxel id.

Every stochastic decision in the model gets its own :class:`Stream` so that
adding or removing one kind of draw never perturbs another — and so that the
sequential, CPU-PGAS and GPU implementations consume identical randomness
even though they evaluate voxels in different orders.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.rng.philox import counter_hash
from repro.rng import distributions as dist


class Stream(enum.IntEnum):
    """Substreams for each stochastic decision in SIMCoV."""

    #: Virion-driven infection of a healthy epithelial cell.
    INFECTION = 1
    #: Poisson draw of the incubation period at infection time.
    INCUBATION_PERIOD = 2
    #: Poisson draw of the expressing period.
    EXPRESSING_PERIOD = 3
    #: Poisson draw of the apoptosis period.
    APOPTOSIS_PERIOD = 4
    #: T-cell movement direction choice.
    TCELL_DIRECTION = 5
    #: T-cell movement/binding tiebreak bid (paper §3.1).
    TCELL_BID = 6
    #: T-cell binding target selection among infected neighbors.
    TCELL_BIND_SELECT = 7
    #: Whether a T cell attempts to bind this step.
    TCELL_BIND_TRY = 8
    #: Extravasation site selection (keyed by attempt index, not voxel).
    EXTRAVASATE_SITE = 9
    #: Extravasation acceptance roll against the inflammatory signal.
    EXTRAVASATE_ACCEPT = 10
    #: Poisson draw of a new tissue T cell's lifespan.
    TCELL_TISSUE_LIFE = 11
    #: Stochastic rounding of the fractional vascular-pool flux.
    POOL_ROUND = 12
    #: Initial FOI placement (keyed by focus index).
    SEEDING = 13
    #: Patchy-lesion generator (keyed by lesion index).
    LESION = 14


class VoxelRNG:
    """Deterministic randomness source for one simulation trial.

    Parameters
    ----------
    seed:
        Trial seed.  Different trials of an experiment use different seeds.

    Notes
    -----
    All methods take the timestep and an array of keys (global voxel ids or
    attempt indices) and return arrays of the keys' shape.  No internal
    state exists; calls may be made in any order, any number of times, from
    any rank or device, and always agree.
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int):
        self.seed = int(seed)

    # -- raw words ---------------------------------------------------------

    def words(self, stream: Stream, step: int, keys) -> np.ndarray:
        """Raw uint64 hash words for ``(stream, step, keys)``."""
        return counter_hash(self.seed, int(stream), step, np.asarray(keys))

    # -- distribution helpers ---------------------------------------------

    def uniform(self, stream: Stream, step: int, keys) -> np.ndarray:
        """Uniform [0,1) floats."""
        return dist.uniform01(self.words(stream, step, keys))

    def bernoulli(self, stream: Stream, step: int, keys, p) -> np.ndarray:
        """Boolean success array with probability ``p``."""
        return dist.bernoulli(self.words(stream, step, keys), p)

    def randint(self, stream: Stream, step: int, keys, n: int) -> np.ndarray:
        """Integers uniform on [0, n)."""
        return dist.randint_below(self.words(stream, step, keys), n)

    def poisson(self, stream: Stream, step: int, keys, mu) -> np.ndarray:
        """Poisson integers with mean ``mu``."""
        return dist.poisson(self.words(stream, step, keys), mu)

    def bids(self, step: int, keys) -> np.ndarray:
        """T-cell tiebreak bids: uint64 words with 0 reserved as 'no bid'.

        The paper (§3.1) draws bids "from a large range of integers" and
        ignores the negligible true-tie probability; reserving 0 costs one
        value out of 2**64.
        """
        w = self.words(Stream.TCELL_BID, step, keys)
        return np.maximum(w, np.uint64(1))
