"""Distributions layered over the counter-based hash.

Each function maps uint64 hash words to a target distribution with
deterministic, decomposition-independent results.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _sps

#: 2**-53, scale factor mapping the top 53 bits of a uint64 to [0, 1).
_U53 = float(2.0**-53)


def uniform01(words: np.ndarray) -> np.ndarray:
    """Map uint64 words to float64 uniform on [0, 1).

    Uses the top 53 bits so every representable value is equally likely and
    1.0 is never produced.
    """
    return (words >> np.uint64(11)).astype(np.float64) * _U53


def bernoulli(words: np.ndarray, p) -> np.ndarray:
    """Boolean array, True with probability ``p`` (scalar or array)."""
    return uniform01(words) < p


def randint_below(words: np.ndarray, n: int) -> np.ndarray:
    """Integers uniform on [0, n).

    Plain modulo; the bias is < n / 2**64 which is negligible for the small
    ``n`` used here (neighborhood sizes <= 26).
    """
    if n <= 0:
        raise ValueError(f"randint_below requires n >= 1, got {n}")
    return (words % np.uint64(n)).astype(np.int64)


def poisson(words: np.ndarray, mu) -> np.ndarray:
    """Poisson variates via inverse transform of the uniform mapping.

    SIMCoV draws per-cell incubation/expressing/apoptosis periods from
    Poisson distributions (paper §2.2).  Inverse transform keeps the draw a
    pure function of the hash word, preserving cross-implementation
    determinism.  ``mu`` may be scalar or an array broadcastable to
    ``words.shape``.
    """
    u = uniform01(words)
    return _sps.poisson.ppf(u, mu).astype(np.int64)


def exponential(words: np.ndarray, scale) -> np.ndarray:
    """Exponential variates with mean ``scale``."""
    u = uniform01(words)
    # 1 - u is in (0, 1]; log is finite.
    return -np.log1p(-u) * scale
