"""Counter-based pseudo-random number generation.

SIMCoV's behaviour is driven by PRNGs (§4.1 of the paper).  The reproduction
uses a *counter-based* generator (in the spirit of Philox/Random123): a
stateless avalanche hash of ``(seed, stream, step, key)``.  Keying draws by
**global voxel id** makes the random sequence a pure function of the
simulation coordinates — identical regardless of how the domain is
decomposed across ranks or devices.  This is what allows the sequential
reference, SIMCoV-CPU and SIMCoV-GPU implementations in this package to be
bitwise equivalent (a stronger property than the statistical agreement the
paper demonstrates, which we also evaluate).
"""

from repro.rng.philox import hash_u64, counter_hash, PHI64
from repro.rng.streams import Stream, VoxelRNG
from repro.rng.distributions import (
    uniform01,
    bernoulli,
    randint_below,
    poisson,
    exponential,
)

__all__ = [
    "hash_u64",
    "counter_hash",
    "PHI64",
    "Stream",
    "VoxelRNG",
    "uniform01",
    "bernoulli",
    "randint_below",
    "poisson",
    "exponential",
]
