"""Core counter-based hash primitives.

The generator is a vectorized splitmix64-style avalanche hash.  It is
stateless: every output is a pure function of its inputs, which is the
property SIMCoV-GPU needs so that two devices sharing a boundary can agree
on the random bid of a T cell that only one of them owns (paper §3.1).

All arithmetic is modulo 2**64 (numpy uint64 wraps silently for array
operands; scalar operands are promoted to 0-d arrays to avoid the scalar
overflow warning path).
"""

from __future__ import annotations

import numpy as np

# 2**64 / golden ratio, the Weyl increment used by splitmix64.
PHI64 = np.uint64(0x9E3779B97F4A7C15)

_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def _as_u64(x) -> np.ndarray:
    """Coerce ``x`` to an at-least-1d uint64 ndarray.

    Promoting scalars to 1-element arrays keeps all arithmetic on the
    (silently wrapping) array fast path; numpy's *scalar* uint64 operations
    would raise overflow RuntimeWarnings.
    """
    arr = np.asarray(x)
    if arr.dtype != np.uint64:
        # Cast via int64->uint64 two's complement for negative python ints.
        arr = arr.astype(np.int64, copy=False).astype(np.uint64)
    return np.atleast_1d(arr)


def _mix(z: np.ndarray) -> np.ndarray:
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def hash_u64(x) -> np.ndarray:
    """splitmix64 finalizer: avalanche a uint64 (array) into a uint64 (array).

    Preserves the input's shape (scalars map to 0-d arrays).  Passes
    practical avalanche requirements: flipping any input bit flips each
    output bit with probability ~1/2 (exercised by the test suite).
    """
    shape = np.shape(x)
    out = _mix(_as_u64(x) + PHI64)
    return out.reshape(shape)


def counter_hash(seed, stream, step, keys) -> np.ndarray:
    """Hash the 4-tuple ``(seed, stream, step, keys)`` into uint64 words.

    ``keys`` is typically an array of global voxel ids (any shape); the
    result has the broadcast shape of ``seed`` and ``keys``.
    ``stream``/``step`` are scalars; ``seed`` is a scalar for one trial,
    or an array broadcastable against ``keys`` for batched ensembles
    (e.g. member seeds shaped ``(B, 1, 1)`` against voxel-id keys shaped
    ``(B, ny, nx)`` — each member's words are then bitwise identical to a
    scalar-seed call with that member's seed).

    The tuple members are folded in sequentially, re-avalanched between
    folds so that low-entropy inputs (small consecutive integers, which is
    exactly what voxel ids and step counters are) still produce
    statistically independent outputs.
    """
    shape = np.broadcast_shapes(np.shape(seed), np.shape(keys))
    s = _mix(_as_u64(seed) + PHI64)
    s = _mix((s ^ (_as_u64(stream) * PHI64)) + PHI64)
    s = _mix((s ^ (_as_u64(step) * _MIX1)) + PHI64)
    k = _as_u64(keys)
    out = _mix((s ^ (k * _MIX2) ^ (k >> np.uint64(32))) + PHI64)
    return out.reshape(shape)
