"""Time-series persistence for :class:`~repro.core.stats.StepStats`."""

from __future__ import annotations

import csv
import os
from dataclasses import fields as dc_fields

from repro.core.stats import StepStats, TimeSeries

#: Column order: the StepStats fields.
COLUMNS = tuple(f.name for f in dc_fields(StepStats))
#: Integer-typed StepStats fields (everything else parses as float).
_INT_FIELDS = frozenset(
    f.name for f in dc_fields(StepStats) if f.type in (int, "int")
)


def save_timeseries(path: str, series: TimeSeries) -> None:
    """Write a whole series as CSV (one row per step)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(COLUMNS))
        writer.writeheader()
        for row in series.to_rows():
            writer.writerow(row)


def load_timeseries(path: str) -> TimeSeries:
    """Read a CSV written by :func:`save_timeseries` (or a StatsLogger)."""
    series = TimeSeries()
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            kwargs = {
                name: (int(row[name]) if name in _INT_FIELDS
                       else float(row[name]))
                for name in COLUMNS
            }
            series.append(StepStats(**kwargs))
    return series


class StatsLogger:
    """Incremental per-step logger (the SIMCoV 'log the totals to a file
    on disk' behaviour; §3.3).

    Appends one CSV row per :meth:`log` call and flushes immediately, so a
    crashed/interrupted run leaves a usable partial log.  Usable as a
    context manager.
    """

    def __init__(self, path: str):
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self.path = path
        self._fh = open(path, "w", newline="")
        self._writer = csv.DictWriter(self._fh, fieldnames=list(COLUMNS))
        self._writer.writeheader()
        self._fh.flush()
        self.rows_written = 0

    def log(self, stats: StepStats) -> None:
        self._writer.writerow(
            {name: getattr(stats, name) for name in COLUMNS}
        )
        self._fh.flush()
        self.rows_written += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "StatsLogger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
