"""Simulation output: per-step statistics logging (§3.3).

SIMCoV 'collects a variety of statistics during execution ... each time
step to enable time series analysis', with a single process logging the
reduced totals to a file on disk.  This package provides that sink: an
incremental per-step :class:`StatsLogger`, whole-series save/load, and
implementation-independent checkpoints (:mod:`repro.io.checkpoint`)."""

from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.io.timeseries import StatsLogger, load_timeseries, save_timeseries

__all__ = [
    "StatsLogger",
    "save_timeseries",
    "load_timeseries",
    "save_checkpoint",
    "load_checkpoint",
]
