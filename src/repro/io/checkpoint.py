"""Checkpoint/restore: implementation-independent simulation snapshots.

Paper-scale SIMCoV runs are multi-hour supercomputer jobs; production use
needs restartable state.  Because this reproduction's randomness is a pure
function of (seed, step, voxel), a checkpoint is just the global voxel
state plus four scalars — and a run can resume on *any* implementation
(sequential, CPU ranks, GPU devices, any decomposition) and continue
bitwise identically to the uninterrupted original.

Two forms share one payload shape (:func:`snapshot_state` /
:func:`restore_state`):

- **shadow snapshots** — plain in-memory dicts the resilient supervisor
  (:mod:`repro.dist.resilient`) takes every K steps at near-memcpy cost;
- **on-disk checkpoints** — ``.npz`` files written *atomically* (tmp file
  + ``os.replace``, so a crash mid-write never destroys the previous
  checkpoint) with a CRC32 per array that :func:`load_checkpoint`
  verifies, raising :class:`CheckpointCorruptError` on any mismatch or
  undecodable container.

Parameters are serialized by an explicit typed field codec
(:func:`encode_params` / :func:`decode_params`): every
:class:`~repro.core.params.SimCovParams` field is converted by its
*declared* type, so numpy scalars are normalized on save instead of
round-tripping through ``repr`` and a new field with an unsupported type
fails loudly at save time rather than corrupting restores.
"""

from __future__ import annotations

import json
import os
import re
import types
import typing
import zipfile
import zlib

import numpy as np

from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock

#: Voxel fields captured in a checkpoint.
CHECKPOINT_FIELDS = (
    "epi_state",
    "epi_timer",
    "virions",
    "chemokine",
    "tcell",
    "tcell_tissue_time",
    "tcell_bound_time",
)

#: Format marker for forward compatibility.  Version 2 added the typed
#: params codec and per-array CRCs; version-1 files are still readable.
FORMAT_VERSION = 2

#: Filename pattern of auto-checkpoints (resilient runs, rotation).
AUTO_CHECKPOINT_PATTERN = re.compile(r"^ckpt_step(\d+)\.npz$")


class CheckpointCorruptError(RuntimeError):
    """The checkpoint file is unreadable or failed CRC verification."""


# -- typed parameter codec ---------------------------------------------------

def _param_types() -> dict[str, type]:
    """Resolved (non-string) type per SimCovParams field."""
    return typing.get_type_hints(SimCovParams)


def _code_field(name: str, tp, value, *, decoding: bool):
    """Convert one field value by its declared type (both directions —
    encoding normalizes numpy scalars, decoding rebuilds tuples)."""
    origin = typing.get_origin(tp)
    if origin in (typing.Union, types.UnionType):
        if value is None:
            return None
        args = [a for a in typing.get_args(tp) if a is not type(None)]
        return _code_field(name, args[0], value, decoding=decoding)
    if tp is int:
        return int(value)
    if tp is float:
        return float(value)
    if origin is tuple or tp is tuple:
        item_types = typing.get_args(tp) or (int, Ellipsis)
        item = item_types[0]
        converted = tuple(
            _code_field(name, item, v, decoding=decoding) for v in value
        )
        # JSON has no tuple; ship a list, rebuild the tuple on decode.
        return converted if decoding else list(converted)
    raise TypeError(
        f"no checkpoint codec for SimCovParams.{name!r} of type {tp!r}; "
        "extend repro.io.checkpoint._code_field when adding param fields"
    )


def encode_params(params: SimCovParams) -> str:
    """Explicitly-typed JSON form of every SimCovParams field."""
    fields = {}
    for name, tp in _param_types().items():
        fields[name] = _code_field(
            name, tp, getattr(params, name), decoding=False
        )
    return json.dumps(fields, sort_keys=True)


def decode_params(text: str) -> SimCovParams:
    """Inverse of :func:`encode_params`."""
    raw = json.loads(text)
    hints = _param_types()
    fields = {
        name: _code_field(name, hints[name], value, decoding=True)
        for name, value in raw.items()
        if name in hints
    }
    return SimCovParams(**fields)


# -- payload assembly --------------------------------------------------------

def _gather(sim, name: str) -> np.ndarray:
    if hasattr(sim, "gather_field"):
        return np.ascontiguousarray(sim.gather_field(name))
    return getattr(sim.block, name)[sim.block.interior].copy()


def snapshot_state(sim) -> dict:
    """A self-contained in-memory snapshot of any implementation's state.

    Contains the full-domain interior of every checkpoint field plus the
    scalars that, with the counter-based RNG, pin the rest of the run.
    Decomposition-independent: restorable onto any implementation and
    any rank count.
    """
    return {
        "step_num": int(sim.step_num),
        "pool": float(sim.pool),
        "seed": int(sim.rng.seed),
        "seed_gids": np.asarray(sim.seed_gids, dtype=np.int64).copy(),
        "arrays": {name: _gather(sim, name) for name in CHECKPOINT_FIELDS},
    }


def _scatter_into_blocks(blocks: list[VoxelBlock], arrays: dict) -> None:
    for block in blocks:
        box = block.owned
        gsl = box.slices_from((0,) * box.ndim)
        for name in CHECKPOINT_FIELDS:
            getattr(block, name)[block.interior] = arrays[name][gsl]


def restore_state(sim, snapshot: dict) -> None:
    """Write a snapshot's state into an already-constructed simulation.

    Works on every driver: the field arrays are scattered into the
    implementation's blocks (for the distributed runtime these are the
    coordinator's shared-memory views, so parked workers see the restored
    state at their next step) and the engine scalars are reset.
    """
    blocks = sim.blocks if hasattr(sim, "blocks") else [sim.block]
    _scatter_into_blocks(blocks, snapshot["arrays"])
    sim.step_num = snapshot["step_num"]
    sim.pool = snapshot["pool"]
    if hasattr(sim, "invalidate_ghosts"):
        # Distributed runs: the workers' activity-gated exchange must not
        # trust strips pulled before this scatter.  The scatter above is
        # already visible when a worker observes the epoch bump.
        sim.invalidate_ghosts()


# -- on-disk format ----------------------------------------------------------

def _crc(arr: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(arr).tobytes()) & 0xFFFFFFFF


def save_checkpoint(path: str, sim) -> None:
    """Snapshot any implementation's state to a ``.npz`` file.

    The write is atomic: the payload goes to a temporary file in the
    target directory first and is moved over ``path`` with
    ``os.replace``, so a crash mid-write leaves any previous checkpoint
    at ``path`` intact.  Every array is stored alongside its CRC32.
    """
    snapshot = snapshot_state(sim)
    payload = {
        "format_version": FORMAT_VERSION,
        "step_num": snapshot["step_num"],
        "pool": snapshot["pool"],
        "seed": snapshot["seed"],
        "seed_gids": snapshot["seed_gids"],
        "params_json": np.frombuffer(
            encode_params(sim.params).encode(), dtype=np.uint8
        ),
        **snapshot["arrays"],
    }
    checked = (*CHECKPOINT_FIELDS, "seed_gids")
    for name in checked:
        payload[f"crc_{name}"] = np.uint32(_crc(payload[name]))
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            np.savez_compressed(fh, **payload)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)


def _load_payload(path: str) -> dict:
    """Read + verify an on-disk checkpoint into the snapshot dict shape
    (plus ``params``).  All corruption modes — undecodable container,
    missing members, CRC mismatch — surface as CheckpointCorruptError."""
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
            if version not in (1, FORMAT_VERSION):
                raise ValueError(
                    f"checkpoint format {version} != supported {FORMAT_VERSION}"
                )
            if version == 1:
                # Legacy repr-encoded params, no CRCs.
                import ast

                fields = ast.literal_eval(bytes(data["params_repr"]).decode())
                fields["dim"] = tuple(fields["dim"])
                params = SimCovParams(**fields)
            else:
                params = decode_params(bytes(data["params_json"]).decode())
            arrays = {name: data[name] for name in CHECKPOINT_FIELDS}
            seed_gids = data["seed_gids"]
            if version >= 2:
                for name in (*CHECKPOINT_FIELDS, "seed_gids"):
                    stored = int(data[f"crc_{name}"])
                    actual = _crc(data[name])
                    if stored != actual:
                        raise CheckpointCorruptError(
                            f"checkpoint {path!r}: CRC mismatch on array "
                            f"{name!r} (stored {stored:#010x}, computed "
                            f"{actual:#010x})"
                        )
            return {
                "params": params,
                "step_num": int(data["step_num"]),
                "pool": float(data["pool"]),
                "seed": int(data["seed"]),
                "seed_gids": seed_gids,
                "arrays": arrays,
            }
    except (CheckpointCorruptError, FileNotFoundError, ValueError):
        raise
    except (
        KeyError, OSError, EOFError, zlib.error, zipfile.BadZipFile
    ) as err:
        raise CheckpointCorruptError(
            f"checkpoint {path!r} is unreadable: {err}"
        ) from err


def load_snapshot(path: str) -> dict:
    """Read + CRC-verify an on-disk checkpoint into the snapshot-dict
    shape :func:`restore_state` consumes (plus a ``params`` entry).

    The restore half of :func:`save_checkpoint` for callers that build
    their own simulation — the serve runner resumes journal-replayed
    jobs through this.  Raises :class:`CheckpointCorruptError` on any
    corruption mode.
    """
    return _load_payload(path)


def load_checkpoint(path: str, make_sim=None):
    """Restore a simulation from a checkpoint.

    ``make_sim(params, seed, seed_gids)`` builds the implementation to
    resume on (default: the sequential reference).  The restored
    simulation continues bitwise identically to the original run — on any
    implementation — because randomness is keyed by (seed, step, voxel).
    Raises :class:`CheckpointCorruptError` if the file fails CRC
    verification or cannot be decoded.
    """
    snapshot = _load_payload(path)
    if make_sim is None:
        from repro.core.model import SequentialSimCov

        make_sim = lambda p, s, g: SequentialSimCov(p, seed=s, seed_gids=g)
    sim = make_sim(
        snapshot["params"], snapshot["seed"], snapshot["seed_gids"]
    )
    restore_state(sim, snapshot)
    return sim


# -- auto-checkpoint rotation ------------------------------------------------

def auto_checkpoint_path(directory: str, step_num: int) -> str:
    """Canonical on-disk name for a periodic checkpoint at ``step_num``."""
    return os.path.join(directory, f"ckpt_step{step_num:08d}.npz")


def latest_checkpoint(directory: str) -> str | None:
    """Path of the newest auto-checkpoint in ``directory`` (or None)."""
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return None
    found = []
    for entry in entries:
        m = AUTO_CHECKPOINT_PATTERN.match(entry)
        if m:
            found.append((int(m.group(1)), entry))
    if not found:
        return None
    return os.path.join(directory, max(found)[1])


def rotate_checkpoints(directory: str, keep: int) -> list[str]:
    """Delete all but the newest ``keep`` auto-checkpoints in ``directory``.

    Only files matching the ``ckpt_step<NNN>.npz`` pattern are
    considered, sorted by their embedded step number.  Returns the paths
    removed.
    """
    if keep < 1:
        raise ValueError("keep must be >= 1")
    try:
        entries = os.listdir(directory)
    except FileNotFoundError:
        return []
    found = []
    for entry in entries:
        m = AUTO_CHECKPOINT_PATTERN.match(entry)
        if m:
            found.append((int(m.group(1)), entry))
    removed = []
    for _step, entry in sorted(found)[:-keep]:
        target = os.path.join(directory, entry)
        try:
            os.unlink(target)
            removed.append(target)
        except FileNotFoundError:  # concurrent rotation
            pass
    return removed
