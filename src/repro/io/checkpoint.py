"""Checkpoint/restore: implementation-independent simulation snapshots.

Paper-scale SIMCoV runs are multi-hour supercomputer jobs; production use
needs restartable state.  Because this reproduction's randomness is a pure
function of (seed, step, voxel), a checkpoint is just the global voxel
state plus four scalars — and a run can resume on *any* implementation
(sequential, CPU ranks, GPU devices, any decomposition) and continue
bitwise identically to the uninterrupted original.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SimCovParams
from repro.core.state import VoxelBlock

#: Voxel fields captured in a checkpoint.
CHECKPOINT_FIELDS = (
    "epi_state",
    "epi_timer",
    "virions",
    "chemokine",
    "tcell",
    "tcell_tissue_time",
    "tcell_bound_time",
)

#: Format marker for forward compatibility.
FORMAT_VERSION = 1


def _gather(sim, name: str) -> np.ndarray:
    if hasattr(sim, "gather_field"):
        return sim.gather_field(name)
    return getattr(sim.block, name)[sim.block.interior].copy()


def save_checkpoint(path: str, sim) -> None:
    """Snapshot any implementation's state to a ``.npz`` file."""
    import dataclasses
    import os

    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    arrays = {name: _gather(sim, name) for name in CHECKPOINT_FIELDS}
    params_fields = dataclasses.asdict(sim.params)
    np.savez_compressed(
        path,
        format_version=FORMAT_VERSION,
        step_num=sim.step_num,
        pool=sim.pool,
        seed=sim.rng.seed,
        seed_gids=sim.seed_gids,
        params_repr=np.frombuffer(repr(params_fields).encode(), dtype=np.uint8),
        **arrays,
    )


def _scatter_into_blocks(blocks: list[VoxelBlock], arrays: dict) -> None:
    for block in blocks:
        box = block.owned
        gsl = box.slices_from((0,) * box.ndim)
        for name in CHECKPOINT_FIELDS:
            getattr(block, name)[block.interior] = arrays[name][gsl]


def load_checkpoint(path: str, make_sim=None):
    """Restore a simulation from a checkpoint.

    ``make_sim(params, seed, seed_gids)`` builds the implementation to
    resume on (default: the sequential reference).  The restored
    simulation continues bitwise identically to the original run — on any
    implementation — because randomness is keyed by (seed, step, voxel).
    """
    import ast

    with np.load(path) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"checkpoint format {version} != supported {FORMAT_VERSION}"
            )
        params_fields = ast.literal_eval(
            bytes(data["params_repr"]).decode()
        )
        # Tuple fields round-trip through asdict as lists.
        params_fields["dim"] = tuple(params_fields["dim"])
        params = SimCovParams(**params_fields)
        seed = int(data["seed"])
        seed_gids = data["seed_gids"]
        arrays = {name: data[name] for name in CHECKPOINT_FIELDS}
        step_num = int(data["step_num"])
        pool = float(data["pool"])
    if make_sim is None:
        from repro.core.model import SequentialSimCov

        make_sim = lambda p, s, g: SequentialSimCov(p, seed=s, seed_gids=g)
    sim = make_sim(params, seed, seed_gids)
    blocks = sim.blocks if hasattr(sim, "blocks") else [sim.block]
    _scatter_into_blocks(blocks, arrays)
    sim.step_num = step_num
    sim.pool = pool
    return sim
