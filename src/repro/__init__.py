"""repro: a reproduction of *SIMCoV-GPU: Accelerating an Agent-Based Model
for Exascale* (HPDC '24).

The package implements, from scratch and in pure numpy-accelerated Python:

- the full SIMCoV biological model (epithelial state machine, motile T-cell
  agents, diffusing virion and inflammatory-signal fields) — :mod:`repro.core`;
- a UPC++-like PGAS runtime used by the CPU baseline — :mod:`repro.pgas`;
- a CUDA-like multi-GPU device simulator used by the GPU port —
  :mod:`repro.gpusim`;
- the two parallel implementations the paper compares,
  :mod:`repro.simcov_cpu` (active-list + RPC tiebreaks) and
  :mod:`repro.simcov_gpu` (bid tiebreaks, memory tiling, fast reduction);
- a calibrated machine/performance model that converts counted work into
  modeled wall-clock seconds — :mod:`repro.perf`;
- an experiment harness regenerating every table and figure of the paper's
  evaluation — :mod:`repro.experiments`.

Quickstart::

    from repro import SimCovParams, SequentialSimCov

    params = SimCovParams.fast_test(dim=(64, 64), num_infections=4)
    sim = SequentialSimCov(params, seed=1)
    for _ in range(100):
        stats = sim.step()
    print(stats)
"""

__version__ = "1.0.0"

# Public names are imported lazily so that `import repro` stays cheap and the
# substrate subpackages remain independently importable.
_LAZY = {
    "SimCovParams": ("repro.core.params", "SimCovParams"),
    "SequentialSimCov": ("repro.core.model", "SequentialSimCov"),
    "StepStats": ("repro.core.stats", "StepStats"),
    "SimCovCPU": ("repro.simcov_cpu.simulation", "SimCovCPU"),
    "SimCovGPU": ("repro.simcov_gpu.simulation", "SimCovGPU"),
    "GpuVariant": ("repro.simcov_gpu.variants", "GpuVariant"),
    "DistSimCov": ("repro.dist.driver", "DistSimCov"),
    "EnsembleSimCov": ("repro.engine.ensemble", "EnsembleSimCov"),
    "expand_sweep": ("repro.engine.ensemble", "expand_sweep"),
    "get_array_module": ("repro.core.xp", "get_array_module"),
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return __all__
