"""Work accounting for simulated GPU devices.

The ledger records *what the real code would issue* — kernel launches,
voxels processed per kernel category, atomic operations and their
conflicts, reduction traffic, D2D copies — and nothing about host wall
time.  The performance model (:mod:`repro.perf`) is the only consumer.

Work categories follow the paper's Fig 4 breakdown: agent/field updates
("Update Agents") vs statistics reduction ("Reduce Statistics").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class KernelCategory(enum.Enum):
    """Where a kernel's time is attributed in the Fig 4 breakdown."""

    UPDATE_AGENTS = "update_agents"
    REDUCE_STATS = "reduce_stats"
    TILE_SWEEP = "tile_sweep"


@dataclass
class WorkLedger:
    """Counters for one device (or one device's share of a step)."""

    #: Kernel launches by category value.
    launches: dict = field(default_factory=dict)
    #: Voxels processed by kernels, by category value.
    voxels: dict = field(default_factory=dict)
    #: Bytes read+written from global memory, by category value.
    global_bytes: dict = field(default_factory=dict)
    #: Atomic operations issued.
    atomic_ops: int = 0
    #: Atomic operations that contended (same address in one batch).
    atomic_conflicts: int = 0
    #: Elements fed through shared-memory tree reductions.
    reduce_tree_elems: int = 0
    #: Thread blocks participating in tree reductions (one atomic each).
    reduce_tree_blocks: int = 0
    #: D2D copy messages / bytes within a node (NVLink class).
    copies_intra: int = 0
    copy_bytes_intra: int = 0
    #: D2D copy messages / bytes across nodes (network).
    copies_inter: int = 0
    copy_bytes_inter: int = 0
    #: Cross-device reductions (host-coordinated, one per step).
    device_reductions: int = 0

    def record_launch(
        self,
        category: KernelCategory,
        voxels: int,
        bytes_per_voxel: int = 0,
    ) -> None:
        key = category.value
        self.launches[key] = self.launches.get(key, 0) + 1
        self.voxels[key] = self.voxels.get(key, 0) + int(voxels)
        self.global_bytes[key] = (
            self.global_bytes.get(key, 0) + int(voxels) * int(bytes_per_voxel)
        )

    def record_atomics(self, ops: int, conflicts: int) -> None:
        self.atomic_ops += int(ops)
        self.atomic_conflicts += int(conflicts)

    def record_tree_reduction(self, elems: int, blocks: int) -> None:
        self.reduce_tree_elems += int(elems)
        self.reduce_tree_blocks += int(blocks)

    def record_copy(self, nbytes: int, internode: bool) -> None:
        if internode:
            self.copies_inter += 1
            self.copy_bytes_inter += int(nbytes)
        else:
            self.copies_intra += 1
            self.copy_bytes_intra += int(nbytes)

    def record_device_reduction(self) -> None:
        self.device_reductions += 1

    # -- arithmetic -----------------------------------------------------------

    def snapshot(self) -> "WorkLedger":
        """Deep copy for before/after deltas."""
        return WorkLedger(
            launches=dict(self.launches),
            voxels=dict(self.voxels),
            global_bytes=dict(self.global_bytes),
            atomic_ops=self.atomic_ops,
            atomic_conflicts=self.atomic_conflicts,
            reduce_tree_elems=self.reduce_tree_elems,
            reduce_tree_blocks=self.reduce_tree_blocks,
            copies_intra=self.copies_intra,
            copy_bytes_intra=self.copy_bytes_intra,
            copies_inter=self.copies_inter,
            copy_bytes_inter=self.copy_bytes_inter,
            device_reductions=self.device_reductions,
        )

    def minus(self, other: "WorkLedger") -> "WorkLedger":
        """Counter-wise difference (self - other)."""
        return WorkLedger(
            launches={
                k: self.launches.get(k, 0) - other.launches.get(k, 0)
                for k in set(self.launches) | set(other.launches)
            },
            voxels={
                k: self.voxels.get(k, 0) - other.voxels.get(k, 0)
                for k in set(self.voxels) | set(other.voxels)
            },
            global_bytes={
                k: self.global_bytes.get(k, 0) - other.global_bytes.get(k, 0)
                for k in set(self.global_bytes) | set(other.global_bytes)
            },
            atomic_ops=self.atomic_ops - other.atomic_ops,
            atomic_conflicts=self.atomic_conflicts - other.atomic_conflicts,
            reduce_tree_elems=self.reduce_tree_elems - other.reduce_tree_elems,
            reduce_tree_blocks=self.reduce_tree_blocks - other.reduce_tree_blocks,
            copies_intra=self.copies_intra - other.copies_intra,
            copy_bytes_intra=self.copy_bytes_intra - other.copy_bytes_intra,
            copies_inter=self.copies_inter - other.copies_inter,
            copy_bytes_inter=self.copy_bytes_inter - other.copy_bytes_inter,
            device_reductions=self.device_reductions - other.device_reductions,
        )

    def total_launches(self) -> int:
        return sum(self.launches.values())

    def total_voxels(self) -> int:
        return sum(self.voxels.values())
