"""The two statistics-reduction strategies the paper profiles (§3.3).

``atomic_reduce`` models the unoptimized scheme: every thread that updates a
statistic issues an atomicAdd on a global counter.  All ops hit the *same*
address, so the conflict count is maximal — this is what makes the
Unoptimized bar of Fig 4 so tall.

``tree_reduce_device`` models the optimized scheme of Harris [17]: each
thread accumulates a strided subset of voxels in registers, each block
combines its threads through shared memory in log2(block) steps, and one
atomic per *block* lands on the global counter.  Counted work: ``elems``
register accumulations + ``blocks`` global atomics (the shared-memory
traffic is folded into the per-element cost by the perf model).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import Device

#: CUDA launch geometry used by SIMCoV-GPU's reduction kernels.
DEFAULT_BLOCK_SIZE = 256


def atomic_reduce(device: Device, values: np.ndarray) -> float:
    """Reduce by per-element atomics on one global accumulator."""
    flat = np.asarray(values).reshape(-1)
    n = flat.size
    # Every op contends on the single accumulator address.
    device.ledger.record_atomics(ops=n, conflicts=max(0, n - 1))
    return float(flat.sum(dtype=np.float64))


def tree_reduce_device(
    device: Device,
    values: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> float:
    """Shared-memory tree reduction: one atomic per thread block.

    The arithmetic follows the real kernel's combination order (pairwise
    within blocks) so float results are reproducible and match the paper's
    kernel bit-for-bit on integer statistics.
    """
    if block_size <= 0 or block_size & (block_size - 1):
        raise ValueError(f"block_size must be a power of two, got {block_size}")
    flat = np.asarray(values).reshape(-1).astype(np.float64)
    n = flat.size
    if n == 0:
        device.ledger.record_tree_reduction(0, 0)
        return 0.0
    blocks = -(-n // block_size)
    padded = np.zeros(blocks * block_size, dtype=np.float64)
    padded[:n] = flat
    per_block = padded.reshape(blocks, block_size)
    # Pairwise tree within each block: log2(block_size) strided halvings.
    width = block_size
    while width > 1:
        half = width // 2
        per_block[:, :half] += per_block[:, half:width]
        width = half
    block_sums = per_block[:, 0]
    device.ledger.record_tree_reduction(elems=n, blocks=blocks)
    # One atomicAdd per block on the global accumulator.
    device.ledger.record_atomics(ops=blocks, conflicts=max(0, blocks - 1))
    return float(block_sums.sum(dtype=np.float64))
