"""A cluster of simulated GPUs grouped into nodes.

Perlmutter GPU nodes host 4 A100s (paper §4); halo copies between devices
on the same node ride NVLink-class links, copies between nodes cross the
network — the perf model charges them very differently, which is what
makes strong scaling saturate once the job spans many nodes (Fig 6).
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import A100_BYTES, Device
from repro.gpusim.ledger import WorkLedger


class GpuCluster:
    """``num_devices`` GPUs packed ``gpus_per_node`` to a node.

    All devices share one :class:`WorkLedger` by default (per-step deltas
    are what the perf model consumes); pass ``shared_ledger=False`` for
    per-device ledgers (used by load-balance diagnostics).
    """

    def __init__(
        self,
        num_devices: int,
        gpus_per_node: int = 4,
        capacity_bytes: int = A100_BYTES,
        shared_ledger: bool = True,
    ):
        if num_devices <= 0:
            raise ValueError(f"num_devices must be positive, got {num_devices}")
        if gpus_per_node <= 0:
            raise ValueError(f"gpus_per_node must be positive, got {gpus_per_node}")
        self.gpus_per_node = int(gpus_per_node)
        self.ledger = WorkLedger() if shared_ledger else None
        self.devices = [
            Device(
                d,
                node=d // gpus_per_node,
                capacity_bytes=capacity_bytes,
                ledger=self.ledger,
            )
            for d in range(num_devices)
        ]

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def num_nodes(self) -> int:
        return -(-self.num_devices // self.gpus_per_node)

    def internode(self, src: int, dst: int) -> bool:
        return self.devices[src].node != self.devices[dst].node

    # -- copy engine --------------------------------------------------------

    def copy(self, src: int, dst: int, nbytes: int) -> None:
        """Account one D2D copy (the halo exchanger moves the actual data)."""
        ledger = self.devices[dst].ledger
        ledger.record_copy(nbytes, internode=self.internode(src, dst))

    def halo_message_hook(self):
        """Adapter for :class:`repro.grid.halo.HaloExchanger`'s on_message."""

        def hook(src_rank: int, dst_rank: int, nbytes: int) -> None:
            self.copy(src_rank, dst_rank, nbytes)

        return hook

    # -- collectives ------------------------------------------------------------

    def reduce_scalar(self, per_device_values) -> float:
        """Cross-device reduction of one statistic: each device's partial is
        combined on the host (UPC++ directive in the paper).  Deterministic
        device order."""
        vals = [float(v) for v in per_device_values]
        if len(vals) != self.num_devices:
            raise ValueError(
                f"need {self.num_devices} values, got {len(vals)}"
            )
        self.devices[0].ledger.record_device_reduction()
        return float(np.sum(np.asarray(vals, dtype=np.float64)))
