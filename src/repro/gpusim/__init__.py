"""A multi-GPU device simulator (CUDA analog) for SIMCoV-GPU.

The paper's GPU port is structured as a sequence of kernels over per-device
subdomains, separated by device-to-device halo copies (Fig 2).  This
package reproduces that execution model on the host:

- :class:`~repro.gpusim.device.Device` owns named arrays ("global memory"),
  a kernel-launch API, and a :class:`~repro.gpusim.ledger.WorkLedger`
  counting every launch, voxel, byte, and atomic — the perf model's input;
- :mod:`repro.gpusim.atomics` models atomic add/max with conflict counting
  (atomics serialize under contention, the §3.3 motivation);
- :mod:`repro.gpusim.reduction` implements both statistics-reduction
  strategies the paper profiles: scattered atomics vs the shared-memory
  tree reduction of Harris [17];
- :class:`~repro.gpusim.cluster.GpuCluster` groups devices into nodes and
  routes halo copies through intra-node (NVLink-class) or inter-node
  (network) channels with separate accounting.

Kernels execute as vectorized numpy over (active) tiles — the arithmetic is
real, the *timing* is modeled from the ledger.
"""

from repro.gpusim.ledger import WorkLedger, KernelCategory
from repro.gpusim.device import Device
from repro.gpusim.cluster import GpuCluster
from repro.gpusim.atomics import atomic_add, atomic_max
from repro.gpusim.reduction import atomic_reduce, tree_reduce_device
from repro.gpusim.stream import Engine, Event, Stream, StreamSchedule

__all__ = [
    "WorkLedger",
    "KernelCategory",
    "Device",
    "GpuCluster",
    "atomic_add",
    "atomic_max",
    "atomic_reduce",
    "tree_reduce_device",
    "Engine",
    "Event",
    "Stream",
    "StreamSchedule",
]
