"""Atomic operations with contention accounting.

GPU atomics serialize when multiple threads hit the same address; the paper
(§3.3) found that scattering atomic statistic updates through the update
kernels was slow enough that a full-grid tree reduction wins.  These
helpers perform the arithmetic exactly (``np.add.at``/``np.maximum.at``
are unbuffered, i.e. true read-modify-write semantics) and report both the
operation count and the conflict count to the ledger.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import Device


def _conflicts(indices: np.ndarray) -> int:
    """Number of ops that serialized behind another op on the same address."""
    if indices.size == 0:
        return 0
    flat = indices.reshape(indices.shape[0], -1) if indices.ndim > 1 else indices
    if flat.ndim > 1:
        # Composite (multi-dim) indices: hash rows.
        flat = flat[:, 0] * np.int64(0x9E3779B9) + flat[:, -1]
    _, counts = np.unique(flat, return_counts=True)
    return int((counts - 1).sum())


def atomic_add(device: Device, array: np.ndarray, indices, values) -> None:
    """atomicAdd over ``array.flat[indices]``."""
    idx = np.asarray(indices)
    np.add.at(array.reshape(-1), idx, values)
    device.ledger.record_atomics(idx.size, _conflicts(idx))


def atomic_max(device: Device, array: np.ndarray, indices, values) -> None:
    """atomicMax over ``array.flat[indices]`` — the §3.1 bid write."""
    idx = np.asarray(indices)
    np.maximum.at(array.reshape(-1), idx, values)
    device.ledger.record_atomics(idx.size, _conflicts(idx))
