"""Streams and events: modeling copy/compute overlap.

Related work (§5) highlights latency hiding for multi-GPU ABMs (Aaby et
al. [3]); SIMCoV-GPU's fixed kernel/copy schedule (Fig 2) is fully
serialized, and §6.1 floats asynchronous updates as future work.  This
module provides the CUDA-stream abstraction needed to *model* such
overlap: per-device streams whose operations serialize within a stream
but overlap across streams, subject to engine contention (one compute
engine, one copy engine — the A100's practical shape for this workload)
and event dependencies.

Makespans are computed by a deterministic discrete-event schedule: each
operation starts when its stream predecessor finished, its engine is
free, and all awaited events have fired.  The latency-hiding ablation
(benchmarks/test_ablation_latency_hiding.py) uses this to bound what an
overlapped SIMCoV-GPU step schedule could save.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class Engine(enum.Enum):
    """Hardware engines; operations on different engines may overlap."""

    COMPUTE = "compute"
    COPY = "copy"
    #: Host-side work (e.g. UPC++ progress): its own resource.
    HOST = "host"


@dataclass(frozen=True)
class Event:
    """A marker recorded on a stream; others can wait on it."""

    event_id: int


@dataclass
class _Op:
    stream_id: int
    engine: Engine
    seconds: float
    waits: tuple[Event, ...]
    records: Event | None
    label: str = ""
    #: Filled by scheduling.
    start: float = field(default=0.0)
    end: float = field(default=0.0)


class StreamSchedule:
    """A device's stream program + its modeled timeline.

    Usage::

        sched = StreamSchedule()
        s0, s1 = sched.stream(), sched.stream()
        interior = s0.compute(0.010, label="interior kernels")
        halo = s1.copy(0.004, label="halo exchange")
        s0.wait(halo)
        s0.compute(0.002, label="boundary kernels")
        makespan = sched.makespan()
    """

    def __init__(self):
        self._ops: list[_Op] = []
        self._streams: list["Stream"] = []
        self._event_counter = itertools.count()
        self._scheduled = False

    def stream(self) -> "Stream":
        s = Stream(self, len(self._streams))
        self._streams.append(s)
        return s

    def _enqueue(self, op: _Op) -> None:
        self._scheduled = False
        self._ops.append(op)

    def _new_event(self) -> Event:
        return Event(next(self._event_counter))

    # -- scheduling -----------------------------------------------------------

    def _schedule(self) -> None:
        if self._scheduled:
            return
        stream_avail: dict[int, float] = {}
        engine_avail: dict[Engine, float] = {}
        event_time: dict[int, float] = {}
        # Ops are scheduled in enqueue order (hardware queues are FIFO per
        # engine); event waits may delay a start beyond both availabilities.
        for op in self._ops:
            start = max(
                stream_avail.get(op.stream_id, 0.0),
                engine_avail.get(op.engine, 0.0),
            )
            for ev in op.waits:
                if ev.event_id not in event_time:
                    raise ValueError(
                        f"operation {op.label!r} waits on event "
                        f"{ev.event_id} recorded later (or never) — "
                        "deadlock in the stream program"
                    )
                start = max(start, event_time[ev.event_id])
            op.start = start
            op.end = start + op.seconds
            stream_avail[op.stream_id] = op.end
            engine_avail[op.engine] = op.end
            if op.records is not None:
                event_time[op.records.event_id] = op.end
        self._scheduled = True

    def makespan(self) -> float:
        """Completion time of the whole program."""
        if not self._ops:
            return 0.0
        self._schedule()
        return max(op.end for op in self._ops)

    def timeline(self) -> list[tuple[str, str, float, float]]:
        """(label, engine, start, end) per op, schedule order."""
        self._schedule()
        return [
            (op.label, op.engine.value, op.start, op.end) for op in self._ops
        ]

    def busy_seconds(self, engine: Engine) -> float:
        self._schedule()
        return sum(op.seconds for op in self._ops if op.engine is engine)


class Stream:
    """One in-order operation queue."""

    def __init__(self, schedule: StreamSchedule, stream_id: int):
        self._schedule = schedule
        self.stream_id = stream_id
        self._pending_waits: list[Event] = []

    def _push(self, engine: Engine, seconds: float, label: str) -> Event:
        if seconds < 0:
            raise ValueError(f"operation duration must be >= 0: {seconds}")
        ev = self._schedule._new_event()
        self._schedule._enqueue(
            _Op(
                self.stream_id, engine, float(seconds),
                tuple(self._pending_waits), ev, label,
            )
        )
        self._pending_waits = []
        return ev

    def compute(self, seconds: float, label: str = "compute") -> Event:
        """Enqueue a kernel; returns an event fired at its completion."""
        return self._push(Engine.COMPUTE, seconds, label)

    def copy(self, seconds: float, label: str = "copy") -> Event:
        """Enqueue a D2D/H2D copy."""
        return self._push(Engine.COPY, seconds, label)

    def host(self, seconds: float, label: str = "host") -> Event:
        """Enqueue host-side work (progress, coordination)."""
        return self._push(Engine.HOST, seconds, label)

    def wait(self, event: Event) -> None:
        """The next enqueued operation also waits for ``event``."""
        self._pending_waits.append(event)
