"""A simulated GPU device: global memory + kernel-launch API."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gpusim.ledger import KernelCategory, WorkLedger

#: Default device memory capacity: an NVIDIA A100-40GB (paper §4 hardware).
A100_BYTES = 40 * 1024**3


class Device:
    """One GPU.

    Owns named arrays (its "global memory"), enforces a capacity limit, and
    funnels all computation through :meth:`launch` so the ledger sees every
    kernel the way a CUDA profiler would.

    Parameters
    ----------
    device_id:
        Global device index.
    node:
        Hosting node index (Perlmutter packs 4 A100s per node).
    capacity_bytes:
        Allocation budget; exceeding it raises ``MemoryError`` — SIMCoV's
        strong-scaling base case was chosen as "approximately the number of
        voxels that fit into the A100s' available memory" (§4.2), which the
        perf model reproduces through this limit.
    """

    def __init__(
        self,
        device_id: int,
        node: int = 0,
        capacity_bytes: int = A100_BYTES,
        ledger: WorkLedger | None = None,
    ):
        self.device_id = int(device_id)
        self.node = int(node)
        self.capacity_bytes = int(capacity_bytes)
        self.ledger = ledger if ledger is not None else WorkLedger()
        self.arrays: dict[str, np.ndarray] = {}

    # -- memory ---------------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return sum(a.nbytes for a in self.arrays.values())

    def allocate(self, name: str, shape, dtype, fill=0) -> np.ndarray:
        """cudaMalloc analog: named, capacity-checked allocation."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already allocated on device")
        arr = np.full(shape, fill, dtype=dtype)
        if self.allocated_bytes + arr.nbytes > self.capacity_bytes:
            raise MemoryError(
                f"device {self.device_id}: allocating {arr.nbytes} bytes for "
                f"{name!r} exceeds capacity {self.capacity_bytes}"
            )
        self.arrays[name] = arr
        return arr

    def adopt(self, name: str, arr: np.ndarray) -> np.ndarray:
        """Register an externally-created array against this device's
        capacity (used when a host-side structure like a VoxelBlock owns
        the buffers but they live in device memory conceptually)."""
        if name in self.arrays:
            raise ValueError(f"array {name!r} already allocated on device")
        if self.allocated_bytes + arr.nbytes > self.capacity_bytes:
            raise MemoryError(
                f"device {self.device_id}: adopting {arr.nbytes} bytes for "
                f"{name!r} exceeds capacity {self.capacity_bytes}"
            )
        self.arrays[name] = arr
        return arr

    def free(self, name: str) -> None:
        del self.arrays[name]

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    # -- kernels -----------------------------------------------------------------

    def launch(
        self,
        category: KernelCategory,
        voxels: int,
        fn: Callable[[], None] | None = None,
        bytes_per_voxel: int = 0,
    ):
        """Launch one kernel.

        ``voxels`` is the number of grid points the kernel covers (for tiled
        kernels: the active-tile voxel count, which is the whole point of
        §3.2).  ``fn`` performs the actual vectorized computation; its
        return value is passed through.
        """
        self.ledger.record_launch(category, voxels, bytes_per_voxel)
        if fn is not None:
            return fn()
        return None
