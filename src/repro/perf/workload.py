"""Workload traces: where simulation activity lives, step by step.

A :class:`WorkloadTrace` records, from a *real* simulation run, the number
of active voxels in each cell of a coarse supergrid at sampled steps.
Traces drive the projector directly (same-scale evaluations) and calibrate
the :class:`~repro.perf.activity.DiskActivityModel` used for paper-scale
projections (the FOI-driven radial-growth structure of SIMCoV activity).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams


class WorkloadTrace:
    """Per-step supercell active-voxel counts from a real run.

    Attributes
    ----------
    dim:
        Grid extents the trace was recorded at.
    supergrid:
        Cells per dimension of the coarse activity map.
    sample_steps:
        The step numbers at which counts were recorded.
    counts:
        Array (samples, supergrid, supergrid): active voxels per cell.
    num_steps:
        Total steps of the traced run (samples weight ``stride`` steps
        each when integrating runtimes).
    """

    def __init__(self, dim, supergrid, sample_steps, counts, num_steps,
                 num_infections):
        self.dim = tuple(dim)
        self.supergrid = int(supergrid)
        self.sample_steps = np.asarray(sample_steps, dtype=np.int64)
        self.counts = np.asarray(counts, dtype=np.float64)
        self.num_steps = int(num_steps)
        self.num_infections = int(num_infections)

    # -- recording -------------------------------------------------------------

    @classmethod
    def record(
        cls,
        params: SimCovParams,
        seed: int = 0,
        supergrid: int = 32,
        stride: int = 4,
        sim: SequentialSimCov | None = None,
    ) -> "WorkloadTrace":
        """Run the sequential model and record its activity map.

        2D only (the paper's evaluation is 2D).  ``stride`` controls the
        sampling interval; each sample stands for ``stride`` steps in
        runtime integration.
        """
        if len(params.dim) != 2:
            raise ValueError("traces are recorded from 2D simulations")
        if sim is None:
            sim = SequentialSimCov(params, seed=seed)
        edges = [
            np.linspace(0, params.dim[d], supergrid + 1).astype(np.int64)
            for d in range(2)
        ]
        samples = []
        steps = []
        for t in range(params.num_steps):
            sim.step()
            if t % stride == 0:
                mask = sim.block.activity_mask(params.min_chemokine)
                counts = np.add.reduceat(
                    np.add.reduceat(mask.astype(np.float64), edges[0][:-1], axis=0),
                    edges[1][:-1],
                    axis=1,
                )
                samples.append(counts)
                steps.append(t)
        return cls(
            params.dim, supergrid, steps, np.stack(samples), params.num_steps,
            params.num_infections,
        )

    # -- provider protocol (shared with DiskActivityModel) ---------------------------

    @property
    def num_samples(self) -> int:
        return len(self.sample_steps)

    def counts_at(self, i: int) -> np.ndarray:
        """Supercell active-voxel counts at sample ``i``."""
        return self.counts[i]

    def sample_weight(self, i: int) -> int:
        """Steps this sample stands for."""
        if i + 1 < self.num_samples:
            return int(self.sample_steps[i + 1] - self.sample_steps[i])
        return int(self.num_steps - self.sample_steps[i])

    # -- summaries --------------------------------------------------------------------

    def active_voxels(self) -> np.ndarray:
        """Total active voxels per sample."""
        return self.counts.sum(axis=(1, 2))

    def active_fraction(self) -> np.ndarray:
        total = self.dim[0] * self.dim[1]
        return self.active_voxels() / total

    def growth_speed(self) -> float:
        """Radial growth speed of a focus, in voxels/step.

        SIMCoV activity grows as N disks of radius ~ v*t until merging;
        fitting sqrt(active/(N*pi)) against t over the pre-saturation
        window estimates v — the one dynamic constant the paper-scale
        activity model needs.
        """
        active = self.active_voxels()
        frac = self.active_fraction()
        # Pre-saturation, post-onset window.
        ok = (frac > 0.002) & (frac < 0.35)
        if ok.sum() < 3:
            ok = active > 0
        if ok.sum() < 2:
            return 0.5
        t = self.sample_steps[ok].astype(np.float64)
        r = np.sqrt(active[ok] / (self.num_infections * np.pi))
        # Least-squares slope through the origin-ish (allow intercept).
        a = np.vstack([t, np.ones_like(t)]).T
        slope, _ = np.linalg.lstsq(a, r, rcond=None)[0]
        return float(max(1e-3, slope))
