"""Pricing counted work from directly-executed simulations.

These functions convert one step's ledger/comm deltas into modeled
seconds.  They are the ground truth the trace-based projector must agree
with (tested), and they power the Fig 4 optimization-breakdown bench,
whose two bars are exactly :class:`GpuStepCost.update_seconds` and
:class:`GpuStepCost.reduce_seconds`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.ledger import WorkLedger
from repro.perf.machine import MachineModel

_NS = 1e-9
_US = 1e-6
_GB = 1e9


def cpu_step_seconds(
    machine: MachineModel,
    active_per_rank: list[int],
    comm_delta: dict,
    nranks: int,
) -> float:
    """Modeled seconds for one SIMCoV-CPU step.

    Compute time is the *maximum* over ranks (bulk-synchronous steps wait
    for the slowest rank — the load-imbalance term); communication is the
    per-rank share of RPC overheads and payload, plus the allreduce tree.
    """
    compute = max(active_per_rank, default=0) * machine.cpu_voxel_ns * _NS
    rpcs = comm_delta.get("rpcs", 0)
    rpc_bytes = comm_delta.get("rpc_bytes", 0)
    inter = comm_delta.get("rpcs_internode", 0)
    comm = (
        (rpcs / max(1, nranks)) * machine.cpu_rpc_us * _US
        + (inter / max(1, nranks)) * machine.cpu_rpc_internode_us * _US
        + (rpc_bytes / max(1, nranks)) / (machine.cpu_bw_GBps * _GB)
    )
    rounds = math.ceil(math.log2(nranks)) if nranks > 1 else 0
    reduce = (
        comm_delta.get("reductions", 0)
        * rounds
        * machine.cpu_allreduce_round_us
        * _US
    )
    return compute + comm + reduce


@dataclass(frozen=True)
class GpuStepCost:
    """One GPU step's modeled time, split by the Fig 4 categories."""

    update_seconds: float
    reduce_seconds: float
    sweep_seconds: float
    comm_seconds: float
    coord_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.update_seconds
            + self.reduce_seconds
            + self.sweep_seconds
            + self.comm_seconds
            + self.coord_seconds
        )


def gpu_step_seconds(
    machine: MachineModel,
    ledger: WorkLedger,
    active_per_device: list[int],
    num_devices: int,
    tiling: bool,
) -> GpuStepCost:
    """Modeled seconds for one SIMCoV-GPU step from its ledger delta.

    The shared ledger holds totals across devices; per-device time is the
    mean share scaled by the load-imbalance factor max/mean (devices wait
    at every halo wave for the busiest neighbor).
    """
    nd = max(1, num_devices)
    mean_active = sum(active_per_device) / nd if active_per_device else 0.0
    imbalance = (
        max(active_per_device) / mean_active
        if mean_active > 0
        else 1.0
    )
    locality = machine.gpu_tiling_locality if tiling else 1.0

    launches = ledger.total_launches() / nd
    update_voxels = ledger.voxels.get("update_agents", 0) / nd
    update = (
        launches * machine.gpu_launch_us * _US
        + update_voxels * imbalance * machine.gpu_voxel_ns * locality * _NS
    )

    # Reduction: tree elements and/or raw atomics (the unoptimized path).
    # Locality applies to both paths — the Fig 4 observation that tiling
    # speeds up reductions too, "likely due to the enhanced data locality
    # reducing slow memory accesses as the reduction kernel sweeps" (§3.4).
    reduce = (
        (ledger.reduce_tree_elems / nd)
        * machine.gpu_reduce_elem_ns
        * locality
        * _NS
        + (ledger.atomic_ops / nd) * machine.gpu_atomic_ns * locality * _NS
        + (ledger.atomic_conflicts / nd)
        * machine.gpu_atomic_conflict_ns
        * locality
        * _NS
    )

    sweep = (
        (ledger.voxels.get("tile_sweep", 0) / nd)
        * machine.gpu_sweep_voxel_ns
        * _NS
    )

    comm = (
        (ledger.copies_intra / nd) * machine.gpu_copy_lat_intra_us * _US
        + (ledger.copy_bytes_intra / nd) / (machine.gpu_copy_bw_intra_GBps * _GB)
        + (ledger.copies_inter / nd) * machine.gpu_copy_lat_inter_us * _US
        + (ledger.copy_bytes_inter / nd) / (machine.gpu_copy_bw_inter_GBps * _GB)
    )

    rounds = math.ceil(math.log2(nd)) if nd > 1 else 0
    coord = ledger.device_reductions * (
        machine.gpu_coord_us + rounds * machine.gpu_net_round_us
    ) * _US
    return GpuStepCost(update, reduce, sweep, comm, coord)


def gpu_memory_per_device(machine: MachineModel, voxels: int, devices: int) -> int:
    """Device bytes for an even decomposition (feasibility checks: the
    paper's strong-scaling base was sized to fill the A100s, §4.2)."""
    return int(voxels / max(1, devices)) * machine.gpu_bytes_per_voxel


def fits_gpu_memory(machine: MachineModel, voxels: int, devices: int) -> bool:
    return gpu_memory_per_device(machine, voxels, devices) <= machine.gpu_capacity_bytes
