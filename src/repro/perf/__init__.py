"""Performance modeling: counted work -> modeled wall-clock seconds.

This reproduction has no Perlmutter, so runtimes are *modeled*, never
guessed: the simulations count exactly the work a native implementation
would issue (kernel launches, voxels touched, atomics + conflicts,
reduction traffic, halo bytes by locality, RPCs), and a calibrated
:class:`~repro.perf.machine.MachineModel` converts counts into seconds.

Two evaluation paths:

- :mod:`repro.perf.costs` prices the ledgers of directly-executed
  simulations (used by tests and the Fig 4 profiling bench);
- :mod:`repro.perf.projector` evaluates arbitrary (implementation,
  resource) points of the scaling experiments from a
  :class:`~repro.perf.workload.WorkloadTrace` — a per-step map of where
  simulation activity lives, recorded from a real run.  Load imbalance,
  active-fraction growth, halo volume and collective depth all emerge
  from the trace and the decomposition geometry rather than being
  curve-fit.

Calibration (see ``machine.PERLMUTTER``) pins the model to the paper's
base configuration; every scaling *shape* then follows from counted work.
"""

from repro.perf.machine import MachineModel, PERLMUTTER
from repro.perf.costs import cpu_step_seconds, gpu_step_seconds, GpuStepCost
from repro.perf.workload import WorkloadTrace
from repro.perf.projector import project_cpu_runtime, project_gpu_runtime

__all__ = [
    "MachineModel",
    "PERLMUTTER",
    "cpu_step_seconds",
    "gpu_step_seconds",
    "GpuStepCost",
    "WorkloadTrace",
    "project_cpu_runtime",
    "project_gpu_runtime",
]
