"""Sensitivity analysis of the performance model.

The scaling conclusions (Figs 6-8) should be *shape-robust*: they must
follow from the structure of counted work (active fractions, halo
surfaces, collective depths), not from the particular calibrated
constants.  This module perturbs every machine-model constant and checks
which qualitative findings survive:

- strong scaling: speedup decreases monotonically with device count;
- weak scaling: the GPU advantage is sustained (> 1x everywhere);
- FOI scaling: speedup increases monotonically with FOI.

``shape_robustness`` returns the fraction of perturbed models preserving
each finding — reported by the bench and quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dc_fields

from repro.core.params import SimCovParams
from repro.perf.activity import DiskActivityModel
from repro.perf.machine import MachineModel, PAPER_SCALE_GROWTH_SPEED
from repro.perf.projector import project_cpu_runtime, project_gpu_runtime

#: Constants subjected to perturbation (all float cost knobs).
PERTURBED_FIELDS = (
    "cpu_voxel_ns",
    "cpu_rpc_us",
    "cpu_allreduce_round_us",
    "gpu_launch_us",
    "gpu_voxel_ns",
    "gpu_reduce_elem_ns",
    "gpu_copy_lat_inter_us",
    "gpu_coord_us",
    "gpu_net_round_us",
)


@dataclass(frozen=True)
class ShapeFindings:
    """Truth values of the paper's qualitative findings for one model."""

    strong_monotone_decline: bool
    strong_gpu_wins_at_base: bool
    weak_sustained_advantage: bool
    foi_monotone_growth: bool

    def all_hold(self) -> bool:
        return (
            self.strong_monotone_decline
            and self.strong_gpu_wins_at_base
            and self.weak_sustained_advantage
            and self.foi_monotone_growth
        )


def _speedups(machine: MachineModel, configs, samples: int) -> list[float]:
    out = []
    for (dim, foi), (gpus, cores) in configs:
        params = SimCovParams.default_covid(dim=dim, num_infections=foi)
        model = DiskActivityModel(
            params, seed=1, speed=PAPER_SCALE_GROWTH_SPEED,
            supergrid=48, samples=samples,
        )
        cpu = project_cpu_runtime(machine, model, cores).total_seconds
        gpu = project_gpu_runtime(machine, model, gpus).total_seconds
        out.append(cpu / gpu)
    return out


def evaluate_shape(machine: MachineModel, samples: int = 16) -> ShapeFindings:
    """Evaluate the qualitative findings under one machine model."""
    strong = _speedups(
        machine,
        [(((10_000, 10_000), 16), (g, g * 32)) for g in (4, 16, 64)],
        samples,
    )
    weak = _speedups(
        machine,
        [
            (((10_000, 10_000), 16), (4, 128)),
            (((20_000, 20_000), 64), (16, 512)),
            (((40_000, 40_000), 256), (64, 2048)),
        ],
        samples,
    )
    foi = _speedups(
        machine,
        [(((20_000, 20_000), f), (16, 512)) for f in (64, 256, 1024)],
        samples,
    )
    return ShapeFindings(
        strong_monotone_decline=strong[0] > strong[1] > strong[2],
        strong_gpu_wins_at_base=strong[0] > 1.5,
        weak_sustained_advantage=min(weak) > 1.0,
        foi_monotone_growth=foi[0] < foi[1] < foi[2],
    )


def shape_robustness(
    factors=(0.5, 2.0),
    samples: int = 16,
    max_models: int | None = None,
) -> dict:
    """Perturb each constant by the given factors (one at a time) and
    report, per finding, the fraction of perturbed models preserving it.
    """
    base = MachineModel()
    models = []
    for name in PERTURBED_FIELDS:
        for f in factors:
            models.append(base.with_(**{name: getattr(base, name) * f}))
    if max_models is not None:
        models = models[:max_models]
    counts = {f.name: 0 for f in dc_fields(ShapeFindings)}
    for m in models:
        findings = evaluate_shape(m, samples)
        for f in dc_fields(ShapeFindings):
            counts[f.name] += bool(getattr(findings, f.name))
    n = len(models)
    return {name: c / n for name, c in counts.items()} | {"models": n}
