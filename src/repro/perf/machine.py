"""Machine models: per-operation costs for the target systems.

``PERLMUTTER`` models the paper's evaluation platform (§4): AMD Milan CPU
nodes (128 cores) and GPU nodes with 4 NVIDIA A100s, Slingshot
interconnect.  Constants are calibrated so the *base configuration* of the
paper's strong-scaling experiment (10,000^2 voxels, 16 FOI, 4 GPUs vs 128
cores) lands near the reported ~5x speedup; all scaling behaviour then
follows from counted work.  Rationale for magnitudes:

- ``cpu_voxel_ns`` ~ hundreds of ns: one active voxel's per-step work
  (agent updates, stencil, RNG, active-list bookkeeping) on one core;
- ``gpu_voxel_ns`` ~ sub-ns per voxel per kernel pass: A100 HBM streams
  ~1.5 TB/s and each pass touches tens of bytes per voxel;
- atomics: an uncontended device atomic retires in ~10 ns; every
  *conflict* serializes behind another op (§3.3's motivation);
- copies: NVLink-class intra-node vs network inter-node latency/bandwidth;
- ``gpu_coord_us``: host-side per-collective overhead (kernel sync +
  UPC++ progress), the dominant fixed cost that saturates strong scaling
  (Fig 6) once per-device work shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineModel:
    """Per-operation costs.  Times in the unit noted per field."""

    # -- CPU (per core) -----------------------------------------------------
    #: ns of one core processing one active voxel for one step.
    cpu_voxel_ns: float = 2280.0
    #: us of overhead per RPC message (injection + handler dispatch).
    cpu_rpc_us: float = 1.0
    #: Extra us per RPC that crosses nodes.
    cpu_rpc_internode_us: float = 1.5
    #: GB/s effective payload bandwidth per rank.
    cpu_bw_GBps: float = 2.0
    #: us per tree-reduction round (allreduce latency).
    cpu_allreduce_round_us: float = 20.0

    # -- GPU (per device) -----------------------------------------------------
    #: us per kernel launch.
    gpu_launch_us: float = 6.0
    #: ns per voxel per update-kernel pass.
    gpu_voxel_ns: float = 0.68
    #: ns per voxel scanned by the tile-activation sweep (pure streaming).
    gpu_sweep_voxel_ns: float = 0.06
    #: ns per element fed through the shared-memory tree reduction.
    gpu_reduce_elem_ns: float = 0.09
    #: ns per (uncontended) device atomic.
    gpu_atomic_ns: float = 10.0
    #: ns of serialization per conflicting atomic (same address).
    gpu_atomic_conflict_ns: float = 6.0
    #: Relative memory-traffic factor when tiling improves locality
    #: (applies to update and reduce passes; Fig 4's observation that
    #: tiling also speeds reductions).
    gpu_tiling_locality: float = 0.62
    #: D2D copy latency (us) and bandwidth (GB/s), intra-node (NVLink).
    gpu_copy_lat_intra_us: float = 8.0
    gpu_copy_bw_intra_GBps: float = 80.0
    #: D2D copy latency (us) and bandwidth (GB/s), inter-node (network).
    gpu_copy_lat_inter_us: float = 25.0
    gpu_copy_bw_inter_GBps: float = 10.0
    #: us of host coordination per cross-device collective (plus one
    #: network latency per tree round).
    gpu_coord_us: float = 10.0
    gpu_net_round_us: float = 54.0

    # -- memory (for feasibility checks) --------------------------------------
    #: Estimated device bytes per voxel (state + intents + scratch + halo
    #: and communication buffers, as in the CUDA implementation).
    gpu_bytes_per_voxel: int = 96
    gpu_capacity_bytes: int = 40 * 1024**3

    def with_(self, **kw) -> "MachineModel":
        return replace(self, **kw)


#: The paper's evaluation platform.
PERLMUTTER = MachineModel()

#: GPUs per node on Perlmutter GPU nodes / CPU cores per CPU node (§4).
GPUS_PER_NODE = 4
CORES_PER_NODE = 128

#: The paper's §6 peak-throughput ratio: 75 TFLOPS (GPU node) vs 5 TFLOPS
#: (CPU node) => the ideal 15.6x speedup ceiling quoted for Fig 8.
IDEAL_NODE_SPEEDUP = 75.0 / 4.8

#: Radial activity growth speed (voxels/step) for paper-scale projections
#: with the default COVID parameterization.  Calibrated jointly with the
#: MachineModel against the paper's reported speedup points (DESIGN.md §2:
#: we cannot execute 10,000^2-voxel, 33,120-step runs in Python); the
#: small-scale analog is *measured* from real runs via
#: WorkloadTrace.growth_speed and validated in tests/perf.
PAPER_SCALE_GROWTH_SPEED = 0.015
