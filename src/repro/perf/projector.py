"""Analytic evaluation of scaling-experiment configurations.

Given an activity provider (a recorded :class:`WorkloadTrace` or a
synthesized :class:`DiskActivityModel`) and a machine model, the projector
computes the modeled runtime of SIMCoV-CPU at R ranks or SIMCoV-GPU at G
devices — reproducing what the paper measured on Perlmutter for Figs 6-8.

The projector prices exactly the operations the executable implementations
issue (tests cross-check it against their ledgers): per-step kernel/wave
structure, per-rank work from the activity map apportioned to the block
decomposition (load imbalance included — bulk-synchronous steps wait for
the busiest rank), halo strips by neighbor locality, and log-depth
collectives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.grid.decomposition import Decomposition, _split_extent
from repro.grid.spec import GridSpec
from repro.perf.machine import CORES_PER_NODE, GPUS_PER_NODE, MachineModel
from repro.simcov_gpu.variants import GpuVariant

_NS = 1e-9
_US = 1e-6
_GB = 1e9

#: Update-kernel passes over the active set per step (age, intents,
#: assign-winners, move+bind, epithelial+production, diffusion).
GPU_UPDATE_PASSES = 6
#: Kernel launches per device per step (update passes + extravasation +
#: reduction kernel).
GPU_LAUNCHES_PER_STEP = GPU_UPDATE_PASSES + 2
#: Per-field halo exchanges per step: wave A (4 state fields) + wave B
#: (5 intent/bid fields) + wave C (2 concentration fields).
GPU_EXCHANGES_PER_STEP = 11
#: Halo payload bytes per boundary voxel per step, summed over waves
#: (A: int8+int8+int32+int32 = 10; B: 2*int8 + 3*uint64 = 26; C: 2*f64 = 16).
GPU_HALO_BYTES_PER_VOXEL = 52
#: Cross-device scalar reductions per step (8 stats + 3 counters).
GPU_REDUCTIONS_PER_STEP = 11
#: Reduced statistic fields swept by the reduction kernel.
STAT_FIELDS = 8

#: CPU boundary-RPC waves per step (open, occupancy, fields).
CPU_WAVES_PER_STEP = 3
#: Strip payload bytes per boundary voxel per step, summed over waves
#: (open: 1+8+8+1 = 18; occupancy: 1; fields: 16).
CPU_HALO_BYTES_PER_VOXEL = 35
#: Extra tiebreak RPCs per rank per step (intent + result, both ways).
CPU_TIEBREAK_RPCS = 4


@dataclass(frozen=True)
class ProjectedRuntime:
    """Modeled runtime of one configuration, with its breakdown."""

    total_seconds: float
    compute_seconds: float
    reduce_seconds: float
    comm_seconds: float
    coord_seconds: float = 0.0
    sweep_seconds: float = 0.0
    launch_seconds: float = 0.0


class _Apportioner:
    """Distributes supercell activity counts onto a block decomposition."""

    def __init__(self, dim, supergrid: int, decomp: Decomposition):
        self.decomp = decomp
        px, py = decomp.proc_grid
        self._wx = self._axis_weights(dim[0], supergrid, px)
        self._wy = self._axis_weights(dim[1], supergrid, py)

    @staticmethod
    def _axis_weights(extent: int, supergrid: int, parts: int) -> np.ndarray:
        """(parts, supergrid) matrix: fraction of each supercell's axis
        extent owned by each part."""
        cell = extent / supergrid
        edges = np.arange(supergrid + 1) * cell
        w = np.zeros((parts, supergrid))
        for i, (lo, hi) in enumerate(_split_extent(extent, parts)):
            overlap = np.clip(
                np.minimum(hi, edges[1:]) - np.maximum(lo, edges[:-1]), 0, None
            )
            w[i] = overlap / cell
        return w

    def per_rank(self, counts: np.ndarray) -> np.ndarray:
        """Active voxels per rank, shape proc_grid."""
        return self._wx @ counts @ self._wy.T


def _neighbor_stats(decomp: Decomposition, per_node: int):
    """Per-rank neighbor counts split by locality, plus perimeters.

    Uses process-grid adjacency (equivalent to box adjacency for block
    decompositions, O(ranks) instead of O(ranks^2))."""
    n_intra = np.zeros(decomp.nranks)
    n_inter = np.zeros(decomp.nranks)
    perim = np.zeros(decomp.nranks)
    grid = decomp.proc_grid
    ndim = len(grid)
    import itertools

    offsets = [o for o in itertools.product((-1, 0, 1), repeat=ndim) if any(o)]
    for r in range(decomp.nranks):
        coords = decomp.rank_coords(r)
        node_r = r // per_node
        for off in offsets:
            nb = tuple(c + o for c, o in zip(coords, off))
            if any(c < 0 or c >= g for c, g in zip(nb, grid)):
                continue
            o_rank = int(np.ravel_multi_index(nb, grid))
            if o_rank // per_node == node_r:
                n_intra[r] += 1
            else:
                n_inter[r] += 1
        perim[r] = decomp.halo_surface_voxels(r)
    return n_intra, n_inter, perim


def project_cpu_runtime(
    machine: MachineModel,
    provider,
    nranks: int,
    ranks_per_node: int = CORES_PER_NODE,
    imbalance_alpha: float = 0.02,
) -> ProjectedRuntime:
    """Modeled SIMCoV-CPU runtime at ``nranks`` over the provider's run.

    ``imbalance_alpha`` blends max-rank and mean-rank work per step:
    UPC++'s asynchronous RPC delivery lets ranks drift within a step
    window, so the effective per-step cost sits between the strict
    bulk-synchronous maximum (alpha=1) and perfect overlap (alpha=0).
    """
    spec = GridSpec(provider.dim)
    decomp = Decomposition.blocks(spec, nranks)
    app = _Apportioner(provider.dim, provider.supergrid
                       if hasattr(provider, "supergrid") else provider.counts_at(0).shape[0],
                       decomp)
    n_intra, n_inter, perim = _neighbor_stats(decomp, ranks_per_node)
    # Per-step communication time per rank (strips are sent every step).
    msgs = CPU_WAVES_PER_STEP * (n_intra + n_inter) + CPU_TIEBREAK_RPCS
    comm_per_step = (
        msgs * machine.cpu_rpc_us * _US
        + CPU_WAVES_PER_STEP * n_inter * machine.cpu_rpc_internode_us * _US
        + perim * CPU_HALO_BYTES_PER_VOXEL / (machine.cpu_bw_GBps * _GB)
    ).max()
    rounds = math.ceil(math.log2(nranks)) if nranks > 1 else 0
    reduce_per_step = rounds * machine.cpu_allreduce_round_us * _US

    compute = 0.0
    steps = 0
    for i in range(provider.num_samples):
        w = provider.sample_weight(i)
        per_rank = app.per_rank(provider.counts_at(i))
        effective = (
            imbalance_alpha * per_rank.max()
            + (1.0 - imbalance_alpha) * per_rank.mean()
        )
        compute += w * effective * machine.cpu_voxel_ns * _NS
        steps += w
    comm = comm_per_step * steps
    reduce = reduce_per_step * steps
    return ProjectedRuntime(
        total_seconds=compute + comm + reduce,
        compute_seconds=compute,
        reduce_seconds=reduce,
        comm_seconds=comm,
    )


def project_gpu_runtime(
    machine: MachineModel,
    provider,
    num_devices: int,
    variant: GpuVariant = GpuVariant.COMBINED,
    gpus_per_node: int = GPUS_PER_NODE,
    tile_side: int = 8,
    tile_inflation: float = 1.75,
    imbalance_alpha: float = 0.6,
) -> ProjectedRuntime:
    """Modeled SIMCoV-GPU runtime at ``num_devices`` over the provider's run.

    ``tile_inflation`` converts exactly-active voxels into active-*tile*
    voxels (dilation buffer + tile quantization); the default is the ratio
    observed in directly-executed tiled runs.
    """
    spec = GridSpec(provider.dim)
    decomp = Decomposition.blocks(spec, num_devices)
    supergrid = (provider.supergrid
                 if hasattr(provider, "supergrid") else provider.counts_at(0).shape[0])
    app = _Apportioner(provider.dim, supergrid, decomp)
    n_intra, n_inter, perim = _neighbor_stats(decomp, gpus_per_node)
    owned = np.array([b.size for b in decomp.boxes], dtype=np.float64)
    owned_per_dev = owned.reshape(decomp.proc_grid)

    # Fixed per-step costs.
    launch_per_step = GPU_LAUNCHES_PER_STEP * machine.gpu_launch_us * _US
    comm_per_step = (
        GPU_EXCHANGES_PER_STEP
        * (n_intra * machine.gpu_copy_lat_intra_us
           + n_inter * machine.gpu_copy_lat_inter_us) * _US
        + perim * GPU_HALO_BYTES_PER_VOXEL * (
            (n_intra > 0) / (machine.gpu_copy_bw_intra_GBps * _GB)
        )
        + perim * GPU_HALO_BYTES_PER_VOXEL * (
            (n_inter > 0) / (machine.gpu_copy_bw_inter_GBps * _GB)
        )
    ).max()
    rounds = math.ceil(math.log2(num_devices)) if num_devices > 1 else 0
    coord_per_step = GPU_REDUCTIONS_PER_STEP * (
        machine.gpu_coord_us + rounds * machine.gpu_net_round_us
    ) * _US
    locality = machine.gpu_tiling_locality if variant.use_tiling else 1.0
    max_owned = owned.max()
    if variant.use_tree_reduction:
        reduce_per_step = (
            STAT_FIELDS * max_owned * machine.gpu_reduce_elem_ns * locality * _NS
        )
    else:
        reduce_per_step = STAT_FIELDS * max_owned * (
            machine.gpu_atomic_ns + machine.gpu_atomic_conflict_ns
        ) * _NS
    sweep_per_step = (
        max_owned * machine.gpu_sweep_voxel_ns / max(1, tile_side) * _NS
        if variant.use_tiling
        else 0.0
    )

    compute = 0.0
    steps = 0
    boundary_voxels = perim.reshape(decomp.proc_grid) * tile_side
    for i in range(provider.num_samples):
        w = provider.sample_weight(i)
        per_dev = app.per_rank(provider.counts_at(i))
        if variant.use_tiling:
            processed = np.minimum(
                owned_per_dev, per_dev * tile_inflation + boundary_voxels
            )
        else:
            processed = owned_per_dev
        effective = (
            imbalance_alpha * processed.max()
            + (1.0 - imbalance_alpha) * processed.mean()
        )
        compute += (
            w
            * effective
            * GPU_UPDATE_PASSES
            * machine.gpu_voxel_ns
            * locality
            * _NS
        )
        steps += w
    return ProjectedRuntime(
        total_seconds=compute
        + steps * (launch_per_step + comm_per_step + coord_per_step
                   + reduce_per_step + sweep_per_step),
        compute_seconds=compute,
        reduce_seconds=steps * reduce_per_step,
        comm_seconds=steps * comm_per_step,
        coord_seconds=steps * coord_per_step,
        sweep_seconds=steps * sweep_per_step,
        launch_seconds=steps * launch_per_step,
    )
