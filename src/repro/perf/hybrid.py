"""Future work (§6.1): hybrid CPU/GPU dynamic decomposition.

'SIMCoV-GPU could also potentially benefit from dynamic domain
decomposition, which would leverage interactions between CPU cores and
GPUs.  Large empty regions could then be quickly computed on the slowest
hardware, using CPU processes for instance, while the available GPU
workhorses rapidly compute the complex, activity-filled regions.'

This module models that scheme on top of the calibrated machine model:
each step, the quiescent portion of every device's subdomain is delegated
to its node's host cores (which merely verify quiescence — a scan), while
the GPU updates only the active tiles and reduces only its share.  The
host and device work overlap; a per-rebalance transfer cost covers the
region handoff.

The ablation bench (benchmarks/test_ablation_hybrid.py) shows when the
scheme pays: sparse runs (low FOI, early epidemics) benefit, saturated
runs do not — quantifying the paper's suggestion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.grid.decomposition import Decomposition
from repro.grid.spec import GridSpec
from repro.perf.machine import GPUS_PER_NODE, CORES_PER_NODE, MachineModel
from repro.perf.projector import (
    GPU_EXCHANGES_PER_STEP,
    GPU_HALO_BYTES_PER_VOXEL,
    GPU_LAUNCHES_PER_STEP,
    GPU_REDUCTIONS_PER_STEP,
    GPU_UPDATE_PASSES,
    STAT_FIELDS,
    _Apportioner,
    _neighbor_stats,
    ProjectedRuntime,
)

_NS = 1e-9
_US = 1e-6
_GB = 1e9


@dataclass(frozen=True)
class HybridRuntime(ProjectedRuntime):
    """Hybrid projection: adds the host-side and handoff components."""

    host_seconds: float = 0.0
    handoff_seconds: float = 0.0


def project_hybrid_runtime(
    machine: MachineModel,
    provider,
    num_devices: int,
    gpus_per_node: int = GPUS_PER_NODE,
    host_cores_per_gpu: int = CORES_PER_NODE // GPUS_PER_NODE,
    tile_side: int = 8,
    tile_inflation: float = 1.75,
    imbalance_alpha: float = 0.6,
    rebalance_period: int = 64,
    host_scan_ns_per_voxel: float = 4.0,
) -> HybridRuntime:
    """Modeled runtime of the hybrid CPU+GPU scheme over the provider's run.

    Per step and device: the GPU updates active tiles and reduces
    statistics over the *active* region only; the host cores sweep the
    quiescent remainder (verifying nothing changed and accumulating its
    constant statistics contribution).  GPU and host work overlap — the
    step costs their maximum plus communication/coordination.  Every
    ``rebalance_period`` steps the active/quiescent split is renegotiated,
    paying a host<->device transfer of the boundary region.
    """
    spec = GridSpec(provider.dim)
    decomp = Decomposition.blocks(spec, num_devices)
    supergrid = provider.counts_at(0).shape[0]
    app = _Apportioner(provider.dim, supergrid, decomp)
    n_intra, n_inter, perim = _neighbor_stats(decomp, gpus_per_node)
    owned = np.array([b.size for b in decomp.boxes], float)
    owned_grid = owned.reshape(decomp.proc_grid)

    launch_per_step = GPU_LAUNCHES_PER_STEP * machine.gpu_launch_us * _US
    comm_per_step = (
        GPU_EXCHANGES_PER_STEP
        * (n_intra * machine.gpu_copy_lat_intra_us
           + n_inter * machine.gpu_copy_lat_inter_us) * _US
        + perim * GPU_HALO_BYTES_PER_VOXEL * (
            (n_intra > 0) / (machine.gpu_copy_bw_intra_GBps * _GB)
            + (n_inter > 0) / (machine.gpu_copy_bw_inter_GBps * _GB)
        )
    ).max()
    rounds = math.ceil(math.log2(num_devices)) if num_devices > 1 else 0
    coord_per_step = GPU_REDUCTIONS_PER_STEP * (
        machine.gpu_coord_us + rounds * machine.gpu_net_round_us
    ) * _US
    locality = machine.gpu_tiling_locality
    boundary_voxels = perim.reshape(decomp.proc_grid) * tile_side

    compute = host = reduce_s = handoff = 0.0
    steps = 0
    for i in range(provider.num_samples):
        w = provider.sample_weight(i)
        per_dev = app.per_rank(provider.counts_at(i))
        active = np.minimum(
            owned_grid, per_dev * tile_inflation + boundary_voxels
        )
        quiescent = owned_grid - active
        eff_active = (
            imbalance_alpha * active.max()
            + (1 - imbalance_alpha) * active.mean()
        )
        gpu_update = (
            eff_active * GPU_UPDATE_PASSES * machine.gpu_voxel_ns
            * locality * _NS
        )
        # GPU reduces only its active share (vs the full sweep of §3.3).
        gpu_reduce = (
            STAT_FIELDS * active.max() * machine.gpu_reduce_elem_ns
            * locality * _NS
        )
        # Host cores scan the quiescent region: a memory-bandwidth-bound
        # sweep (verify quiescence + accumulate constant statistics), far
        # cheaper than the full per-voxel model update.
        host_scan = (
            quiescent.max()
            * host_scan_ns_per_voxel
            * _NS
            / max(1, host_cores_per_gpu)
        )
        compute += w * max(gpu_update, host_scan)
        host += w * host_scan
        reduce_s += w * gpu_reduce
        steps += w
        # Handoff: transfer one tile ring at the active/quiescent frontier.
        if rebalance_period and steps % rebalance_period < w:
            frontier_bytes = (
                4 * np.sqrt(active.max() + 1) * tile_side
                * machine.gpu_bytes_per_voxel
            )
            handoff += (
                machine.gpu_copy_lat_intra_us * _US
                + frontier_bytes / (machine.gpu_copy_bw_intra_GBps * _GB)
            )
    total = compute + reduce_s + handoff + steps * (
        launch_per_step + comm_per_step + coord_per_step
    )
    return HybridRuntime(
        total_seconds=total,
        compute_seconds=compute,
        reduce_seconds=reduce_s,
        comm_seconds=steps * comm_per_step,
        coord_seconds=steps * coord_per_step,
        launch_seconds=steps * launch_per_step,
        host_seconds=host,
        handoff_seconds=handoff,
    )
