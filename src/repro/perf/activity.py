"""Paper-scale activity synthesis: the FOI disk-growth model.

SIMCoV activity is structured: each focus of infection grows radially
(virions diffuse and infect outward at a roughly constant voxel/step
speed), disks merge, and the domain eventually saturates (the §4.4/Fig 8
discussion).  We cannot execute 10,000^2-voxel, 33,120-step simulations in
Python, so paper-scale projections synthesize the activity map from:

- FOI positions drawn by the *same* seeding code at paper dimensions;
- the radial growth speed calibrated from real scaled-down runs
  (:meth:`repro.perf.workload.WorkloadTrace.growth_speed`);
- equal-radius disk union = "distance to nearest focus < r(t)", evaluated
  on a supergrid with partial-coverage smoothing.

The model is validated against real traces at small scale (see
tests/perf), and EXPERIMENTS.md documents it as the substitution for
paper-scale workloads.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import SimCovParams
from repro.core.seeding import seed_infections
from repro.grid.spec import GridSpec
from repro.rng.streams import VoxelRNG


class DiskActivityModel:
    """Synthesized supercell activity for one experiment configuration.

    Parameters
    ----------
    params:
        Paper-scale parameters (dim, num_infections, num_steps).
    seed:
        Trial seed: FOI positions use the same generator as the
        simulations, so load imbalance is the real seeding's.
    speed:
        Radial growth in voxels/step (from a calibration trace).
    supergrid:
        Cells per dimension of the synthesized activity map.
    samples:
        Number of time samples across the run.
    """

    def __init__(
        self,
        params: SimCovParams,
        seed: int = 0,
        speed: float = 0.5,
        supergrid: int = 64,
        samples: int = 64,
    ):
        if len(params.dim) != 2:
            raise ValueError("the activity model is 2D, like the evaluation")
        self.dim = params.dim
        self.supergrid = int(supergrid)
        self.num_steps = params.num_steps
        self.num_infections = params.num_infections
        self.speed = float(speed)
        spec = GridSpec(params.dim)
        gids = seed_infections(params, VoxelRNG(seed))
        self._foci = spec.unravel(gids).astype(np.float64)
        # Supercell geometry.
        self._cell = (params.dim[0] / supergrid, params.dim[1] / supergrid)
        self.supercell_voxels = self._cell[0] * self._cell[1]
        cx = (np.arange(supergrid) + 0.5) * self._cell[0]
        cy = (np.arange(supergrid) + 0.5) * self._cell[1]
        centers = np.stack(np.meshgrid(cx, cy, indexing="ij"), axis=-1)
        # Distance from each supercell center to the nearest focus.  An
        # equal-radius disk union contains a point iff this distance < r.
        if len(self._foci) == 0:
            self._dist = np.full((supergrid, supergrid), np.inf)
        else:
            flat = centers.reshape(-1, 2)
            d = np.full(flat.shape[0], np.inf)
            for f in self._foci:
                np.minimum(d, np.hypot(flat[:, 0] - f[0], flat[:, 1] - f[1]), out=d)
            self._dist = d.reshape(supergrid, supergrid)
        self._half_diag = 0.5 * float(np.hypot(*self._cell))
        n = max(2, int(samples))
        self.sample_steps = np.unique(
            np.linspace(0, self.num_steps - 1, n).astype(np.int64)
        )

    @property
    def num_samples(self) -> int:
        return len(self.sample_steps)

    def radius(self, step: int) -> float:
        return self.speed * step

    def counts_at(self, i: int) -> np.ndarray:
        """Supercell active-voxel counts at sample ``i``.

        Partial coverage is smoothed linearly over the supercell diagonal:
        fully inside the union -> full count, fully outside -> zero.
        """
        r = self.radius(int(self.sample_steps[i]))
        frac = np.clip(
            (r - self._dist + self._half_diag) / (2 * self._half_diag), 0.0, 1.0
        )
        return frac * self.supercell_voxels

    def sample_weight(self, i: int) -> int:
        if i + 1 < self.num_samples:
            return int(self.sample_steps[i + 1] - self.sample_steps[i])
        return int(self.num_steps - self.sample_steps[i])

    def active_fraction(self) -> np.ndarray:
        total = self.dim[0] * self.dim[1]
        return np.array(
            [self.counts_at(i).sum() / total for i in range(self.num_samples)]
        )

    def mean_active_fraction(self) -> float:
        """Step-weighted mean active fraction over the run."""
        weights = np.array([self.sample_weight(i) for i in range(self.num_samples)])
        return float(np.average(self.active_fraction(), weights=weights))
