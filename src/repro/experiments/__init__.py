"""Experiment harness: regenerates every table and figure of the paper.

| Paper item | Runner | CLI |
|---|---|---|
| Table 1 (configurations)   | :mod:`repro.experiments.configs`     | ``simcov-repro table1`` |
| Fig 4 (optimization profile) | :mod:`repro.experiments.profiling` | ``simcov-repro fig4`` |
| Fig 5 (correctness series) | :mod:`repro.experiments.correctness` | ``simcov-repro fig5`` |
| Table 2 (peak agreement)   | :mod:`repro.experiments.correctness` | ``simcov-repro table2`` |
| Fig 6 (strong scaling)     | :mod:`repro.experiments.scaling`     | ``simcov-repro fig6`` |
| Fig 7 (weak scaling)       | :mod:`repro.experiments.scaling`     | ``simcov-repro fig7`` |
| Fig 8 (FOI scaling)        | :mod:`repro.experiments.scaling`     | ``simcov-repro fig8`` |

Each runner executes real simulations (correctness, profiling) or
projector evaluations over synthesized paper-scale workloads (scaling) and
prints the same rows/series the paper reports, with the paper's numbers
alongside for comparison.  Results are also written as CSV.
"""

from repro.experiments.configs import TABLE1, format_table1
from repro.experiments.correctness import run_correctness
from repro.experiments.profiling import run_profiling
from repro.experiments.scaling import run_foi_scaling, run_strong_scaling, run_weak_scaling

__all__ = [
    "TABLE1",
    "format_table1",
    "run_correctness",
    "run_profiling",
    "run_strong_scaling",
    "run_weak_scaling",
    "run_foi_scaling",
]
