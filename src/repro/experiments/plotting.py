"""Output helpers: CSV rows and ASCII charts (no plotting dependency)."""

from __future__ import annotations

import csv
import os

import numpy as np


def write_csv(path: str, rows: list[dict]) -> None:
    """Write dict rows to CSV, creating parent directories."""
    if not rows:
        return
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def ascii_series(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter chart.

    Each series gets a marker character; used for the log-log scaling
    figures and the correctness time series.
    """
    markers = "ox+*#@%&"
    xs_all = np.concatenate([np.asarray(x, float) for x, _ in series.values()])
    ys_all = np.concatenate([np.asarray(y, float) for _, y in series.values()])
    fx = (lambda v: np.log10(np.maximum(v, 1e-12))) if logx else (lambda v: v)
    fy = (lambda v: np.log10(np.maximum(v, 1e-12))) if logy else (lambda v: v)
    x_lo, x_hi = fx(xs_all).min(), fx(xs_all).max()
    y_lo, y_hi = fy(ys_all).min(), fy(ys_all).max()
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for (name, (x, y)), marker in zip(series.items(), markers):
        for xv, yv in zip(np.asarray(x, float), np.asarray(y, float)):
            col = int((fx(np.array(xv)) - x_lo) / x_span * (width - 1))
            row = int((fy(np.array(yv)) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = []
    if title:
        lines.append(title)
    top = 10**y_hi if logy else y_hi
    bottom = 10**y_lo if logy else y_lo
    lines.append(f"{_fmt(top):>10} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 10 + " |" + "".join(row) + "|")
    lines.append(f"{_fmt(bottom):>10} +" + "-" * width + "+")
    left = 10**x_lo if logx else x_lo
    right = 10**x_hi if logx else x_hi
    lines.append(" " * 12 + f"{_fmt(left)}" + " " * max(1, width - 16) + f"{_fmt(right)}")
    legend = "  ".join(
        f"{m}={name}" for (name, _), m in zip(series.items(), markers)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:.3g}"


def hbar_chart(rows: list[tuple[str, dict[str, float]]], width: int = 50,
               title: str = "") -> str:
    """Stacked horizontal bars (the Fig 4 breakdown chart).

    ``rows`` is [(label, {segment_name: value})]; segments stack with
    distinct fill characters.
    """
    fills = "#=+*"
    total_max = max(sum(seg.values()) for _, seg in rows) or 1.0
    lines = []
    if title:
        lines.append(title)
    label_w = max(len(label) for label, _ in rows) + 1
    for label, segs in rows:
        bar = ""
        for (name, value), fill in zip(segs.items(), fills):
            bar += fill * int(round(value / total_max * width))
        lines.append(f"{label:>{label_w}} |{bar:<{width}}| "
                     f"{sum(segs.values()):.1f}s")
    seg_names = list(rows[0][1].keys())
    lines.append(
        " " * (label_w + 2)
        + "  ".join(f"{f}={n}" for n, f in zip(seg_names, fills))
    )
    return "\n".join(lines)


def speedup_annotation(cpu_seconds: float, gpu_seconds: float) -> str:
    return f"{cpu_seconds / gpu_seconds:.2f}x" if gpu_seconds > 0 else "inf"


def geometric_sequence_label(units: tuple[int, int]) -> str:
    """The x-axis tick format of Figs 6-7: '{GPUs,CPUs}'."""
    return f"{{{units[0]},{units[1]}}}"
