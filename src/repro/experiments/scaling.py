"""Figs 6-8: strong, weak, and FOI scaling (§4.2-4.4).

These experiments are paper-scale (up to 40,000^2 voxels, 33,120 steps, 64
GPUs / 2048 cores) — beyond direct execution here.  They are evaluated
with the projector over synthesized paper-scale activity (DESIGN.md §2):
FOI positions come from the real seeding code, the disk-growth dynamics
from the calibrated activity model, and runtimes from counted work priced
by the machine model.  Shape targets (the paper's findings):

- Fig 6: GPU wins ~5x at 4 GPUs, deviates from ideal past 16 GPUs, CPU
  scales near-ideally; the speedup falls below 1 at 64 GPUs.
- Fig 7: GPU runtime rises 4 -> 16 GPUs (parallelism cost) then holds
  nearly constant; CPU degrades; the advantage settles around 4x.
- Fig 8: GPU runtime grows sublinearly in FOI, CPU ~linearly until
  saturation; the speedup reaches ~12x at high FOI (ideal: 15.6x).

``validate_direct`` cross-checks the projector against directly-executed
small simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import SimCovParams
from repro.experiments.configs import TABLE1
from repro.perf.activity import DiskActivityModel
from repro.perf.machine import MachineModel, PAPER_SCALE_GROWTH_SPEED, PERLMUTTER
from repro.perf.projector import project_cpu_runtime, project_gpu_runtime

#: Paper speedups, reported next to ours.
PAPER_SPEEDUPS = {
    "strong": [4.98, 3.38, 2.59, 1.38, 0.85],
    "weak": [4.91, 4.38, 3.53, 3.48, 3.82],
    "foi": [3.53, 5.16, 7.68, 11.97, None],
}


@dataclass
class ScalingRow:
    """One x-axis point of a scaling figure."""

    label: str
    gpus: int
    cores: int
    dim: tuple[int, int]
    foi: int
    cpu_seconds: float
    gpu_seconds: float
    paper_speedup: float | None

    @property
    def speedup(self) -> float:
        return self.cpu_seconds / self.gpu_seconds


def _evaluate(
    dim: tuple[int, int],
    foi: int,
    cores: int,
    gpus: int,
    machine: MachineModel,
    num_steps: int,
    seed: int,
    samples: int,
) -> tuple[float, float]:
    params = SimCovParams.default_covid(
        dim=dim, num_infections=foi, num_steps=num_steps
    )
    model = DiskActivityModel(
        params, seed=seed, speed=PAPER_SCALE_GROWTH_SPEED,
        supergrid=64, samples=samples,
    )
    cpu = project_cpu_runtime(machine, model, cores).total_seconds
    gpu = project_gpu_runtime(machine, model, gpus).total_seconds
    return cpu, gpu


def run_strong_scaling(
    machine: MachineModel = PERLMUTTER,
    num_steps: int = 33_120,
    seed: int = 1,
    samples: int = 48,
) -> list[ScalingRow]:
    """Fig 6: fixed 10,000^2 / 16 FOI problem, resources doubling."""
    cfg = TABLE1["strong"]
    rows = []
    for (gpus, cores), paper in zip(
        cfg.units_sequence(), PAPER_SPEEDUPS["strong"]
    ):
        cpu, gpu = _evaluate(
            cfg.min_dim[:2], cfg.min_foi, cores, gpus, machine,
            num_steps, seed, samples,
        )
        rows.append(
            ScalingRow(
                f"{{{gpus},{cores}}}", gpus, cores, cfg.min_dim[:2],
                cfg.min_foi, cpu, gpu, paper,
            )
        )
    return rows


def run_weak_scaling(
    machine: MachineModel = PERLMUTTER,
    num_steps: int = 33_120,
    seed: int = 1,
    samples: int = 48,
) -> list[ScalingRow]:
    """Fig 7: problem size, FOI and resources double together."""
    cfg = TABLE1["weak"]
    dims = cfg.dims_sequence()
    fois = cfg.foi_sequence()
    units = cfg.units_sequence()
    rows = []
    for dim, foi, (gpus, cores), paper in zip(
        dims, fois, units, PAPER_SPEEDUPS["weak"]
    ):
        cpu, gpu = _evaluate(
            dim, foi, cores, gpus, machine, num_steps, seed, samples
        )
        rows.append(
            ScalingRow(f"{{{gpus},{cores}}}", gpus, cores, dim, foi,
                       cpu, gpu, paper)
        )
    return rows


def run_foi_scaling(
    machine: MachineModel = PERLMUTTER,
    num_steps: int = 33_120,
    seed: int = 1,
    samples: int = 48,
) -> list[ScalingRow]:
    """Fig 8: 20,000^2 on {16 GPUs, 512 cores}, FOI doubling 64 -> 1024.

    The paper could not run the 1024-FOI CPU trial; the projector
    evaluates it (flagged as an extrapolation in EXPERIMENTS.md)."""
    cfg = TABLE1["foi"]
    gpus, cores = cfg.min_units
    rows = []
    for foi, paper in zip(cfg.foi_sequence(), PAPER_SPEEDUPS["foi"]):
        cpu, gpu = _evaluate(
            cfg.min_dim[:2], foi, cores, gpus, machine, num_steps, seed,
            samples,
        )
        rows.append(
            ScalingRow(f"FOI={foi}", gpus, cores, cfg.min_dim[:2], foi,
                       cpu, gpu, paper)
        )
    return rows


def format_scaling(rows: list[ScalingRow], title: str) -> str:
    lines = [
        title,
        f"{'Config':<14}{'dim':<14}{'FOI':>6}{'CPU (s)':>12}{'GPU (s)':>12}"
        f"{'Speedup':>10}{'Paper':>8}",
    ]
    for r in rows:
        paper = f"{r.paper_speedup:.2f}" if r.paper_speedup else "n/a"
        lines.append(
            f"{r.label:<14}{str(r.dim[0]) + 'x' + str(r.dim[1]):<14}"
            f"{r.foi:>6}{r.cpu_seconds:>12.0f}{r.gpu_seconds:>12.0f}"
            f"{r.speedup:>10.2f}{paper:>8}"
        )
    return "\n".join(lines)


def validate_direct(
    dim=(48, 48),
    num_infections=4,
    num_steps=120,
    seed=3,
) -> dict:
    """Cross-check: direct execution vs projection at the same small scale.

    Runs the real SIMCoV-CPU/GPU, prices their measured work with the cost
    functions, and compares against the projector driven by a trace of the
    same run.  Returns the ratios (tested to be O(1))."""
    from repro.core.params import SimCovParams
    from repro.perf.costs import cpu_step_seconds, gpu_step_seconds
    from repro.perf.workload import WorkloadTrace
    from repro.simcov_cpu.simulation import SimCovCPU
    from repro.simcov_gpu.simulation import SimCovGPU

    params = SimCovParams.fast_test(
        dim=dim, num_infections=num_infections, num_steps=num_steps
    )
    cpu = SimCovCPU(params, nranks=4, seed=seed)
    cpu.run()
    direct_cpu = sum(
        cpu_step_seconds(PERLMUTTER, w["active_per_rank"], w["comm"], 4)
        for w in cpu.step_work
    )
    gpu = SimCovGPU(params, num_devices=4, seed=seed)
    gpu.run()
    direct_gpu = sum(
        gpu_step_seconds(
            PERLMUTTER, w["ledger"], w["active_per_device"], 4, True
        ).total_seconds
        for w in gpu.step_work
    )
    trace = WorkloadTrace.record(params, seed=seed, supergrid=16, stride=4)
    proj_cpu = project_cpu_runtime(PERLMUTTER, trace, 4).total_seconds
    proj_gpu = project_gpu_runtime(PERLMUTTER, trace, 4).total_seconds
    return {
        "direct_cpu": direct_cpu,
        "proj_cpu": proj_cpu,
        "cpu_ratio": proj_cpu / direct_cpu,
        "direct_gpu": direct_gpu,
        "proj_gpu": proj_gpu,
        "gpu_ratio": proj_gpu / direct_gpu,
    }
