"""World-state rendering (the Fig 1A view, in ASCII).

Fig 1A visualizes a SIMCoV run: healthy tissue, the growing infection
front with expressing (blue) and apoptotic (red) cells at its boundary,
and T cells (green) hunting within.  ``render_world`` produces the same
picture in characters; ``render_activity`` shows the active-region/tile
structure that drives §3.2.
"""

from __future__ import annotations

import numpy as np

from repro.core.state import EpiState, VoxelBlock

#: Character per voxel, in priority order (T cells drawn over epithelium).
GLYPHS = {
    "tcell": "T",
    EpiState.EMPTY: " ",
    EpiState.HEALTHY: ".",
    EpiState.INCUBATING: "i",
    EpiState.EXPRESSING: "E",
    EpiState.APOPTOTIC: "a",
    EpiState.DEAD: "x",
}

LEGEND = (
    ". healthy   i incubating   E expressing   a apoptotic   x dead"
    "   T T cell   (space) airway"
)


def render_world(block: VoxelBlock, max_width: int = 96) -> str:
    """Render a block's owned region as ASCII art.

    Grids wider than ``max_width`` are downsampled by striding; each
    output character then represents the most 'interesting' state in its
    neighborhood (T cell > apoptotic > expressing > incubating > dead >
    healthy > empty), so small features stay visible.
    """
    if block.spec.ndim != 2:
        raise ValueError("render_world draws 2D blocks (pass a z-slice)")
    state = block.epi_state[block.interior]
    tcell = block.tcell[block.interior]
    nx, ny = state.shape
    stride = max(1, int(np.ceil(max(nx, ny) / max_width)))
    # Priority code per voxel: higher wins within a downsampling window.
    priority = np.zeros_like(state, dtype=np.int8)
    for code, s in enumerate(
        (EpiState.EMPTY, EpiState.HEALTHY, EpiState.DEAD,
         EpiState.INCUBATING, EpiState.EXPRESSING, EpiState.APOPTOTIC)
    ):
        priority[state == s] = code
    priority[tcell != 0] = 6
    code_to_glyph = [" ", ".", "x", "i", "E", "a", "T"]
    lines = []
    for x0 in range(0, nx, stride):
        row = []
        for y0 in range(0, ny, stride):
            window = priority[x0:x0 + stride, y0:y0 + stride]
            row.append(code_to_glyph[int(window.max())])
        lines.append("".join(row))
    lines.append(LEGEND)
    return "\n".join(lines)


def render_activity(mask: np.ndarray, tile_mask: np.ndarray | None = None,
                    max_width: int = 96) -> str:
    """Render an activity mask ('#' active, '.' quiet); if ``tile_mask``
    is given, voxels inside active-but-quiet tiles show '+', visualizing
    the §3.2 buffer overhead."""
    nx, ny = mask.shape
    stride = max(1, int(np.ceil(max(nx, ny) / max_width)))
    lines = []
    for x0 in range(0, nx, stride):
        row = []
        for y0 in range(0, ny, stride):
            w = mask[x0:x0 + stride, y0:y0 + stride]
            if w.any():
                row.append("#")
            elif tile_mask is not None and tile_mask[
                x0:x0 + stride, y0:y0 + stride
            ].any():
                row.append("+")
            else:
                row.append(".")
        lines.append("".join(row))
    lines.append("# active voxels   + active-tile overhead   . inactive")
    return "\n".join(lines)
