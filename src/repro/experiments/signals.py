"""Shared SIGINT/SIGTERM cleanup for long-running entry points.

Both ``simcov-repro run --backend dist`` and ``simcov-repro serve`` own
resources a hard exit would leak: ``/dev/shm`` segments, orphan worker
processes, half-written checkpoints.  :func:`abort_on_signals` installs
handlers that flip the target's abort flag *first* — so every parked
worker unblocks immediately instead of waiting out its barrier timeout —
and then raise into the caller's normal teardown path
(``KeyboardInterrupt`` for SIGINT, ``SystemExit(128+signum)`` for
SIGTERM), whose ``finally`` releases everything.

Extracted from the PR 5 CLI so the serving layer reuses the exact same
discipline instead of growing a second, subtly different handler.
"""

from __future__ import annotations

import contextlib
import signal
import threading


@contextlib.contextmanager
def abort_on_signals(target):
    """Context manager: SIGINT/SIGTERM call ``target``'s abort hook, then
    raise into the caller's teardown.

    ``target`` is either an object with an ``abort()`` method (the dist
    drivers, the serve app) or a plain callable.  Objects without an
    abort hook are tolerated — the handlers still convert SIGTERM into an
    orderly ``SystemExit`` so ``finally`` blocks run.

    Installed only on the main thread (signals reach no other thread);
    previous handlers are restored on exit.
    """
    if threading.current_thread() is not threading.main_thread():
        yield  # signals only reach the main thread
        return

    abort = getattr(target, "abort", None)
    if abort is None and callable(target):
        abort = target

    def handler(signum, frame):
        if abort is not None:
            abort()
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass
    try:
        yield
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
