"""Fig 4: the optimization breakdown (§3.4).

The paper profiles four SIMCoV-GPU prototypes — Unoptimized, Fast
Reduction, Memory Tiling, Combined — on 4 GPUs with dense activity (1024
FOI) and reports total runtime split into *Update Agents* and *Reduce
Statistics*.

This runner executes all four variants on the same dense workload at
reduced scale, prices their per-step ledgers with the machine model, and
emits the same stacked-bar rows.  Expected shape (the paper's findings):
reductions dominate the unoptimized profile; each optimization helps in
isolation; tiling also improves reductions via locality; the combined
version multiplies the gains.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import SimCovParams
from repro.perf.costs import gpu_step_seconds
from repro.perf.machine import MachineModel, PERLMUTTER
from repro.simcov_gpu.simulation import SimCovGPU
from repro.simcov_gpu.variants import GpuVariant


@dataclass
class ProfilingRow:
    """One Fig 4 bar.

    ``update_seconds``/``reduce_seconds`` are *modeled* times (ledger work
    priced by the machine model); ``phase_seconds``/``phase_calls`` are the
    engine's own per-phase host wall-time and invocation counters
    (``sim.phase_metrics``), reported as measured — they are never rescaled
    by ``scale_to_paper``.
    """

    variant: GpuVariant
    update_seconds: float
    reduce_seconds: float
    phase_seconds: dict[str, float] = field(default_factory=dict)
    phase_calls: dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.update_seconds + self.reduce_seconds


def run_profiling(
    params: SimCovParams | None = None,
    num_devices: int = 4,
    seed: int = 7,
    machine: MachineModel = PERLMUTTER,
    scale_to_paper: bool = True,
) -> list[ProfilingRow]:
    """Profile the four prototypes on a dense-FOI workload.

    ``scale_to_paper`` linearly rescales modeled times so the Combined
    variant's total matches the magnitude of the paper's profiling run
    (~70 s on 4 V100s) — pure presentation; the bar *ratios* are the
    result.
    """
    if params is None:
        # Dense activity: the scaled analog of the paper's 1024-FOI run.
        params = SimCovParams.fast_test(
            dim=(96, 96), num_infections=64, num_steps=60
        )
    rows = []
    for variant in GpuVariant:
        sim = SimCovGPU(
            params, num_devices=num_devices, seed=seed, variant=variant,
            tile_shape=(8, 8),
        )
        sim.run()
        update = reduce = 0.0
        for w in sim.step_work:
            cost = gpu_step_seconds(
                machine, w["ledger"], w["active_per_device"], num_devices,
                variant.use_tiling,
            )
            update += cost.update_seconds + cost.sweep_seconds
            reduce += cost.reduce_seconds
        rows.append(
            ProfilingRow(
                variant, update, reduce,
                phase_seconds=dict(sim.phase_metrics.seconds),
                phase_calls=dict(sim.phase_metrics.calls),
            )
        )
    if scale_to_paper:
        combined = next(r for r in rows if r.variant is GpuVariant.COMBINED)
        factor = 70.0 / max(combined.total_seconds, 1e-12)
        rows = [
            ProfilingRow(
                r.variant, r.update_seconds * factor, r.reduce_seconds * factor,
                phase_seconds=r.phase_seconds, phase_calls=r.phase_calls,
            )
            for r in rows
        ]
    return rows


def format_fig4(rows: list[ProfilingRow]) -> str:
    lines = [
        "Fig 4 — SIMCoV-GPU Optimization Breakdown "
        "(modeled seconds; paper shape: reductions dominate Unoptimized,",
        "both optimizations help alone, Combined is fastest)",
        f"{'Version':<16}{'Update Agents':>15}{'Reduce Stats':>15}{'Total':>12}",
    ]
    for r in rows:
        lines.append(
            f"{r.variant.label:<16}{r.update_seconds:>15.2f}"
            f"{r.reduce_seconds:>15.2f}{r.total_seconds:>12.2f}"
        )
    return "\n".join(lines)
