"""Fig 5 + Table 2: the correctness evaluation (§4.1).

The paper compares SIMCoV-CPU and SIMCoV-GPU over five trials of identical
parameters, showing (Fig 5) overlapping mean time-series with min/max
bands for virus count, tissue T cells and apoptotic epithelial cells, and
(Table 2) percent agreement of the peak statistics with per-implementation
standard deviations.

This reproduction runs the same protocol at reduced scale (the full
10,000^2 x 33,120-step runs are a supercomputer workload; see DESIGN.md
§2).  Because the paper's implementations used different PRNGs, trials use
*different seeds per implementation* here too — the statistical comparison
is meaningful, and is complemented by the bitwise-equality tests in
tests/integration (a property the original could not have).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import SimCovParams
from repro.core.stats import TimeSeries
from repro.simcov_cpu.simulation import SimCovCPU
from repro.simcov_gpu.simulation import SimCovGPU

#: The Fig 5 panels / Table 2 rows: (stat field, display name).
TRACKED_STATS = (
    ("virions_total", "Virus"),
    ("tcells_tissue", "T cells"),
    ("apoptotic", "Apop. Epi. Cells"),
)

#: Paper Table 2 values, for side-by-side reporting.
PAPER_TABLE2 = {
    "Virus": {"agree_pct": 99.68, "cpu_std": 3.1e5, "gpu_std": 2.2e5},
    "T cells": {"agree_pct": 99.01, "cpu_std": 715.82, "gpu_std": 648.05},
    "Apop. Epi. Cells": {"agree_pct": 99.42, "cpu_std": 201.09, "gpu_std": 355.81},
}


@dataclass
class CorrectnessResult:
    """Fig 5 series + Table 2 rows."""

    steps: np.ndarray
    #: per stat: (trials, steps) arrays for each implementation.
    cpu_series: dict
    gpu_series: dict
    #: Table 2 rows: stat -> {agree_pct, cpu_std, gpu_std, ...}.
    table2: dict

    def fig5_bands(self, stat: str):
        """(cpu_mean, cpu_min, cpu_max, gpu_mean, gpu_min, gpu_max)."""
        c = self.cpu_series[stat]
        g = self.gpu_series[stat]
        return (
            c.mean(axis=0), c.min(axis=0), c.max(axis=0),
            g.mean(axis=0), g.min(axis=0), g.max(axis=0),
        )


def run_correctness(
    params: SimCovParams | None = None,
    trials: int = 5,
    nranks: int = 4,
    num_devices: int = 4,
    base_seed: int = 100,
) -> CorrectnessResult:
    """Run the §4.1 protocol: ``trials`` runs of each implementation with
    per-trial seeds, compared statistically."""
    if params is None:
        params = SimCovParams.fast_test(
            dim=(64, 64), num_infections=4, num_steps=320
        )
    cpu_runs: list[TimeSeries] = []
    gpu_runs: list[TimeSeries] = []
    for trial in range(trials):
        cpu = SimCovCPU(params, nranks=nranks, seed=base_seed + trial)
        cpu_runs.append(cpu.run())
        # Offset seeds: like the paper's PRNG-distinct implementations.
        gpu = SimCovGPU(
            params, num_devices=num_devices, seed=base_seed + 1000 + trial
        )
        gpu_runs.append(gpu.run())
    steps = cpu_runs[0].steps()
    cpu_series = {}
    gpu_series = {}
    table2 = {}
    for stat, display in TRACKED_STATS:
        c = np.stack([ts.field(stat) for ts in cpu_runs])
        g = np.stack([ts.field(stat) for ts in gpu_runs])
        cpu_series[stat] = c
        gpu_series[stat] = g
        cpu_peaks = c.max(axis=1)
        gpu_peaks = g.max(axis=1)
        cpu_peak = float(cpu_peaks.mean())
        gpu_peak = float(gpu_peaks.mean())
        denom = max(abs(cpu_peak), abs(gpu_peak), 1e-12)
        agree = 100.0 * (1.0 - abs(cpu_peak - gpu_peak) / denom)
        table2[display] = {
            "agree_pct": agree,
            "cpu_peak": cpu_peak,
            "gpu_peak": gpu_peak,
            "cpu_std": float(cpu_peaks.std(ddof=1)) if trials > 1 else 0.0,
            "gpu_std": float(gpu_peaks.std(ddof=1)) if trials > 1 else 0.0,
        }
    return CorrectnessResult(steps, cpu_series, gpu_series, table2)


def format_table2(result: CorrectnessResult) -> str:
    """Render Table 2 with the paper's values alongside."""
    header = (
        f"{'Stat (Peak)':<18}{'Pct. Agree.':>12}{'CPU STD':>12}{'GPU STD':>12}"
        f"   | paper: {'agree':>7}{'cpu std':>10}{'gpu std':>10}"
    )
    lines = [header, "-" * len(header)]
    for _, display in TRACKED_STATS:
        row = result.table2[display]
        paper = PAPER_TABLE2[display]
        lines.append(
            f"{display:<18}{row['agree_pct']:>12.2f}{row['cpu_std']:>12.2f}"
            f"{row['gpu_std']:>12.2f}   |        {paper['agree_pct']:>7.2f}"
            f"{paper['cpu_std']:>10.3g}{paper['gpu_std']:>10.3g}"
        )
    return "\n".join(lines)
