"""Table 1: the paper's experiment configuration matrix.

Quantities that vary within an experiment double from the minimum to the
maximum; compute units are reported as {GPUs, CPU cores}.  The FOI scaling
experiment's 1024-FOI CPU trial was not run by the authors (resource
limits) — our projector evaluates it anyway and EXPERIMENTS.md reports it
as an extrapolation beyond the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RunConfig:
    """A named single-run / ensemble configuration for ``simcov-repro run``.

    These are reproduction-scale presets (the paper's Table 1 grids are
    exascale); ``small_2d`` doubles as the ensemble benchmark workload in
    ``benchmarks/BENCH_step_engine.json``.
    """

    name: str
    dim: tuple[int, ...]
    num_infections: int
    steps: int
    description: str

    def params(self):
        """The :class:`~repro.core.params.SimCovParams` this preset runs."""
        from repro.core.params import SimCovParams

        return SimCovParams.fast_test(
            dim=self.dim,
            num_infections=self.num_infections,
            num_steps=self.steps,
        )


RUN_CONFIGS = {
    cfg.name: cfg
    for cfg in (
        RunConfig(
            "small_2d", (16, 16), 2, 100,
            "16x16 smoke grid; the ensemble sims/sec benchmark workload",
        ),
        RunConfig(
            "medium_2d", (64, 64), 4, 200,
            "64x64 grid, the fast-test default scale",
        ),
        RunConfig(
            "large_2d", (128, 128), 8, 400,
            "128x128 grid for longer local studies",
        ),
        RunConfig(
            "small_3d", (16, 16, 8), 2, 100,
            "16x16x8 volume exercising the 3D code paths",
        ),
    )
}


def get_run_config(name: str) -> RunConfig:
    """Look up a named run config; unknown names raise a ``ValueError``
    that lists what exists (never a raw ``KeyError``)."""
    try:
        return RUN_CONFIGS[name]
    except KeyError:
        known = ", ".join(sorted(RUN_CONFIGS))
        raise ValueError(
            f"unknown config {name!r}; known configs: {known} "
            f"(see --list-configs)"
        ) from None


def format_run_configs() -> str:
    """Human-readable table of the named run configs."""
    header = f"{'name':<12}{'dim':<14}{'foi':<5}{'steps':<7}description"
    lines = [header, "-" * len(header)]
    for cfg in RUN_CONFIGS.values():
        lines.append(
            f"{cfg.name:<12}{'x'.join(map(str, cfg.dim)):<14}"
            f"{cfg.num_infections:<5}{cfg.steps:<7}{cfg.description}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ExperimentConfig:
    """One Table 1 row."""

    name: str
    min_dim: tuple[int, int, int]
    max_dim: tuple[int, int, int]
    min_foi: int
    max_foi: int
    min_units: tuple[int, int]  # {GPUs, CPUs}
    max_units: tuple[int, int]
    note: str = ""

    def dims_sequence(self) -> list[tuple[int, int]]:
        """The (2D) problem sizes visited, doubling voxels each step."""
        out = [self.min_dim[:2]]
        while out[-1][0] * out[-1][1] < self.max_dim[0] * self.max_dim[1]:
            nx, ny = out[-1]
            # Doubling total voxels alternates doubling each axis so dims
            # stay square at every other step (10k -> 14.1k -> 20k ...).
            if nx == ny:
                out.append((int(round(nx * 2**0.5)), int(round(ny * 2**0.5))))
            else:
                out.append((ny, ny))
        return out

    def units_sequence(self) -> list[tuple[int, int]]:
        out = [self.min_units]
        while out[-1] != self.max_units:
            out.append((out[-1][0] * 2, out[-1][1] * 2))
        return out

    def foi_sequence(self) -> list[int]:
        out = [self.min_foi]
        while out[-1] < self.max_foi:
            out.append(out[-1] * 2)
        return out


TABLE1 = {
    "correctness": ExperimentConfig(
        "Correctness",
        (10_000, 10_000, 1), (10_000, 10_000, 1),
        16, 16, (4, 128), (4, 128),
    ),
    "strong": ExperimentConfig(
        "Strong Scaling",
        (10_000, 10_000, 1), (10_000, 10_000, 1),
        16, 16, (4, 128), (64, 2048),
    ),
    "weak": ExperimentConfig(
        "Weak Scaling",
        (10_000, 10_000, 1), (40_000, 40_000, 1),
        16, 256, (4, 128), (64, 2048),
    ),
    "foi": ExperimentConfig(
        "FOI Scaling",
        (20_000, 20_000, 1), (20_000, 20_000, 1),
        64, 1024, (16, 512), (16, 512),
        note="1024-FOI CPU trial not run by the authors",
    ),
}


def format_table1() -> str:
    """Render Table 1 as the paper prints it."""
    header = (
        f"{'Experiment':<16}{'Min. Dimensions':<22}{'Max. Dimensions':<22}"
        f"{'Min FOI':<9}{'Max FOI':<9}{'Min {G,C}':<12}{'Max {G,C}':<12}"
    )
    lines = [header, "-" * len(header)]
    for cfg in TABLE1.values():
        min_units = f"{{{cfg.min_units[0]},{cfg.min_units[1]}}}"
        max_units = f"{{{cfg.max_units[0]},{cfg.max_units[1]}}}"
        lines.append(
            f"{cfg.name:<16}"
            f"{'x'.join(map(str, cfg.min_dim)):<22}"
            f"{'x'.join(map(str, cfg.max_dim)):<22}"
            f"{cfg.min_foi:<9}{cfg.max_foi:<9}"
            f"{min_units:<12}{max_units:<12}"
        )
    lines.append(
        "* 1024-FOI SIMCoV-CPU trial was beyond the authors' compute budget;"
        " this reproduction projects it."
    )
    return "\n".join(lines)
