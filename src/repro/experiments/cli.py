"""Command-line entry point: ``simcov-repro <experiment>``.

Regenerates any table/figure of the paper and writes CSV under
``results/``.  ``simcov-repro all`` runs everything.

``simcov-repro run`` instead executes a single simulation on a chosen
backend (``sequential``, ``cpu``, ``gpu``, or the multi-process ``dist``
runtime) and prints the final step's statistics, e.g.::

    simcov-repro run --backend dist --nranks 4 --dim 64 64 --steps 50

``--trace PATH`` records structured telemetry (phase/barrier spans,
comm counters, occupancy gauges) to PATH — ``--trace-format jsonl``
(default) for the archival event log, ``chrome`` for a Perfetto /
``chrome://tracing`` timeline with one lane per rank::

    simcov-repro run --backend dist --nranks 4 --trace out.json \
        --trace-format chrome
    simcov-repro trace report out.json

``simcov-repro serve`` starts the SIMCoV-as-a-service job server
(:mod:`repro.serve`); ``submit`` posts a run to it and ``status`` lists
jobs / streams metrics.  ``--trace PATH`` on serve records the server's
telemetry (plus periodic metrics snapshots) to PATH::

    simcov-repro serve --port 8642 --workers 4 --cache-dir /tmp/cache
    simcov-repro submit --config small_2d --steps 50 --watch
    simcov-repro status

``simcov-repro bench`` reads benchmark payloads
(``BENCH_step_engine.json``): ``bench report [FILE]`` prints
one payload's gateable metrics, ``bench diff CURRENT PREVIOUS`` compares
two, and ``--check`` turns a regression beyond ``--threshold`` into
exit 1 (the CI gate)::

    simcov-repro bench report
    simcov-repro bench diff new.json benchmarks/BENCH_step_engine.json \
        --threshold 0.15 --check
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.experiments.configs import (
    format_run_configs,
    format_table1,
    get_run_config,
)
from repro.experiments.correctness import (
    TRACKED_STATS,
    format_table2,
    run_correctness,
)
from repro.experiments.plotting import ascii_series, hbar_chart, write_csv
from repro.experiments.profiling import format_fig4, run_profiling
from repro.experiments.scaling import (
    format_scaling,
    run_foi_scaling,
    run_strong_scaling,
    run_weak_scaling,
)
from repro.experiments.signals import abort_on_signals


def _cmd_table1(outdir: str) -> None:
    print(format_table1())


def _cmd_fig4(outdir: str) -> None:
    rows = run_profiling()
    print(format_fig4(rows))
    print()
    print(
        hbar_chart(
            [
                (r.variant.label, {
                    "update": r.update_seconds, "reduce": r.reduce_seconds,
                })
                for r in rows
            ],
            title="Fig 4 — runtime breakdown (stacked)",
        )
    )
    write_csv(
        f"{outdir}/fig4_optimization_breakdown.csv",
        [
            {
                "variant": r.variant.value,
                "update_seconds": r.update_seconds,
                "reduce_seconds": r.reduce_seconds,
                "total_seconds": r.total_seconds,
            }
            for r in rows
        ],
    )


def _cmd_correctness(outdir: str, table_only: bool = False) -> None:
    result = run_correctness()
    if not table_only:
        for stat, display in TRACKED_STATS:
            cm, cmin, cmax, gm, gmin, gmax = result.fig5_bands(stat)
            print(
                ascii_series(
                    {"CPU": (result.steps, cm), "GPU": (result.steps, gm)},
                    title=f"Fig 5 — {display} (mean of 5 trials)",
                )
            )
            print()
            rows = [
                {
                    "step": int(s),
                    "cpu_mean": cm[i], "cpu_min": cmin[i], "cpu_max": cmax[i],
                    "gpu_mean": gm[i], "gpu_min": gmin[i], "gpu_max": gmax[i],
                }
                for i, s in enumerate(result.steps)
            ]
            write_csv(f"{outdir}/fig5_{stat}.csv", rows)
    print(format_table2(result))
    write_csv(
        f"{outdir}/table2_peak_agreement.csv",
        [
            {"stat": name, **vals}
            for name, vals in result.table2.items()
        ],
    )


def _scaling(outdir: str, which: str) -> None:
    runner = {
        "fig6": run_strong_scaling,
        "fig7": run_weak_scaling,
        "fig8": run_foi_scaling,
    }[which]
    titles = {
        "fig6": "Fig 6 — Strong Scaling (10,000^2, 16 FOI)",
        "fig7": "Fig 7 — Weak Scaling (10,000^2..40,000^2, FOI 16..256)",
        "fig8": "Fig 8 — FOI Scaling (20,000^2, {16 GPUs, 512 cores})",
    }
    rows = runner()
    print(format_scaling(rows, titles[which]))
    print()
    xs = np.array(
        [r.foi for r in rows] if which == "fig8" else [r.gpus for r in rows],
        dtype=float,
    )
    print(
        ascii_series(
            {
                "CPU": (xs, np.array([r.cpu_seconds for r in rows])),
                "GPU": (xs, np.array([r.gpu_seconds for r in rows])),
            },
            logx=True,
            logy=True,
            title=titles[which] + "  [log-log]",
        )
    )
    write_csv(
        f"{outdir}/{which}_scaling.csv",
        [
            {
                "label": r.label, "gpus": r.gpus, "cores": r.cores,
                "dim_x": r.dim[0], "dim_y": r.dim[1], "foi": r.foi,
                "cpu_seconds": r.cpu_seconds, "gpu_seconds": r.gpu_seconds,
                "speedup": r.speedup, "paper_speedup": r.paper_speedup,
            }
            for r in rows
        ],
    )


def _cmd_report(outdir: str) -> None:
    from repro.experiments.report import write_report

    path = write_report(os.path.join(outdir, "REPORT.md"))
    print(f"report written to {path}")


def _parse_fault(spec: str):
    """``rank:step:phase:mode[:repeat]`` -> FaultSpec (chaos demos)."""
    from repro.dist import FAULT_MODES, FaultSpec

    parts = spec.split(":")
    if len(parts) not in (4, 5):
        raise argparse.ArgumentTypeError(
            "--inject-fault takes rank:step:phase:mode[:repeat], "
            f"modes {'|'.join(FAULT_MODES)}"
        )
    try:
        return FaultSpec(
            rank=int(parts[0]),
            step=int(parts[1]),
            phase=parts[2],
            mode=parts[3],
            repeat=int(parts[4]) if len(parts) == 5 else 1,
        )
    except ValueError as err:
        raise argparse.ArgumentTypeError(str(err)) from err


def _make_tracer(args: argparse.Namespace):
    """A tracer writing to ``--trace`` (or None when tracing is off)."""
    if not args.trace:
        return None
    from repro.telemetry import ChromeTraceSink, JsonlSink, Tracer

    sink = (
        ChromeTraceSink(args.trace)
        if args.trace_format == "chrome"
        else JsonlSink(args.trace)
    )
    return Tracer(backend=args.backend, sinks=[sink])


def _parse_sweep(spec: str):
    """``key=lo:hi:n`` -> (key, values).  Raises ValueError with an
    actionable message on any malformed piece."""
    key, sep, rest = spec.partition("=")
    parts = rest.split(":")
    if not sep or not key or len(parts) != 3:
        raise ValueError(
            f"malformed --sweep {spec!r}; expected key=lo:hi:n, "
            "e.g. --sweep num_infections=1:8:4"
        )
    try:
        lo, hi = float(parts[0]), float(parts[1])
        n = int(parts[2])
    except ValueError:
        raise ValueError(
            f"malformed --sweep {spec!r}: lo/hi must be numbers and n an "
            "integer (key=lo:hi:n)"
        ) from None
    if n < 2:
        raise ValueError(
            f"--sweep {spec!r} asks for {n} point(s); a sweep needs n >= 2 "
            "(use --ensemble N for N replicas of one configuration)"
        )
    return key, np.linspace(lo, hi, n)


def _resolve_run_params(args: argparse.Namespace):
    """Fold ``--config`` into the run parameters (explicit flags win)."""
    from repro.core.params import SimCovParams

    config = get_run_config(args.config) if args.config else None
    dim = tuple(args.dim) if args.dim else (config.dim if config else (64, 64))
    if args.steps is None:
        args.steps = config.steps if config else 50
    if args.num_infections is None:
        args.num_infections = config.num_infections if config else 2
    return SimCovParams.fast_test(
        dim=dim,
        num_infections=args.num_infections,
        num_steps=args.steps,
    )


def _run_ensemble(args: argparse.Namespace, params) -> int:
    """``run --ensemble/--sweep``: one vectorized batched simulation."""
    from repro.core.xp import get_array_module
    from repro.engine.ensemble import EnsembleSimCov, expand_sweep

    sweep_key, sweep_values = None, None
    if args.sweep:
        try:
            sweep_key, sweep_values = _parse_sweep(args.sweep)
            members = expand_sweep(params, sweep_key, sweep_values)
        except ValueError as err:
            print(str(err), file=sys.stderr)
            return 2
        if args.ensemble is not None and args.ensemble != len(members):
            print(
                f"--sweep {args.sweep!r} generates {len(members)} members "
                f"but --ensemble asks for {args.ensemble}; drop --ensemble "
                "or make the counts match",
                file=sys.stderr,
            )
            return 2
    else:
        members = [params] * args.ensemble
    try:
        xp = get_array_module(args.array_module)
    except (ValueError, ModuleNotFoundError) as err:
        print(str(err), file=sys.stderr)
        return 2
    batch = len(members)
    seeds = args.seed + np.arange(batch, dtype=np.int64)
    tracer = _make_tracer(args)
    sim = EnsembleSimCov(
        members, seeds=seeds, array_module=xp, tracer=tracer
    )
    try:
        sim.run(args.steps)
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace} ({args.trace_format})")
    value_head = f"{sweep_key:>18}" if sweep_key else ""
    print(
        f"{'member':>6} {'seed':>6}{value_head} {'peak_infected':>14}"
        f" {'@step':>6} {'final_dead':>11} {'tcells':>7}"
    )
    rows = []
    for b in range(batch):
        series = sim.member_series[b]
        peak_step, peak_val = series.peak("infected")
        last = series[len(series) - 1]
        value_col = f"{float(sweep_values[b]):>18.6g}" if sweep_key else ""
        print(
            f"{b:>6} {int(seeds[b]):>6}{value_col} {peak_val:>14.6g} "
            f"{peak_step:>6} {last.dead:>11.6g} {last.tcells_tissue:>7.6g}"
        )
        row = {
            "member": b,
            "seed": int(seeds[b]),
            "peak_infected": peak_val,
            "peak_step": peak_step,
            "final_dead": last.dead,
            "final_tcells_tissue": last.tcells_tissue,
            "final_virions_total": last.virions_total,
        }
        if sweep_key:
            row[sweep_key] = float(sweep_values[b])
        rows.append(row)
    out_csv = os.path.join(args.outdir, "ensemble_members.csv")
    write_csv(out_csv, rows)
    print(
        f"done: ensemble batch={batch} dim={tuple(params.dim)} "
        f"steps={args.steps} xp={xp.name} -> {out_csv}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.backend != "dist" and (
        args.on_failure != "fail" or args.inject_fault is not None
    ):
        print(
            "--on-failure/--inject-fault require --backend dist",
            file=sys.stderr,
        )
        return 2
    try:
        params = _resolve_run_params(args)
    except ValueError as err:  # unknown --config
        print(str(err), file=sys.stderr)
        return 2
    wants_ensemble = args.ensemble is not None or args.sweep is not None
    if not wants_ensemble and args.array_module is not None:
        print(
            "--array-module selects the ensemble backend's array module; "
            "add --ensemble N or --sweep key=lo:hi:n",
            file=sys.stderr,
        )
        return 2
    if wants_ensemble:
        if args.backend != "sequential":
            print(
                "--ensemble/--sweep run on the vectorized ensemble backend; "
                f"drop --backend {args.backend} (or pass "
                "--backend sequential)",
                file=sys.stderr,
            )
            return 2
        if args.ensemble is not None and args.ensemble < 1:
            print(
                f"--ensemble needs at least 1 member, got {args.ensemble}",
                file=sys.stderr,
            )
            return 2
        return _run_ensemble(args, params)
    tracer = _make_tracer(args)
    if args.backend == "sequential":
        from repro.core.model import SequentialSimCov

        sim = SequentialSimCov(params, seed=args.seed, tracer=tracer)
    elif args.backend == "cpu":
        from repro.simcov_cpu.simulation import SimCovCPU

        sim = SimCovCPU(
            params, nranks=args.nranks, seed=args.seed, tracer=tracer
        )
    elif args.backend == "gpu":
        from repro.simcov_gpu.simulation import SimCovGPU

        sim = SimCovGPU(
            params, num_devices=args.nranks, seed=args.seed, tracer=tracer
        )
    else:  # dist: real worker processes + shared-memory halo exchange
        from repro.dist import DistSimCov, ResilientDistSimCov, RestartPolicy

        if args.on_failure == "fail":
            sim = DistSimCov(
                params, nranks=args.nranks, seed=args.seed, tracer=tracer,
                fault=args.inject_fault,
            )
        else:
            sim = ResilientDistSimCov(
                params,
                nranks=args.nranks,
                seed=args.seed,
                tracer=tracer,
                fault=args.inject_fault,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=args.checkpoint_dir,
                policy=RestartPolicy(
                    max_restarts=args.max_restarts,
                    backoff=args.restart_backoff,
                    on_failure=args.on_failure,
                ),
            )
    try:
        with abort_on_signals(sim):
            sim.run(args.steps)
        for i in range(len(sim.series)):
            stats = sim.series[i]
            if (i + 1) % max(1, args.steps // 10) == 0 or i == args.steps - 1:
                print(f"step {i + 1:>5}: {stats}")
        print(
            f"done: backend={args.backend} nranks={args.nranks} "
            f"dim={tuple(args.dim)} steps={args.steps} seed={args.seed}"
        )
        if getattr(sim, "incidents", None):
            print(f"recovered from {sim.restarts} failure(s):")
            print(sim.format_incident_log())
    except KeyboardInterrupt:
        print(
            "interrupted: runtime aborted, workers and shared memory "
            "released",
            file=sys.stderr,
        )
        return 130
    finally:
        incidents = getattr(sim, "incidents", None)
        if args.incident_log and incidents is not None:
            from repro.dist import write_incident_log

            write_incident_log(args.incident_log, incidents)
            print(f"incident log written to {args.incident_log}")
        if hasattr(sim, "close"):
            sim.close()
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace} ({args.trace_format})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``simcov-repro trace report PATH`` — summarize a recorded trace."""
    from repro.telemetry.report import (
        format_report,
        load_events,
        load_meta,
        summarize,
    )

    usage = "usage: simcov-repro trace report PATH"
    if len(args.extra) != 2 or args.extra[0] != "report":
        print(usage, file=sys.stderr)
        return 2
    path = args.extra[1]
    if not os.path.exists(path):
        print(f"trace file not found: {path}", file=sys.stderr)
        return 2
    print(format_report(summarize(load_events(path)), meta=load_meta(path)))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """``simcov-repro bench report [FILE]`` / ``bench diff CUR PREV``.

    ``report`` prints the gateable metrics of one benchmark payload
    (default: the repo's committed ``BENCH_step_engine.json``).
    ``diff`` compares two payloads; with ``--check`` a regression beyond
    ``--threshold`` exits 1 (the CI gate), and mismatched run metadata
    exits 2 unless ``--allow-cross-host``.
    """
    from repro.obs.bench import (
        CrossHostError,
        bench_diff,
        format_diff,
        format_report,
        load_bench,
    )

    usage = (
        "usage: simcov-repro bench report [FILE] | "
        "bench diff CURRENT PREVIOUS [--threshold X] [--check] "
        "[--allow-cross-host]"
    )
    if not args.extra:
        print(usage, file=sys.stderr)
        return 2
    sub, rest = args.extra[0], args.extra[1:]
    if sub == "report":
        if len(rest) > 1:
            print(usage, file=sys.stderr)
            return 2
        if rest:
            path = rest[0]
        else:
            from repro.testing import repo_root

            path = str(repo_root() / "BENCH_step_engine.json")
        if not os.path.exists(path):
            print(f"benchmark file not found: {path}", file=sys.stderr)
            return 2
        print(format_report(load_bench(path), path))
        return 0
    if sub == "diff":
        if len(rest) != 2:
            print(usage, file=sys.stderr)
            return 2
        for path in rest:
            if not os.path.exists(path):
                print(f"benchmark file not found: {path}", file=sys.stderr)
                return 2
        try:
            diff = bench_diff(
                load_bench(rest[0]),
                load_bench(rest[1]),
                threshold=args.threshold,
                allow_cross_host=args.allow_cross_host,
            )
        except CrossHostError as err:
            print(f"bench diff: {err}", file=sys.stderr)
            return 2
        print(format_diff(diff))
        if args.check and diff["regressions"]:
            return 1
        return 0
    print(usage, file=sys.stderr)
    return 2


def _cmd_serve(args: argparse.Namespace) -> int:
    """``simcov-repro serve`` — run the job server until interrupted.

    SIGTERM triggers a graceful drain (stop admitting, checkpoint-preempt
    running jobs, flush the journal) and exits 0; SIGINT aborts hard
    (running jobs preempted, exit 130).
    """
    import asyncio
    import signal as _signal

    from repro.resilience import RestartPolicy
    from repro.serve import ServeApp
    from repro.serve.faults import parse_serve_fault

    fault = None
    if args.inject_serve_fault:
        try:
            fault = parse_serve_fault(args.inject_serve_fault)
        except ValueError as err:
            print(str(err), file=sys.stderr)
            return 2
    app = ServeApp(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        cache_dir=args.cache_dir,
        checkpoint_dir=args.checkpoint_dir,
        trace_path=args.trace,
        trace_format=args.trace_format,
        journal_dir=args.journal_dir,
        retry_policy=RestartPolicy(
            max_restarts=args.retries, backoff=args.retry_backoff
        ),
        max_queue_depth=args.max_queue_depth,
        max_inflight_per_client=args.max_inflight,
        hang_timeout_s=args.hang_timeout,
        fault=fault,
    )

    drained = False

    def on_sigterm(signum, frame):
        nonlocal drained
        drained = True
        app.drain()

    def on_sigint(signum, frame):
        app.abort()
        raise KeyboardInterrupt

    async def _main() -> None:
        await app.start()
        cache = "disk+memory" if (args.cache_dir or args.journal_dir) \
            else "memory"
        durable = "journaled" if args.journal_dir else "ephemeral"
        print(
            f"serving on http://{app.host}:{app.port} "
            f"(workers={args.workers}, cache={cache}, jobs={durable})",
            flush=True,
        )
        await app.serve_forever()

    previous = {}
    try:
        previous[_signal.SIGTERM] = _signal.signal(
            _signal.SIGTERM, on_sigterm
        )
        previous[_signal.SIGINT] = _signal.signal(_signal.SIGINT, on_sigint)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print(
            "interrupted: running jobs preempted, server stopped",
            file=sys.stderr,
        )
        return 130
    finally:
        for signum, old in previous.items():
            _signal.signal(signum, old)
    if drained:
        print(
            "drained: running jobs checkpointed, journal flushed",
            file=sys.stderr,
        )
    return 0


def _parse_set(items) -> dict:
    """``--set key=value`` pairs -> an overrides dict (JSON-ish values)."""
    import json as _json

    overrides = {}
    for item in items or ():
        key, sep, value = item.partition("=")
        if not sep or not key:
            raise ValueError(
                f"malformed --set {item!r}; expected key=value, "
                "e.g. --set virion_production=800"
            )
        try:
            overrides[key] = _json.loads(value)
        except _json.JSONDecodeError:
            overrides[key] = value
    return overrides


def _cmd_submit(args: argparse.Namespace) -> int:
    """``simcov-repro submit`` — post a job to a running server."""
    from repro.serve.client import ServeClient, ServeError

    try:
        overrides = _parse_set(args.set)
    except ValueError as err:
        print(str(err), file=sys.stderr)
        return 2
    backend = "ensemble" if args.ensemble is not None else args.backend
    spec = {
        "config": args.config,
        "overrides": overrides,
        "dim": list(args.dim) if args.dim else None,
        "steps": args.steps,
        "seed": args.seed,
        "backend": backend,
        "ensemble": args.ensemble,
        "nranks": args.nranks,
        "priority": args.priority,
        "client": args.client,
        "deadline_s": args.deadline,
    }
    spec = {k: v for k, v in spec.items() if v is not None}
    client = ServeClient(args.host, args.port)
    try:
        resp = client.submit(spec)
    except (ServeError, OSError) as err:
        print(f"submit failed: {err}", file=sys.stderr)
        return 1
    job = resp["job"]
    print(f"job {job['id']}: state={job['state']} cache={resp['cache']}")
    if not args.watch:
        return 0
    try:
        for name, data in client.iter_events(job["id"]):
            if name == "step":
                print(
                    f"  step {data['steps_done']:>5}/{data['steps_total']}"
                    f"  healthy={data['healthy']:.6g}"
                    f"  expressing={data['expressing']:.6g}"
                    f"  virions={data['virions_total']:.6g}"
                )
            elif name == "preempted":
                print(f"  preempted at step {data['at_step']} (will resume)")
            elif name in ("done", "error"):
                print(f"job {job['id']}: state={data['state']}")
                if data.get("error"):
                    print(f"  error: {data['error']}", file=sys.stderr)
    except (ServeError, OSError) as err:
        print(f"event stream lost: {err}", file=sys.stderr)
        return 1
    final = client.status(job["id"])
    return 0 if final["state"] == "done" else 1


def _cmd_status(args: argparse.Namespace) -> int:
    """``simcov-repro status [JOB_ID]`` — job table or one job's JSON."""
    import json as _json

    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.host, args.port)
    try:
        if args.extra:
            print(_json.dumps(client.status(args.extra[0]), indent=2))
            return 0
        jobs = client.jobs()
        metrics = client.metrics()
    except (ServeError, OSError) as err:
        print(f"status failed: {err}", file=sys.stderr)
        return 1
    print(
        f"{'id':>12} {'state':>9} {'cache':>5} {'prio':>4} "
        f"{'steps':>11} {'preempt':>7} client"
    )
    for job in jobs:
        print(
            f"{job['id']:>12} {job['state']:>9} {job['cache']:>5} "
            f"{job['priority']:>4} "
            f"{job['steps_done']:>5}/{job['steps']:<5} "
            f"{job['preemptions']:>7} {job['client']}"
        )
    print(
        f"workers {metrics['busy_workers']}/{metrics['max_workers']} busy, "
        f"queue depth {metrics['queue_depth']}, "
        f"cache hit rate {metrics['cache_hit_rate']:.1%}, "
        f"wait p50/p99 {metrics['wait_p50_seconds'] * 1e3:.1f}/"
        f"{metrics['wait_p99_seconds'] * 1e3:.1f} ms"
    )
    return 0


COMMANDS = {
    "table1": _cmd_table1,
    "fig4": _cmd_fig4,
    "fig5": lambda outdir: _cmd_correctness(outdir, table_only=False),
    "table2": lambda outdir: _cmd_correctness(outdir, table_only=True),
    "fig6": lambda outdir: _scaling(outdir, "fig6"),
    "fig7": lambda outdir: _scaling(outdir, "fig7"),
    "fig8": lambda outdir: _scaling(outdir, "fig8"),
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simcov-repro",
        description="Regenerate the SIMCoV-GPU paper's tables and figures, "
        "or run a single simulation ('run').",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None,
        choices=sorted(COMMANDS) + [
            "all", "run", "trace", "bench", "serve", "submit", "status",
        ],
        help="which table/figure to regenerate, 'run' for one simulation, "
        "'trace report PATH' to summarize a recorded trace, "
        "'bench report/diff' for benchmark regression checks, or "
        "'serve'/'submit'/'status' for the job server",
    )
    parser.add_argument(
        "--list-configs", action="store_true",
        help="list the named run configurations and exit",
    )
    parser.add_argument(
        "extra", nargs="*",
        help="subcommand arguments ('trace', 'bench', 'status')",
    )
    parser.add_argument(
        "--outdir", default="results", help="CSV output directory"
    )
    run_group = parser.add_argument_group("run options")
    run_group.add_argument(
        "--backend", choices=["sequential", "cpu", "gpu", "dist"],
        default="sequential",
    )
    run_group.add_argument(
        "--nranks", type=int, default=4,
        help="ranks (cpu/dist) or devices (gpu); ignored by sequential",
    )
    run_group.add_argument(
        "--config", default=None, metavar="NAME",
        help="start from a named run configuration (see --list-configs); "
        "explicit --dim/--steps/--num-infections override it",
    )
    run_group.add_argument(
        "--dim", type=int, nargs="+", default=None,
        help="domain shape, 2 or 3 ints (default 64 64)",
    )
    run_group.add_argument("--steps", type=int, default=None)
    run_group.add_argument("--seed", type=int, default=0)
    run_group.add_argument("--num-infections", type=int, default=None)
    ens_group = parser.add_argument_group(
        "ensemble options (run, sequential backend)"
    )
    ens_group.add_argument(
        "--ensemble", type=int, default=None, metavar="N",
        help="run N replicas (seeds seed..seed+N-1) as one vectorized "
        "batched simulation; each member is bitwise identical to its "
        "solo run",
    )
    ens_group.add_argument(
        "--sweep", default=None, metavar="KEY=LO:HI:N",
        help="parameter sweep: N members with KEY linearly spaced over "
        "[LO, HI], e.g. --sweep num_infections=1:8:4",
    )
    ens_group.add_argument(
        "--array-module", default=None,
        choices=["numpy", "cupy", "torch", "auto"],
        help="array backend for the batched state (default numpy; only "
        "numpy carries the bitwise guarantee)",
    )
    run_group.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record structured telemetry to PATH (off by default)",
    )
    run_group.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="jsonl = archival event log; chrome = Perfetto timeline "
        "with one lane per rank",
    )
    res_group = parser.add_argument_group(
        "resilience options (dist backend only)"
    )
    res_group.add_argument(
        "--on-failure", choices=["fail", "restart", "shrink"],
        default="fail",
        help="fail = propagate worker failures (default); restart = "
        "respawn at the same rank count from the last shadow checkpoint; "
        "shrink = restart minus the failed rank",
    )
    res_group.add_argument(
        "--max-restarts", type=int, default=3,
        help="restart budget before giving up with the incident log",
    )
    res_group.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="K",
        help="shadow-checkpoint cadence in steps",
    )
    res_group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="also persist each shadow checkpoint to DIR "
        "(atomic, CRC-verified, keep-last-3)",
    )
    res_group.add_argument(
        "--restart-backoff", type=float, default=0.0, metavar="SECONDS",
        help="initial restart delay, doubled per incident",
    )
    res_group.add_argument(
        "--incident-log", default=None, metavar="PATH",
        help="write the recovery incident log to PATH as JSONL",
    )
    res_group.add_argument(
        "--inject-fault", type=_parse_fault, default=None,
        metavar="RANK:STEP:PHASE:MODE[:REPEAT]",
        help="chaos testing: inject a worker fault, e.g. 1:7:intents:die "
        "(modes: die, error, stall, slow, freeze_heartbeat)",
    )
    bench_group = parser.add_argument_group("bench options (bench diff)")
    bench_group.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative regression threshold for bench diff (default 0.15)",
    )
    bench_group.add_argument(
        "--check", action="store_true",
        help="exit 1 when bench diff finds a regression beyond the "
        "threshold (the CI gate)",
    )
    bench_group.add_argument(
        "--allow-cross-host", action="store_true",
        help="compare benchmark payloads recorded on different hosts "
        "(normally refused, exit 2)",
    )
    serve_group = parser.add_argument_group(
        "serving options (serve/submit/status)"
    )
    serve_group.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (serve) / server address (submit, status)",
    )
    serve_group.add_argument(
        "--port", type=int, default=8642,
        help="server port (0 picks an ephemeral port when serving)",
    )
    serve_group.add_argument(
        "--workers", type=int, default=2,
        help="concurrent job slots on the server",
    )
    serve_group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist the result cache to DIR (atomic, per-key "
        "subdirectories); memory-only when omitted",
    )
    serve_group.add_argument(
        "--priority", type=int, default=0,
        help="job priority 0..9; higher may preempt lower classes",
    )
    serve_group.add_argument(
        "--client", default="cli",
        help="client name for fair-share accounting",
    )
    serve_group.add_argument(
        "--watch", action="store_true",
        help="after submit, stream the job's SSE events until it finishes",
    )
    serve_group.add_argument(
        "--set", action="append", default=None, metavar="KEY=VALUE",
        help="parameter override for submit (repeatable), "
        "e.g. --set virion_production=800",
    )
    serve_group.add_argument(
        "--journal-dir", default=None, metavar="DIR",
        help="durable job journal under DIR: a restarted server replays "
        "it and finishes interrupted jobs bitwise-identically (also "
        "defaults --cache-dir/--checkpoint-dir to subdirectories)",
    )
    serve_group.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock deadline for submit: the server preempts-then-"
        "fails the job once exceeded (checkpoint preserved)",
    )
    serve_group.add_argument(
        "--retries", type=int, default=3,
        help="restarts per job before giving up "
        "(RestartsExhaustedError, default 3)",
    )
    serve_group.add_argument(
        "--retry-backoff", type=float, default=0.05, metavar="SECONDS",
        help="base of the per-job exponential retry backoff",
    )
    serve_group.add_argument(
        "--max-queue-depth", type=int, default=None, metavar="N",
        help="refuse cold submissions (typed 503 + Retry-After) once N "
        "jobs are queued; unbounded when omitted",
    )
    serve_group.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help="per-client cap on active cold jobs (typed 429 + "
        "Retry-After); unbounded when omitted",
    )
    serve_group.add_argument(
        "--hang-timeout", type=float, default=30.0, metavar="SECONDS",
        help="reclaim a worker with no step heartbeat for this long "
        "(the job retries under the restart policy)",
    )
    serve_group.add_argument(
        "--inject-serve-fault", default=None, metavar="JOB:STEP:MODE[:N]",
        help="chaos testing: inject a fault into the JOB-th cold job at "
        "STEP (modes: worker_crash, worker_hang, worker_slow, "
        "server_kill, journal_torn; N = firings across retries)",
    )
    args = parser.parse_args(argv)
    if args.list_configs:
        print(format_run_configs())
        return 0
    if args.experiment is None:
        parser.error("an experiment (or 'run'/'trace'/--list-configs) is "
                     "required")
    if args.experiment == "run":
        return _cmd_run(args)
    if args.experiment == "trace":
        return _cmd_trace(args)
    if args.experiment == "bench":
        return _cmd_bench(args)
    if args.experiment == "serve":
        return _cmd_serve(args)
    if args.experiment == "submit":
        return _cmd_submit(args)
    if args.experiment == "status":
        return _cmd_status(args)
    try:
        if args.experiment == "all":
            for name in ("table1", "fig4", "fig5", "table2",
                         "fig6", "fig7", "fig8"):
                print(f"\n=== {name} ===")
                COMMANDS[name](args.outdir)
        else:
            COMMANDS[args.experiment](args.outdir)
    except BrokenPipeError:  # piped into head/less that closed early
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
