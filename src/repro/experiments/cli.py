"""Command-line entry point: ``simcov-repro <experiment>``.

Regenerates any table/figure of the paper and writes CSV under
``results/``.  ``simcov-repro all`` runs everything.

``simcov-repro run`` instead executes a single simulation on a chosen
backend (``sequential``, ``cpu``, ``gpu``, or the multi-process ``dist``
runtime) and prints the final step's statistics, e.g.::

    simcov-repro run --backend dist --nranks 4 --dim 64 64 --steps 50

``--trace PATH`` records structured telemetry (phase/barrier spans,
comm counters, occupancy gauges) to PATH — ``--trace-format jsonl``
(default) for the archival event log, ``chrome`` for a Perfetto /
``chrome://tracing`` timeline with one lane per rank::

    simcov-repro run --backend dist --nranks 4 --trace out.json \
        --trace-format chrome
    simcov-repro trace report out.json
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.experiments.configs import format_table1
from repro.experiments.correctness import (
    TRACKED_STATS,
    format_table2,
    run_correctness,
)
from repro.experiments.plotting import ascii_series, hbar_chart, write_csv
from repro.experiments.profiling import format_fig4, run_profiling
from repro.experiments.scaling import (
    format_scaling,
    run_foi_scaling,
    run_strong_scaling,
    run_weak_scaling,
)


def _cmd_table1(outdir: str) -> None:
    print(format_table1())


def _cmd_fig4(outdir: str) -> None:
    rows = run_profiling()
    print(format_fig4(rows))
    print()
    print(
        hbar_chart(
            [
                (r.variant.label, {
                    "update": r.update_seconds, "reduce": r.reduce_seconds,
                })
                for r in rows
            ],
            title="Fig 4 — runtime breakdown (stacked)",
        )
    )
    write_csv(
        f"{outdir}/fig4_optimization_breakdown.csv",
        [
            {
                "variant": r.variant.value,
                "update_seconds": r.update_seconds,
                "reduce_seconds": r.reduce_seconds,
                "total_seconds": r.total_seconds,
            }
            for r in rows
        ],
    )


def _cmd_correctness(outdir: str, table_only: bool = False) -> None:
    result = run_correctness()
    if not table_only:
        for stat, display in TRACKED_STATS:
            cm, cmin, cmax, gm, gmin, gmax = result.fig5_bands(stat)
            print(
                ascii_series(
                    {"CPU": (result.steps, cm), "GPU": (result.steps, gm)},
                    title=f"Fig 5 — {display} (mean of 5 trials)",
                )
            )
            print()
            rows = [
                {
                    "step": int(s),
                    "cpu_mean": cm[i], "cpu_min": cmin[i], "cpu_max": cmax[i],
                    "gpu_mean": gm[i], "gpu_min": gmin[i], "gpu_max": gmax[i],
                }
                for i, s in enumerate(result.steps)
            ]
            write_csv(f"{outdir}/fig5_{stat}.csv", rows)
    print(format_table2(result))
    write_csv(
        f"{outdir}/table2_peak_agreement.csv",
        [
            {"stat": name, **vals}
            for name, vals in result.table2.items()
        ],
    )


def _scaling(outdir: str, which: str) -> None:
    runner = {
        "fig6": run_strong_scaling,
        "fig7": run_weak_scaling,
        "fig8": run_foi_scaling,
    }[which]
    titles = {
        "fig6": "Fig 6 — Strong Scaling (10,000^2, 16 FOI)",
        "fig7": "Fig 7 — Weak Scaling (10,000^2..40,000^2, FOI 16..256)",
        "fig8": "Fig 8 — FOI Scaling (20,000^2, {16 GPUs, 512 cores})",
    }
    rows = runner()
    print(format_scaling(rows, titles[which]))
    print()
    xs = np.array(
        [r.foi for r in rows] if which == "fig8" else [r.gpus for r in rows],
        dtype=float,
    )
    print(
        ascii_series(
            {
                "CPU": (xs, np.array([r.cpu_seconds for r in rows])),
                "GPU": (xs, np.array([r.gpu_seconds for r in rows])),
            },
            logx=True,
            logy=True,
            title=titles[which] + "  [log-log]",
        )
    )
    write_csv(
        f"{outdir}/{which}_scaling.csv",
        [
            {
                "label": r.label, "gpus": r.gpus, "cores": r.cores,
                "dim_x": r.dim[0], "dim_y": r.dim[1], "foi": r.foi,
                "cpu_seconds": r.cpu_seconds, "gpu_seconds": r.gpu_seconds,
                "speedup": r.speedup, "paper_speedup": r.paper_speedup,
            }
            for r in rows
        ],
    )


def _cmd_report(outdir: str) -> None:
    from repro.experiments.report import write_report

    path = write_report(os.path.join(outdir, "REPORT.md"))
    print(f"report written to {path}")


def _parse_fault(spec: str):
    """``rank:step:phase:mode[:repeat]`` -> FaultSpec (chaos demos)."""
    from repro.dist import FAULT_MODES, FaultSpec

    parts = spec.split(":")
    if len(parts) not in (4, 5):
        raise argparse.ArgumentTypeError(
            "--inject-fault takes rank:step:phase:mode[:repeat], "
            f"modes {'|'.join(FAULT_MODES)}"
        )
    try:
        return FaultSpec(
            rank=int(parts[0]),
            step=int(parts[1]),
            phase=parts[2],
            mode=parts[3],
            repeat=int(parts[4]) if len(parts) == 5 else 1,
        )
    except ValueError as err:
        raise argparse.ArgumentTypeError(str(err)) from err


def _abort_on_signals(sim):
    """Context manager: SIGINT/SIGTERM abort the runtime before the
    normal teardown path runs.

    Without this, Ctrl-C while the coordinator waits at a barrier leaves
    the workers parked until *their* (longer) timeouts expire, and a
    SIGTERM relies on ``atexit`` best effort — this handler flips the
    shared abort flag first, so every worker unblocks and exits and
    ``close()`` (the caller's ``finally``) releases all ``/dev/shm``
    segments immediately.
    """
    import contextlib
    import signal
    import threading

    @contextlib.contextmanager
    def guard():
        if threading.current_thread() is not threading.main_thread():
            yield  # signals only reach the main thread
            return

        def handler(signum, frame):
            abort = getattr(sim, "abort", None)
            if abort is not None:
                abort()
            if signum == signal.SIGINT:
                raise KeyboardInterrupt
            raise SystemExit(128 + signum)

        previous = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous[signum] = signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover - exotic host
                pass
        try:
            yield
        finally:
            for signum, old in previous.items():
                signal.signal(signum, old)

    return guard()


def _make_tracer(args: argparse.Namespace):
    """A tracer writing to ``--trace`` (or None when tracing is off)."""
    if not args.trace:
        return None
    from repro.telemetry import ChromeTraceSink, JsonlSink, Tracer

    sink = (
        ChromeTraceSink(args.trace)
        if args.trace_format == "chrome"
        else JsonlSink(args.trace)
    )
    return Tracer(backend=args.backend, sinks=[sink])


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.params import SimCovParams

    if args.backend != "dist" and (
        args.on_failure != "fail" or args.inject_fault is not None
    ):
        print(
            "--on-failure/--inject-fault require --backend dist",
            file=sys.stderr,
        )
        return 2
    params = SimCovParams.fast_test(
        dim=tuple(args.dim),
        num_infections=args.num_infections,
        num_steps=args.steps,
    )
    tracer = _make_tracer(args)
    if args.backend == "sequential":
        from repro.core.model import SequentialSimCov

        sim = SequentialSimCov(params, seed=args.seed, tracer=tracer)
    elif args.backend == "cpu":
        from repro.simcov_cpu.simulation import SimCovCPU

        sim = SimCovCPU(
            params, nranks=args.nranks, seed=args.seed, tracer=tracer
        )
    elif args.backend == "gpu":
        from repro.simcov_gpu.simulation import SimCovGPU

        sim = SimCovGPU(
            params, num_devices=args.nranks, seed=args.seed, tracer=tracer
        )
    else:  # dist: real worker processes + shared-memory halo exchange
        from repro.dist import DistSimCov, ResilientDistSimCov, RestartPolicy

        if args.on_failure == "fail":
            sim = DistSimCov(
                params, nranks=args.nranks, seed=args.seed, tracer=tracer,
                fault=args.inject_fault,
            )
        else:
            sim = ResilientDistSimCov(
                params,
                nranks=args.nranks,
                seed=args.seed,
                tracer=tracer,
                fault=args.inject_fault,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=args.checkpoint_dir,
                policy=RestartPolicy(
                    max_restarts=args.max_restarts,
                    backoff=args.restart_backoff,
                    on_failure=args.on_failure,
                ),
            )
    try:
        with _abort_on_signals(sim):
            sim.run(args.steps)
        for i in range(len(sim.series)):
            stats = sim.series[i]
            if (i + 1) % max(1, args.steps // 10) == 0 or i == args.steps - 1:
                print(f"step {i + 1:>5}: {stats}")
        print(
            f"done: backend={args.backend} nranks={args.nranks} "
            f"dim={tuple(args.dim)} steps={args.steps} seed={args.seed}"
        )
        if getattr(sim, "incidents", None):
            print(f"recovered from {sim.restarts} failure(s):")
            print(sim.format_incident_log())
    except KeyboardInterrupt:
        print(
            "interrupted: runtime aborted, workers and shared memory "
            "released",
            file=sys.stderr,
        )
        return 130
    finally:
        incidents = getattr(sim, "incidents", None)
        if args.incident_log and incidents is not None:
            from repro.dist import write_incident_log

            write_incident_log(args.incident_log, incidents)
            print(f"incident log written to {args.incident_log}")
        if hasattr(sim, "close"):
            sim.close()
        if tracer is not None:
            tracer.close()
            print(f"trace written to {args.trace} ({args.trace_format})")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``simcov-repro trace report PATH`` — summarize a recorded trace."""
    from repro.telemetry.report import format_report, load_events, summarize

    usage = "usage: simcov-repro trace report PATH"
    if len(args.extra) != 2 or args.extra[0] != "report":
        print(usage, file=sys.stderr)
        return 2
    path = args.extra[1]
    if not os.path.exists(path):
        print(f"trace file not found: {path}", file=sys.stderr)
        return 2
    print(format_report(summarize(load_events(path))))
    return 0


COMMANDS = {
    "table1": _cmd_table1,
    "fig4": _cmd_fig4,
    "fig5": lambda outdir: _cmd_correctness(outdir, table_only=False),
    "table2": lambda outdir: _cmd_correctness(outdir, table_only=True),
    "fig6": lambda outdir: _scaling(outdir, "fig6"),
    "fig7": lambda outdir: _scaling(outdir, "fig7"),
    "fig8": lambda outdir: _scaling(outdir, "fig8"),
    "report": _cmd_report,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="simcov-repro",
        description="Regenerate the SIMCoV-GPU paper's tables and figures, "
        "or run a single simulation ('run').",
    )
    parser.add_argument(
        "experiment", choices=sorted(COMMANDS) + ["all", "run", "trace"],
        help="which table/figure to regenerate, 'run' for one simulation, "
        "or 'trace report PATH' to summarize a recorded trace",
    )
    parser.add_argument(
        "extra", nargs="*",
        help="subcommand arguments (only 'trace' takes any)",
    )
    parser.add_argument(
        "--outdir", default="results", help="CSV output directory"
    )
    run_group = parser.add_argument_group("run options")
    run_group.add_argument(
        "--backend", choices=["sequential", "cpu", "gpu", "dist"],
        default="sequential",
    )
    run_group.add_argument(
        "--nranks", type=int, default=4,
        help="ranks (cpu/dist) or devices (gpu); ignored by sequential",
    )
    run_group.add_argument(
        "--dim", type=int, nargs="+", default=[64, 64],
        help="domain shape, 2 or 3 ints",
    )
    run_group.add_argument("--steps", type=int, default=50)
    run_group.add_argument("--seed", type=int, default=0)
    run_group.add_argument("--num-infections", type=int, default=2)
    run_group.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record structured telemetry to PATH (off by default)",
    )
    run_group.add_argument(
        "--trace-format", choices=["jsonl", "chrome"], default="jsonl",
        help="jsonl = archival event log; chrome = Perfetto timeline "
        "with one lane per rank",
    )
    res_group = parser.add_argument_group(
        "resilience options (dist backend only)"
    )
    res_group.add_argument(
        "--on-failure", choices=["fail", "restart", "shrink"],
        default="fail",
        help="fail = propagate worker failures (default); restart = "
        "respawn at the same rank count from the last shadow checkpoint; "
        "shrink = restart minus the failed rank",
    )
    res_group.add_argument(
        "--max-restarts", type=int, default=3,
        help="restart budget before giving up with the incident log",
    )
    res_group.add_argument(
        "--checkpoint-every", type=int, default=25, metavar="K",
        help="shadow-checkpoint cadence in steps",
    )
    res_group.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="also persist each shadow checkpoint to DIR "
        "(atomic, CRC-verified, keep-last-3)",
    )
    res_group.add_argument(
        "--restart-backoff", type=float, default=0.0, metavar="SECONDS",
        help="initial restart delay, doubled per incident",
    )
    res_group.add_argument(
        "--incident-log", default=None, metavar="PATH",
        help="write the recovery incident log to PATH as JSONL",
    )
    res_group.add_argument(
        "--inject-fault", type=_parse_fault, default=None,
        metavar="RANK:STEP:PHASE:MODE[:REPEAT]",
        help="chaos testing: inject a worker fault, e.g. 1:7:intents:die "
        "(modes: die, error, stall, slow, freeze_heartbeat)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "run":
        return _cmd_run(args)
    if args.experiment == "trace":
        return _cmd_trace(args)
    try:
        if args.experiment == "all":
            for name in ("table1", "fig4", "fig5", "table2",
                         "fig6", "fig7", "fig8"):
                print(f"\n=== {name} ===")
                COMMANDS[name](args.outdir)
        else:
            COMMANDS[args.experiment](args.outdir)
    except BrokenPipeError:  # piped into head/less that closed early
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
