"""Parameter sweeps and replicate campaigns (§4.2).

'A small number of GPUs can still greatly benefit small simulations ...
Such use cases include parameter sweeps and data fitting for small
simulations because they require many runs with varied configurations.'

This module runs factorial sweeps of SimCovParams fields with stochastic
replicates, collecting per-run summary statistics — the workflow SIMCoV
users run for model fitting (three key parameters were fit to patient
data in [25]).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.model import SequentialSimCov
from repro.core.params import SimCovParams


@dataclass(frozen=True)
class SweepResult:
    """One (configuration, trial) outcome."""

    config: dict
    trial: int
    seed: int
    peak_virions: float
    peak_step: int
    peak_tcells: float
    final_dead: float
    total_extravasations: int

    @classmethod
    def from_run(cls, config: dict, trial: int, seed: int, sim) -> "SweepResult":
        peak_step, peak = sim.series.peak("virions_total")
        return cls(
            config=config,
            trial=trial,
            seed=seed,
            peak_virions=peak,
            peak_step=peak_step,
            peak_tcells=sim.series.peak("tcells_tissue")[1],
            final_dead=sim.series[-1].dead,
            total_extravasations=sum(
                s.extravasations for s in sim.series._stats
            ),
        )


def run_sweep(
    base: SimCovParams,
    grid: dict[str, list],
    trials: int = 3,
    base_seed: int = 0,
    make_sim: Callable[[SimCovParams, int], object] | None = None,
) -> list[SweepResult]:
    """Run the full factorial sweep ``grid`` with ``trials`` replicates.

    ``grid`` maps SimCovParams field names to value lists; every
    combination runs ``trials`` times with distinct seeds.  ``make_sim``
    lets callers swap the implementation (e.g. ``SimCovGPU`` with a device
    count) — the default is the sequential reference.
    """
    if make_sim is None:
        make_sim = lambda params, seed: SequentialSimCov(params, seed=seed)
    names = sorted(grid)
    results = []
    for combo_idx, values in enumerate(itertools.product(*(grid[n] for n in names))):
        config = dict(zip(names, values))
        params = base.with_(**config)
        for trial in range(trials):
            seed = base_seed + combo_idx * 10_000 + trial
            sim = make_sim(params, seed)
            sim.run()
            results.append(SweepResult.from_run(config, trial, seed, sim))
    return results


def summarize(results: list[SweepResult], field: str = "peak_virions") -> dict:
    """Per-configuration mean/std of one outcome field (fitting target)."""
    groups: dict[tuple, list[float]] = {}
    for r in results:
        key = tuple(sorted(r.config.items()))
        groups.setdefault(key, []).append(float(getattr(r, field)))
    return {
        key: {
            "mean": float(np.mean(vals)),
            "std": float(np.std(vals, ddof=1)) if len(vals) > 1 else 0.0,
            "n": len(vals),
        }
        for key, vals in groups.items()
    }


def best_fit(
    results: list[SweepResult],
    target: float,
    field: str = "peak_virions",
) -> tuple[dict, float]:
    """The configuration whose mean outcome is closest to ``target`` —
    the [25]-style calibration loop's selection step."""
    summary = summarize(results, field)
    best_key = min(summary, key=lambda k: abs(summary[k]["mean"] - target))
    return dict(best_key), summary[best_key]["mean"]
