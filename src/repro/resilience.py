"""Shared bounded-restart vocabulary for every fault-tolerant layer.

PR 5 built the recovery discipline for the distributed runtime
(:mod:`repro.dist.resilient`): a frozen :class:`RestartPolicy` bounding
how many times a failed unit of work is re-attempted and how long to
back off between attempts, an incident record per failure, and a
:class:`RestartsExhaustedError` carrying the full incident log when the
budget runs out.  The serving tier needs exactly the same shape for
per-job retries (DESIGN.md §4g), so the policy and the generic pieces
live here and both layers import them:

- :class:`RestartPolicy` — the bounded-restart budget + exponential
  backoff schedule (``on_failure``/``min_ranks`` only apply to the
  distributed runtime's shrink recovery and are ignored by other users);
- :class:`JobIncident` — the per-attempt diagnostic record a serving
  job accumulates (``/jobs/{id}`` surfaces these);
- :class:`RestartsExhaustedError` — raised (dist) or recorded as the
  terminal error string (serve) when the budget is exhausted;
- :func:`classify_exception` — the retryable/permanent split: transient
  infrastructure failures are worth re-running, deterministic model or
  spec bugs are not (re-running a ``ValueError`` burns a worker slot to
  produce the same ``ValueError``);
- :func:`format_incident_log` / :func:`write_incident_log` — shared
  human/JSONL renderings of any incident sequence.

:mod:`repro.dist.resilient` re-exports all of these, so existing
``from repro.dist import RestartPolicy`` imports keep working.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

#: Exception classifications.
RETRYABLE = "retryable"
PERMANENT = "permanent"


class PermanentError(RuntimeError):
    """Marker base: raising this (or a subclass) from a unit of work
    tells every retry layer the failure is deterministic — do not
    re-run, fail immediately with the incident log."""


class RestartsExhaustedError(RuntimeError):
    """The bounded-restart budget ran out; carries the incident log."""

    def __init__(self, message: str, incidents=()):
        super().__init__(message)
        self.incidents = tuple(incidents)


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded-restart policy applied on every recoverable failure."""

    #: Recovery attempts before giving up with RestartsExhaustedError.
    max_restarts: int = 3
    #: Base backoff seconds before respawning (0 = immediate); incident
    #: ``i`` sleeps ``backoff * backoff_factor ** (i - 1)``.
    backoff: float = 0.0
    backoff_factor: float = 2.0
    #: ``"restart"`` keeps the rank count; ``"shrink"`` re-decomposes
    #: onto one fewer rank per incident (never below ``min_ranks``).
    #: Only the distributed runtime honors these two fields.
    on_failure: str = "restart"
    min_ranks: int = 1

    def __post_init__(self):
        if self.on_failure not in ("restart", "shrink"):
            raise ValueError(
                f"on_failure must be 'restart' or 'shrink', "
                f"got {self.on_failure!r}"
            )
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.min_ranks < 1:
            raise ValueError("min_ranks must be >= 1")

    def backoff_seconds(self, incident_index: int) -> float:
        """Sleep before recovery ``incident_index`` (1-based)."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * self.backoff_factor ** (incident_index - 1)


@dataclass(frozen=True)
class JobIncident:
    """Diagnostics of one failed attempt of a serving job."""

    #: 1-based incident number for this job.
    index: int
    #: ``job.steps_done`` when the failure surfaced.
    step: int
    #: Exception class name (InjectedWorkerCrash, WorkerHangError, ...).
    error_type: str
    #: First line of the failure diagnostic.
    message: str
    #: ``retryable`` or ``permanent`` (see :func:`classify_exception`).
    classification: str
    #: Step the retry resumes from (last shadow checkpoint, or 0).
    restored_step: int
    #: Steps the retry re-executes to get back to the failure point.
    steps_replayed: int
    #: Backoff slept before the retry (0 for permanent failures).
    backoff_seconds: float

    def describe(self) -> str:
        action = (
            f"retrying from step {self.restored_step} "
            f"(replaying {self.steps_replayed} steps, "
            f"{self.backoff_seconds:.2f}s backoff)"
            if self.classification == RETRYABLE
            else "permanent, not retried"
        )
        return (
            f"incident {self.index}: {self.error_type} at step {self.step} "
            f"-> {action}: {self.message}"
        )

    def to_json(self) -> dict:
        return asdict(self)


#: Deterministic failures: the same inputs produce the same exception,
#: so re-running is pure waste.  Everything else — injected crashes,
#: OS-level errors, dist worker deaths — defaults to retryable.
PERMANENT_ERROR_TYPES: tuple[type, ...] = (
    ValueError,
    TypeError,
    KeyError,
    IndexError,
    AttributeError,
    AssertionError,
    NotImplementedError,
    ZeroDivisionError,
)


def _permanent_types() -> tuple[type, ...]:
    # Lazy: keeps this module import-light (no numpy at import time).
    from repro.io.checkpoint import CheckpointCorruptError

    return (PermanentError, CheckpointCorruptError, *PERMANENT_ERROR_TYPES)


def classify_exception(err: BaseException) -> str:
    """``"retryable"`` or ``"permanent"`` for a failed unit of work.

    Permanent: :class:`PermanentError` subclasses, checkpoint
    corruption, and the deterministic-bug exception types
    (:data:`PERMANENT_ERROR_TYPES`).  Everything else is presumed
    transient and worth a bounded re-run.
    """
    if isinstance(err, _permanent_types()):
        return PERMANENT
    return RETRYABLE


def format_incident_log(incidents) -> str:
    """Human-readable incident log (one line per incident)."""
    if not incidents:
        return "no incidents"
    return "\n".join(i.describe() for i in incidents)


def write_incident_log(path: str, incidents) -> None:
    """Dump the incident log as JSONL (CI artifact / postmortems)."""
    with open(path, "w") as fh:
        for incident in incidents:
            fh.write(json.dumps(asdict(incident)) + "\n")
