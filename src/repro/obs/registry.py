"""The always-on metrics registry.

Spans (:mod:`repro.telemetry`) answer "what happened in this run, in
order"; metrics answer "how is the system doing right now, cheaply,
forever".  A :class:`MetricsRegistry` holds three instrument kinds:

- :class:`Counter` — monotonically increasing totals (steps executed,
  cache hits, barrier-wait seconds);
- :class:`Gauge` — last-write-wins samples (queue depth, active voxels,
  imbalance index);
- :class:`Histogram` — fixed-bucket distributions with **exact**
  ``count``/``sum`` (phase seconds, submit-to-first-event latency).
  Bucket bounds are inclusive uppers, Prometheus ``le`` semantics, plus
  an implicit ``+Inf`` overflow bucket.

Cost model (the reason this can be on by default, unlike the tracer):
resolving an instrument is one dict lookup on ``(name, labels)``; hot
paths resolve once at construction and then call bound methods —
``Counter.inc`` is a locked float add, ``Histogram.observe`` a locked
bisect over ~a dozen bounds.  The engine's 13-phase step loop pays ~10µs
per multi-millisecond step (the CI ``obs`` job gates the end-to-end
overhead at 3%).  Metrics never touch simulation state or RNG, so golden
traces are bitwise identical with the registry on or off.

Label cardinality is capped per family (default 64 label sets): the
first overflowing label set folds into a shared ``{"overflow": "true"}``
series and bumps the registry's ``dropped_series`` counter, so a
label-from-user-input mistake degrades to one coarse series instead of
an unbounded scrape payload.

A process-global default registry backs the zero-config path
(:func:`get_registry`); tests and the overhead smoke swap it with
:func:`set_registry`.  A registry constructed with ``enabled=False``
(or ``REPRO_METRICS=off`` in the environment for the default one) hands
out shared no-op instruments, so instrumented code needs no branches.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "get_registry",
    "set_registry",
]

#: Default histogram bounds (seconds): SLO-grade resolution from 100µs
#: phase kernels up to 10s queue waits.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Label-set key of the shared per-family overflow series.
OVERFLOW_KEY = (("overflow", "true"),)


class Counter:
    """A monotonically increasing total.

    ``inc`` is locked: ``+=`` on a float attribute is a read-modify-write
    that can lose updates under free-threading worker pools (the serve
    layer's executor), and a lost cache-hit count is a lie on a dashboard.
    """

    __slots__ = ("value", "_lock")
    kind = "counter"

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A last-write-wins sample.  ``set`` is a single attribute store
    (atomic under the GIL), so it takes no lock; ``inc`` exists for the
    rare delta-style gauge and locks like a counter."""

    __slots__ = ("value", "_lock")
    kind = "gauge"

    def __init__(self):
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket distribution with exact count and sum.

    ``bounds`` are strictly increasing inclusive upper bounds
    (Prometheus ``le``); a value lands in the first bucket whose bound is
    ``>= value`` — a value exactly on a bound lands *in* that bound's
    bucket — and anything beyond the last bound lands in the implicit
    ``+Inf`` bucket.  ``counts`` is per-bucket (not cumulative); the
    Prometheus renderer accumulates.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_lock")
    kind = "histogram"

    def __init__(self, bounds=DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.sum += value
            self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``[(le, cumulative_count), ...]`` ending with ``(+Inf, count)``."""
        out, running = [], 0
        for bound, n in zip((*self.bounds, float("inf")), self.counts):
            running += n
            out.append((bound, running))
        return out


class _NullInstrument:
    """Shared no-op stand-in for every instrument kind: instrumented code
    holds it unconditionally and pays one empty method call."""

    __slots__ = ()
    kind = "null"
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = NULL_GAUGE = NULL_HISTOGRAM = _NullInstrument()


class _Family:
    """One metric name: kind, help text, and its labeled series."""

    __slots__ = ("name", "kind", "help", "bounds", "series")

    def __init__(self, name, kind, help_text, bounds=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.bounds = bounds
        self.series: dict[tuple, object] = {}


class MetricsRegistry:
    """Instrument factory + exposition surface.

    Parameters
    ----------
    enabled:
        When False every getter returns the shared no-op instrument and
        the registry stays empty (the overhead-smoke baseline).
    max_label_sets:
        Per-family cardinality cap; overflowing label sets share one
        ``{"overflow": "true"}`` series (see module docstring).
    """

    def __init__(self, enabled: bool = True, max_label_sets: int = 64):
        self.enabled = bool(enabled)
        self.max_label_sets = int(max_label_sets)
        #: Label sets refused by the cardinality cap (folded into the
        #: overflow series), rendered as
        #: ``simcov_obs_dropped_series_total``.
        self.dropped_series = 0
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- instrument getters (the one-dict-lookup hot path) ---------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self, name: str, help: str = "", buckets=DEFAULT_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, help, labels, bounds=buckets)

    def _get(self, cls, name, help_text, labels, bounds=None):
        if not self.enabled:
            return NULL_COUNTER
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        fam = self._families.get(name)
        if fam is not None and fam.kind == cls.kind:
            inst = fam.series.get(key)
            if inst is not None:
                return inst
        with self._lock:
            fam = self._families.get(name)
            if fam is None:
                fam = _Family(name, cls.kind, help_text, bounds)
                self._families[name] = fam
            elif fam.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {fam.kind}, "
                    f"requested {cls.kind}"
                )
            inst = fam.series.get(key)
            if inst is None:
                if (
                    key != OVERFLOW_KEY
                    and len(fam.series) >= self.max_label_sets
                ):
                    # Cardinality cap: fold into the shared overflow
                    # series instead of growing without bound.
                    self.dropped_series += 1
                    key = OVERFLOW_KEY
                    inst = fam.series.get(key)
                    if inst is not None:
                        return inst
                inst = (
                    cls(fam.bounds or DEFAULT_BUCKETS)
                    if cls.kind == "histogram"
                    else cls()
                )
                fam.series[key] = inst
            return inst

    # -- exposition ------------------------------------------------------------

    def families(self) -> dict[str, _Family]:
        """Live family map (sorted copy of the key view)."""
        return {name: self._families[name] for name in sorted(self._families)}

    def snapshot(self) -> dict:
        """JSON-ready dump of every series (the JSONL snapshot format)."""
        out = {}
        for name, fam in self.families().items():
            rows = []
            for key in sorted(fam.series):
                inst = fam.series[key]
                row = {"labels": dict(key)}
                if fam.kind == "histogram":
                    row["count"] = inst.count
                    row["sum"] = inst.sum
                    row["buckets"] = [
                        ["+Inf" if le == float("inf") else le, n]
                        for le, n in inst.cumulative()
                    ]
                else:
                    row["value"] = inst.value
                rows.append(row)
            out[name] = {"kind": fam.kind, "help": fam.help, "series": rows}
        if self.dropped_series:
            out["simcov_obs_dropped_series_total"] = {
                "kind": "counter",
                "help": "Label sets refused by the cardinality cap",
                "series": [{"labels": {}, "value": float(self.dropped_series)}],
            }
        return out

    def render_prometheus(self) -> str:
        from repro.obs.prometheus import render

        return render(self)

    def reset(self) -> None:
        """Drop every family (tests only — production metrics are
        cumulative by design)."""
        with self._lock:
            self._families = {}
            self.dropped_series = 0


#: The process-global default registry.  ``REPRO_METRICS=off`` disables
#: it at import (the overhead smoke's baseline run).
_default_registry = MetricsRegistry(
    enabled=os.environ.get("REPRO_METRICS", "").lower()
    not in ("off", "0", "false")
)


def get_registry() -> MetricsRegistry:
    """The process-global registry instrumented layers default to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry; returns the previous one (tests swap a
    fresh registry in and restore the old one after)."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
