"""Run metadata: who/where/what produced an artifact.

Every JSONL trace and every ``BENCH_step_engine.json`` section gets a
stamp from :func:`run_metadata` — host, CPU count, Python version, git
SHA, config name — so downstream consumers (``trace report``,
``bench diff``) can tell *which machine and code state* produced the
numbers.  ``bench diff`` uses :func:`compatible` to refuse cross-host
comparisons: a 30% "regression" that is really a laptop-vs-CI delta is
worse than no check at all.

The git SHA comes from one cached subprocess call and degrades to
``None`` outside a checkout (pip-installed trees, tarballs) — metadata
must never be the thing that crashes a run.
"""

from __future__ import annotations

import datetime
import os
import platform
import socket
import subprocess

__all__ = ["run_metadata", "git_sha", "compatible", "format_meta"]

_git_sha_cache: list = []  # [sha-or-None] once resolved


def git_sha(cwd=None) -> str | None:
    """Short SHA of HEAD, or None when git/the checkout is unavailable."""
    if not _git_sha_cache:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5,
                cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            )
            sha = out.stdout.strip() if out.returncode == 0 else None
        except (OSError, subprocess.SubprocessError):
            sha = None
        _git_sha_cache.append(sha or None)
    return _git_sha_cache[0]


def run_metadata(config: str | None = None, **extra) -> dict:
    """The standard stamp.  ``extra`` keys ride along verbatim."""
    meta = {
        "host": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": git_sha(),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }
    if config is not None:
        meta["config"] = config
    meta.update(extra)
    return meta


#: Keys that must match for two runs' numbers to be comparable.
_COMPARABLE_KEYS = ("host", "cpu_count")


def compatible(a: dict | None, b: dict | None) -> str | None:
    """None when two metadata stamps are comparable; else the reason
    they are not.  Missing metadata (pre-stamping artifacts) is treated
    as comparable-with-a-shrug — the caller decides whether to warn."""
    if not a or not b:
        return None
    for key in _COMPARABLE_KEYS:
        va, vb = a.get(key), b.get(key)
        if va is not None and vb is not None and va != vb:
            return f"{key} differs: {va!r} vs {vb!r}"
    return None


def format_meta(meta: dict | None) -> str:
    """One-line human rendering for report headers."""
    if not meta:
        return "(no run metadata)"
    bits = []
    if meta.get("host"):
        bits.append(f"host={meta['host']}")
    if meta.get("cpu_count") is not None:
        bits.append(f"cpus={meta['cpu_count']}")
    if meta.get("python"):
        bits.append(f"py={meta['python']}")
    if meta.get("git_sha"):
        bits.append(f"git={meta['git_sha']}")
    if meta.get("config"):
        bits.append(f"config={meta['config']}")
    if meta.get("recorded_at"):
        bits.append(f"at={meta['recorded_at']}")
    return " ".join(bits) if bits else "(no run metadata)"
