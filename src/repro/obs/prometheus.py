"""Prometheus text exposition (format version 0.0.4).

Renders a :class:`~repro.obs.registry.MetricsRegistry` into the plain
text format every Prometheus-compatible scraper understands::

    # HELP simcov_serve_submitted_total Jobs accepted by POST /jobs
    # TYPE simcov_serve_submitted_total counter
    simcov_serve_submitted_total 42
    # HELP simcov_phase_seconds Wall seconds per engine phase
    # TYPE simcov_phase_seconds histogram
    simcov_phase_seconds_bucket{phase="diffuse",le="0.001"} 7
    ...
    simcov_phase_seconds_bucket{phase="diffuse",le="+Inf"} 30
    simcov_phase_seconds_sum{phase="diffuse"} 0.0123
    simcov_phase_seconds_count{phase="diffuse"} 30

Determinism: families sort by name, series by label tuple, so the same
registry state always renders the same bytes (the endpoint test diffs
two scrapes).  Histogram buckets render cumulatively with an explicit
``le="+Inf"`` sample; an empty histogram still renders its full bucket
ladder (all zeros) — scrapers treat a missing series as "target fell
over", not "no data yet".
"""

from __future__ import annotations

__all__ = ["render", "escape_label_value", "format_value"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: str) -> str:
    """Escape per the exposition spec: backslash, double-quote, newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def format_value(value: float) -> str:
    """Integral floats print as ints (``42`` not ``42.0``); everything
    else keeps full repr precision so round-tripping is lossless."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(key: tuple, extra: tuple = ()) -> str:
    pairs = [f'{k}="{escape_label_value(v)}"' for k, v in (*key, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render(registry) -> str:
    """Render the registry's full state as exposition text."""
    lines = []
    fams = registry.families()
    for name, fam in fams.items():
        help_text = fam.help or name
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {fam.kind}")
        for key in sorted(fam.series):
            inst = fam.series[key]
            if fam.kind == "histogram":
                for le, cum in inst.cumulative():
                    le_txt = "+Inf" if le == float("inf") else format_value(le)
                    labels = _label_str(key, (("le", le_txt),))
                    lines.append(f"{name}_bucket{labels} {cum}")
                labels = _label_str(key)
                lines.append(f"{name}_sum{labels} {format_value(inst.sum)}")
                lines.append(f"{name}_count{labels} {inst.count}")
            else:
                labels = _label_str(key)
                lines.append(f"{name}{labels} {format_value(inst.value)}")
    if registry.dropped_series:
        name = "simcov_obs_dropped_series_total"
        lines.append(f"# HELP {name} Label sets refused by the cardinality cap")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {registry.dropped_series}")
    return "\n".join(lines) + "\n" if lines else ""
