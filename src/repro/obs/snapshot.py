"""Periodic registry snapshots for runs without a /metrics endpoint.

A server gets scraped; a batch run does not.  ``MetricsSnapshotSink``
piggybacks on the telemetry event stream: every ``interval`` step-end
events it serializes the registry (``kind: "metrics"`` JSONL record)
into the same artifact the spans land in, so one file carries both the
narrative (spans) and the vitals (metrics) — ``trace report`` reads the
last snapshot for its metrics footer, and the record kind keeps
:func:`repro.telemetry.sinks.read_jsonl` from choking on non-events.

It is an ordinary sink: attach it to any tracer (``--trace`` CLI runs,
the serve layer's ``--trace`` mode) and forget about it; a final
snapshot is flushed on ``close()`` so short runs still record one.
"""

from __future__ import annotations

import json
import time

from repro.obs.registry import get_registry
from repro.telemetry.events import SPAN

__all__ = ["MetricsSnapshotSink", "read_snapshots"]


class MetricsSnapshotSink:
    """Write ``{"kind": "metrics", ...}`` JSONL records every N steps.

    Parameters
    ----------
    write:
        A callable taking one dict (e.g. ``JsonlSink.write_record``), or
        a path to append JSONL records to.
    interval:
        Snapshot every this-many step-end spans (cat ``"step"``).
    registry:
        Defaults to the process-global registry at snapshot time.
    """

    def __init__(self, write, interval: int = 50, registry=None):
        if callable(write):
            self._write = write
            self._fh = None
        else:
            self._fh = open(write, "a", buffering=1)
            self._write = lambda rec: self._fh.write(json.dumps(rec) + "\n")
        self.interval = max(1, int(interval))
        self._registry = registry
        self._steps_seen = 0
        self.snapshots_written = 0

    @property
    def registry(self):
        return self._registry if self._registry is not None else get_registry()

    def on_event(self, event) -> None:
        if event.kind != SPAN or event.cat != "step":
            return
        self._steps_seen += 1
        if self._steps_seen % self.interval == 0:
            self._snapshot(step=event.step)

    def _snapshot(self, step: int | None = None) -> None:
        rec = {
            "kind": "metrics",
            "ts": time.time(),
            "step": step,
            "metrics": self.registry.snapshot(),
        }
        self._write(rec)
        self.snapshots_written += 1

    def close(self) -> None:
        # Final flush: runs shorter than one interval still get vitals.
        if self._steps_seen % self.interval != 0 or self._steps_seen == 0:
            self._snapshot()
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_snapshots(path) -> list[dict]:
    """All ``kind: "metrics"`` records from a JSONL trace, in order."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "metrics":
                out.append(rec)
    return out
