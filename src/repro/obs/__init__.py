"""`repro.obs` — always-on metrics and health.

The production counterpart to :mod:`repro.telemetry`'s off-by-default
span tracing: a low-overhead :class:`MetricsRegistry` (counters, gauges,
fixed-bucket histograms) wired through the engine, dist, ensemble and
serve layers; Prometheus text exposition for ``GET /metrics``; periodic
JSONL snapshots for batch runs; a rolling per-rank
:class:`ImbalanceMonitor`; run-metadata stamps; and benchmark
regression reports (``bench report`` / ``bench diff``).
"""

from repro.obs.bench import bench_diff, flatten_metrics, format_diff, load_bench
from repro.obs.imbalance import ImbalanceMonitor, imbalance_index
from repro.obs.prometheus import render as render_prometheus
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.runmeta import compatible, format_meta, run_metadata
from repro.obs.snapshot import MetricsSnapshotSink, read_snapshots

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "ImbalanceMonitor",
    "MetricsRegistry",
    "MetricsSnapshotSink",
    "bench_diff",
    "compatible",
    "flatten_metrics",
    "format_diff",
    "format_meta",
    "get_registry",
    "imbalance_index",
    "load_bench",
    "read_snapshots",
    "render_prometheus",
    "run_metadata",
    "set_registry",
]
