"""Rolling per-rank load-imbalance index.

The dist runtime's per-rank busy seconds (phase time minus in-phase
barrier wait) already expose the single-focus pathology — the rank
holding the infection focus computes while the rest wait.  This module
folds those per-step busy deltas into the classic imbalance index

    index = max(busy) / mean(busy) - 1.0

over a rolling window: 0.0 means perfectly balanced, 1.0 means the
slowest rank does double the mean work.  ROADMAP open item 5 (dynamic
re-decomposition) triggers on exactly this signal, so the monitor keeps
a bounded history that ``trace report`` renders as an
imbalance-over-time panel and the registry publishes as gauges.

Pure python over tiny vectors (nranks floats per step) — it runs inside
the coordinator's reduction step, so it must cost effectively nothing.
"""

from __future__ import annotations

from collections import deque

__all__ = ["ImbalanceMonitor", "imbalance_index"]


def imbalance_index(busy) -> float:
    """``max/mean - 1`` over per-rank busy seconds; 0.0 when degenerate
    (no ranks, all-idle window) so callers can publish unconditionally."""
    busy = [max(0.0, float(b)) for b in busy]
    if not busy:
        return 0.0
    mean = sum(busy) / len(busy)
    if mean <= 0.0:
        return 0.0
    return max(busy) / mean - 1.0


class ImbalanceMonitor:
    """Fold per-step per-rank busy deltas into rolling imbalance stats.

    ``observe(step, busy_deltas)`` returns the windowed index (the gauge
    value).  ``history`` keeps ``(step, instantaneous_index)`` pairs up
    to ``max_history`` for the report panel; the rolling window
    (``window`` steps of per-rank sums) smooths single-step noise like a
    rank absorbing a virion burst for one step.
    """

    def __init__(self, nranks: int, window: int = 16, max_history: int = 4096):
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = int(nranks)
        self.window: deque[list[float]] = deque(maxlen=int(window))
        self.history: deque[tuple[int, float]] = deque(maxlen=int(max_history))
        self.last_index = 0.0
        self.max_rank = 0

    def observe(self, step: int, busy_deltas) -> float:
        busy = [max(0.0, float(b)) for b in busy_deltas]
        if len(busy) != self.nranks:
            raise ValueError(
                f"expected {self.nranks} busy values, got {len(busy)}"
            )
        self.window.append(busy)
        # Windowed per-rank totals -> smoothed index (the gauge).
        totals = [0.0] * self.nranks
        for row in self.window:
            for i, b in enumerate(row):
                totals[i] += b
        self.last_index = imbalance_index(totals)
        self.max_rank = max(range(self.nranks), key=totals.__getitem__)
        # Instantaneous index per step (the report timeseries).
        self.history.append((int(step), imbalance_index(busy)))
        return self.last_index

    def summary(self) -> dict:
        vals = [v for _, v in self.history]
        return {
            "nranks": self.nranks,
            "steps_observed": len(self.history),
            "index": self.last_index,
            "max_rank": self.max_rank,
            "peak_index": max(vals, default=0.0),
            "mean_index": (sum(vals) / len(vals)) if vals else 0.0,
        }
