"""Benchmark regression reports: ``bench report`` / ``bench diff``.

``BENCH_step_engine.json`` accumulates one committed snapshot per PR;
until now a silent slowdown only surfaced if a human eyeballed the
numbers.  This module flattens the interesting numeric leaves of a
benchmark payload into ``section.path.metric`` keys with a
direction (throughput/speedup/hit-rate up is good, seconds down is
good), and diffs two payloads against a relative threshold.  The CI
``obs`` job runs ``bench diff --check`` so a regression beyond the
threshold fails the build, with the human-readable table uploaded as an
artifact.

Cross-host honesty: payloads stamped with run metadata
(:mod:`repro.obs.runmeta`) refuse to diff across hosts unless
``allow_cross_host`` is set — comparing a laptop number against a CI
number produces exactly the false alarm this gate exists to prevent.
"""

from __future__ import annotations

import json

from repro.obs.runmeta import compatible, format_meta

__all__ = [
    "load_bench",
    "flatten_metrics",
    "bench_diff",
    "format_report",
    "format_diff",
    "CrossHostError",
]

#: Sub-dicts too noisy to gate on (per-phase and per-rank breakdowns
#: jitter far more than the headline throughputs they roll up into).
_SKIP_SEGMENTS = frozenset(
    {
        "phase_seconds",
        "worker_phase_seconds",
        "worker_phase_calls",
        "per_rank_phase_seconds",
        "per_rank_wait_seconds",
        "meta",
        "gates",
    }
)


class CrossHostError(ValueError):
    """Two payloads' run metadata says their numbers aren't comparable."""


def load_bench(path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _direction(key: str) -> str | None:
    """``"higher"``/``"lower"`` = which way is *better*; None = skip."""
    if key.endswith("_per_sec") or key.startswith("speedup"):
        return "higher"
    if key.endswith("hit_rate"):
        return "higher"
    if key.endswith("_seconds") or key.endswith("_fraction"):
        return "lower"
    return None


def flatten_metrics(payload: dict, prefix: str = "") -> dict[str, tuple[float, str]]:
    """``{dotted.key: (value, direction)}`` for every gateable leaf."""
    out: dict[str, tuple[float, str]] = {}
    for key, value in payload.items():
        if key in _SKIP_SEGMENTS:
            continue
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(flatten_metrics(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            direction = _direction(key)
            if direction is not None:
                out[path] = (float(value), direction)
    return out


def bench_diff(
    current: dict,
    previous: dict,
    threshold: float = 0.15,
    allow_cross_host: bool = False,
) -> dict:
    """Compare two payloads; raise :class:`CrossHostError` when their
    metadata says the hosts differ (unless ``allow_cross_host``).

    Returns ``{"rows": [...], "regressions": [...], "missing": [...],
    "meta_warning": str | None}`` where each row is
    ``{key, previous, current, change, direction, regression}`` and
    ``change`` is the relative delta in the *better* direction (positive
    = improved).
    """
    meta_cur, meta_prev = current.get("meta"), previous.get("meta")
    reason = compatible(meta_cur, meta_prev)
    if reason is not None and not allow_cross_host:
        raise CrossHostError(
            f"refusing to compare benchmarks across environments ({reason}); "
            "pass --allow-cross-host to override"
        )
    meta_warning = None
    if not meta_cur or not meta_prev:
        meta_warning = (
            "one or both payloads lack run metadata; host comparability unknown"
        )
    elif reason is not None:
        meta_warning = f"cross-host comparison forced: {reason}"

    cur_flat = flatten_metrics(current)
    prev_flat = flatten_metrics(previous)
    rows, regressions = [], []
    for key in sorted(cur_flat.keys() & prev_flat.keys()):
        cur_v, direction = cur_flat[key]
        prev_v, _ = prev_flat[key]
        if prev_v == 0.0:
            change = 0.0 if cur_v == 0.0 else float("inf")
        else:
            change = (cur_v - prev_v) / abs(prev_v)
        if direction == "lower":
            change = -change  # normalize: positive change = better
        row = {
            "key": key,
            "previous": prev_v,
            "current": cur_v,
            "change": change,
            "direction": direction,
            "regression": change < -threshold,
        }
        rows.append(row)
        if row["regression"]:
            regressions.append(row)
    missing = sorted(prev_flat.keys() - cur_flat.keys())
    return {
        "rows": rows,
        "regressions": regressions,
        "missing": missing,
        "meta_warning": meta_warning,
        "threshold": threshold,
    }


def _fmt(v: float) -> str:
    if v == float("inf"):
        return "inf"
    if abs(v) >= 1000:
        return f"{v:.0f}"
    return f"{v:.4g}"


def format_report(payload: dict, path: str = "") -> str:
    """Human table of one payload's gateable metrics."""
    lines = []
    title = f"benchmark report — {path}" if path else "benchmark report"
    lines.append(title)
    lines.append("=" * len(title))
    lines.append(format_meta(payload.get("meta")))
    lines.append("")
    flat = flatten_metrics(payload)
    width = max((len(k) for k in flat), default=10)
    lines.append(f"{'metric':<{width}}  {'value':>12}  better")
    lines.append("-" * (width + 22))
    for key in sorted(flat):
        value, direction = flat[key]
        lines.append(f"{key:<{width}}  {_fmt(value):>12}  {direction}")
    return "\n".join(lines)


def format_diff(diff: dict) -> str:
    """Human table of a :func:`bench_diff` result."""
    lines = []
    title = f"benchmark diff (threshold {diff['threshold']:.0%})"
    lines.append(title)
    lines.append("=" * len(title))
    if diff["meta_warning"]:
        lines.append(f"WARNING: {diff['meta_warning']}")
    rows = diff["rows"]
    if not rows:
        lines.append("(no comparable metrics)")
        return "\n".join(lines)
    width = max(len(r["key"]) for r in rows)
    lines.append(
        f"{'metric':<{width}}  {'previous':>12}  {'current':>12}  {'change':>8}"
    )
    lines.append("-" * (width + 40))
    for row in rows:
        flag = "  REGRESSION" if row["regression"] else ""
        change = row["change"]
        change_txt = "inf" if change == float("inf") else f"{change:+.1%}"
        lines.append(
            f"{row['key']:<{width}}  {_fmt(row['previous']):>12}  "
            f"{_fmt(row['current']):>12}  {change_txt:>8}{flag}"
        )
    for key in diff["missing"]:
        lines.append(f"{key:<{width}}  (missing from current payload)")
    lines.append("")
    n = len(diff["regressions"])
    if n:
        lines.append(f"{n} regression(s) beyond threshold")
    else:
        lines.append("no regressions beyond threshold")
    return "\n".join(lines)
