"""Metrics-overhead smoke: registry-on vs registry-off step loop.

The registry is on by default, so its cost is everyone's cost; the
acceptance budget is <=3% step-loop slowdown.  This module measures that
directly: the same sequential simulation, best-of-N wall time, once with
an enabled registry installed as the process global and once with a
disabled one (the disabled path is the pure-engine baseline — the
instruments are the shared no-ops).

Best-of-N, not mean: scheduler noise only ever adds time, so the minimum
is the closest observable to the true cost, and on shared CI a mean
would flake.  The CI ``obs`` job runs this as ``python -m
repro.obs.overhead --budget 0.03``; the tier-1 test asserts a laxer
bound so the fast suite never flakes on a noisy box.
"""

from __future__ import annotations

from time import perf_counter

from repro.obs.registry import MetricsRegistry, set_registry

__all__ = ["measure_overhead"]


def _best_wall(params, seed: int, steps: int, repeats: int) -> float:
    from repro.core.model import SequentialSimCov

    best = float("inf")
    for _ in range(repeats):
        sim = SequentialSimCov(params, seed=seed)
        t0 = perf_counter()
        sim.run(steps)
        best = min(best, perf_counter() - t0)
    return best


def measure_overhead(
    dim=(96, 96),
    steps: int = 30,
    repeats: int = 5,
    seed: int = 7,
) -> dict:
    """Run the step loop with metrics on and off; return both walls and
    the relative overhead (``on/off - 1``)."""
    from repro.core.params import SimCovParams

    params = SimCovParams(dim=dim, num_infections=1, num_steps=steps)
    # Off first, then on: any first-run warmup (imports, allocator growth)
    # penalizes the baseline, making the reported overhead conservative
    # in the direction that matters.
    prev = set_registry(MetricsRegistry(enabled=False))
    try:
        off = _best_wall(params, seed, steps, repeats)
        set_registry(MetricsRegistry(enabled=True))
        on = _best_wall(params, seed, steps, repeats)
    finally:
        set_registry(prev)
    return {
        "metrics_off_seconds": off,
        "metrics_on_seconds": on,
        "overhead_fraction": (on / off - 1.0) if off > 0 else 0.0,
        "steps": steps,
        "repeats": repeats,
        "dim": list(dim),
    }


def main(argv=None) -> int:
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--budget", type=float, default=0.03,
                    help="max allowed overhead fraction (default 0.03)")
    ap.add_argument("--steps", type=int, default=30)
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--dim", type=int, nargs=2, default=(96, 96))
    args = ap.parse_args(argv)

    result = measure_overhead(
        dim=tuple(args.dim), steps=args.steps, repeats=args.repeats
    )
    result["budget"] = args.budget
    result["within_budget"] = result["overhead_fraction"] <= args.budget
    print(json.dumps(result, indent=2))
    if not result["within_budget"]:
        print(
            f"FAIL: metrics overhead {result['overhead_fraction']:.2%} "
            f"exceeds budget {args.budget:.0%}"
        )
        return 1
    print(
        f"OK: metrics overhead {result['overhead_fraction']:.2%} "
        f"within budget {args.budget:.0%}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
